"""Rabin's choice coordination problem [R80], via similarity.

The paper calls selection "a generalization of the coordinated choice
problem": n processors must all mark the *same one* of k alternatives
(shared variables).  The similarity analysis decides it: a deterministic
solution exists iff some alternative is **uniquely labeled** among the
alternatives -- similar alternatives can be kept behaviorally identical
forever, so no deterministic rule can break the tie (which is exactly
why Rabin introduced randomization for the symmetric case).

The positive side runs on Algorithm 2: each processor learns its own
label, derives its variables' labels through the label-level ``n-nbr``
table, and marks its variable whose label is the designated unique one.
Because that label names exactly one variable, all marks land together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Sequence, Tuple

from ..algorithms.algorithm2 import A2State, Algorithm2Program
from ..algorithms.tables import LabelTables
from ..core.names import NodeId
from ..core.similarity import similarity_labeling
from ..core.system import System
from ..exceptions import SelectionError
from ..runtime.actions import Action, Halt, Post
from ..runtime.executor import Executor
from ..runtime.program import LocalState
from ..runtime.scheduler import RoundRobinScheduler, Scheduler

MARK = "CHOICE-MARK"


def coordinated_choice_possible(
    system: System, alternatives: Sequence[NodeId]
) -> bool:
    """Is there a deterministic choice among the given variables?"""
    theta = similarity_labeling(system)
    labels = [theta[v] for v in alternatives]
    return any(labels.count(l) == 1 for l in labels)


def designated_alternative(
    system: System, alternatives: Sequence[NodeId]
) -> NodeId:
    """The canonical choice: the uniquely labeled alternative with the
    smallest label.

    Raises:
        SelectionError: if every alternative has a similar twin.
    """
    theta = similarity_labeling(system)
    labels = [theta[v] for v in alternatives]
    unique = sorted(
        (l for l in labels if labels.count(l) == 1), key=repr
    )
    if not unique:
        raise SelectionError(
            "all alternatives are similar to another; no deterministic "
            "coordinated choice exists (use randomization, per [R80])"
        )
    winner_label = unique[0]
    for v in alternatives:
        if theta[v] == winner_label:
            return v
    raise AssertionError("unreachable")  # pragma: no cover


class ChoiceProgram(Algorithm2Program):
    """Learn my label, then mark my alternative if it is the chosen one.

    The extra phase after Algorithm 2 finishes: for each of my names
    whose label-level neighbor is the designated label, post a MARK.
    """

    def __init__(self, tables: LabelTables, chosen_vlabel: Hashable) -> None:
        super().__init__(tables)
        self.chosen_vlabel = chosen_vlabel

    def _mark_names(self, state: A2State) -> Tuple[Hashable, ...]:
        label = Algorithm2Program.learned_label(state)
        if label is None:
            return ()
        return tuple(
            name
            for name in self.tables.names
            if self.tables.n_nbr_label(label, name) == self.chosen_vlabel
        )

    def next_action(self, state) -> Action:
        if Algorithm2Program.is_done(state):
            marks = self._mark_names(state)
            # idx counts marks already posted in the done phase.
            if state.idx < len(marks):
                return Post(marks[state.idx], MARK)
            return Halt()
        return super().next_action(state)

    def transition(self, state, action: Action, result) -> LocalState:
        if Algorithm2Program.is_done(state) and isinstance(action, Post):
            from dataclasses import replace

            return replace(state, idx=state.idx + 1)
        return super().transition(state, action, result)


@dataclass(frozen=True)
class ChoiceOutcome:
    """Result of a coordinated-choice run.

    Attributes:
        marks: alternative -> number of MARK subvalues it holds.
        chosen: the single marked alternative, or None on violation.
        agreed: exactly one alternative carries all the marks, and every
            processor adjacent to it marked it.
    """

    marks: Dict[NodeId, int]
    chosen: Optional[NodeId]
    agreed: bool


def run_choice_coordination(
    system: System,
    alternatives: Sequence[NodeId],
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 100_000,
) -> ChoiceOutcome:
    """Run the deterministic coordinated choice end to end."""
    theta = similarity_labeling(system)
    tables = LabelTables.from_labeled_system(system, theta)
    chosen_var = designated_alternative(system, alternatives)
    program = ChoiceProgram(tables, theta[chosen_var])
    executor = Executor(
        system, program, scheduler or RoundRobinScheduler(system.processors)
    )
    for _ in range(max_steps):
        executor.step()
        if all(executor.halted.values()):
            break
    marks = {}
    for v in alternatives:
        _base, subvalues = executor.vars[v].peek()
        marks[v] = sum(1 for sv in subvalues if sv == MARK)
    marked = [v for v, c in marks.items() if c > 0]
    chosen = marked[0] if len(marked) == 1 else None
    expected = {
        p
        for p, _name in system.network.neighbors_of_variable(chosen_var)
    } if chosen is not None else set()
    agreed = chosen == chosen_var and marks[chosen_var] == len(expected)
    return ChoiceOutcome(marks=marks, chosen=chosen, agreed=agreed)


def randomized_choice_on_symmetric(
    n_processors: int,
    n_alternatives: int = 2,
    seed: int = 0,
    id_space: int = 2,
) -> Tuple[int, int]:
    """Coordinated choice when every alternative is symmetric ([R80]).

    Deterministically impossible (no alternative is uniquely labeled),
    but randomization composes a solution the way Section 8 promises:
    elect a leader with Itai-Rodeh -- itself impossible deterministically
    on the symmetric processor set -- and let the leader's coin pick the
    alternative every processor adopts.

    Returns ``(leader_index, chosen_alternative)``; agreement is by
    construction (everyone adopts the leader's announced choice), and
    termination holds with probability 1.
    """
    import random

    from ..randomized.itai_rodeh import elect

    result = elect(n_processors, id_space=id_space, seed=seed)
    if result.leader is None:  # pragma: no cover - probability-0 cap
        raise SelectionError("election did not terminate within the cap")
    rng = random.Random((seed << 16) ^ result.leader)
    return result.leader, rng.randrange(n_alternatives)
