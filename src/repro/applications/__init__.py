"""Applications of the similarity machinery beyond plain selection."""

from .choice_coordination import (
    ChoiceOutcome,
    ChoiceProgram,
    coordinated_choice_possible,
    designated_alternative,
    run_choice_coordination,
)
from .committee import (
    CommitteeOutcome,
    committee_labels,
    committee_possible,
    committee_program,
    run_committee,
)
from .renaming import (
    RenamingOutcome,
    RenamingProgram,
    renaming_possible,
    run_renaming,
)

__all__ = [
    "ChoiceOutcome",
    "ChoiceProgram",
    "CommitteeOutcome",
    "RenamingOutcome",
    "RenamingProgram",
    "committee_labels",
    "committee_possible",
    "committee_program",
    "coordinated_choice_possible",
    "designated_alternative",
    "renaming_possible",
    "run_choice_coordination",
    "run_committee",
    "run_renaming",
]
