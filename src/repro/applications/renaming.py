"""The renaming problem, solved with similarity labelings.

Section 1: "Solutions to many other synchronization problems and to
certain types of distributed programming problems can be found using
similarity in the same way."  Renaming is the cleanest instance: every
processor must end up with a *distinct* name drawn from a small
namespace.

Similarity gives the exact solvability condition: names must be stable
under any schedule, and similar processors can be forced into the same
states forever, so deterministic renaming in Q is possible **iff the
similarity labeling already gives every processor a unique label** --
and then Algorithm 2 *is* the renaming algorithm, with the labels
(canonically numbered) as the new names.  The achieved namespace has
size exactly |P|: optimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..algorithms.algorithm2 import Algorithm2Program
from ..algorithms.tables import LabelTables
from ..core.names import NodeId
from ..core.similarity import similarity_labeling
from ..core.system import System
from ..exceptions import SelectionError
from ..runtime.executor import Executor
from ..runtime.scheduler import RoundRobinScheduler, Scheduler


def renaming_possible(system: System) -> bool:
    """Deterministic renaming is possible iff Theta is injective on P."""
    theta = similarity_labeling(system)
    labels = [theta[p] for p in system.processors]
    return len(set(labels)) == len(labels)


@dataclass(frozen=True)
class RenamingOutcome:
    """Result of a distributed renaming run.

    Attributes:
        names: processor -> acquired name (0..|P|-1).
        distinct: whether all names are distinct (the spec).
        steps: steps until every processor had a name.
    """

    names: Dict[NodeId, Optional[int]]
    distinct: bool
    steps: Optional[int]


class RenamingProgram(Algorithm2Program):
    """Algorithm 2, reading the learned label as a small integer name."""

    def __init__(self, tables: LabelTables) -> None:
        super().__init__(tables)
        self._name_of = {
            label: i for i, label in enumerate(sorted(tables.plabels, key=repr))
        }

    def acquired_name(self, state) -> Optional[int]:
        label = Algorithm2Program.learned_label(state)
        if label is None:
            return None
        return self._name_of[label]


def run_renaming(
    system: System,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 100_000,
) -> RenamingOutcome:
    """Run distributed renaming; raises if provably impossible.

    Raises:
        SelectionError: when some processors are similar -- no
            deterministic algorithm can split their names (Theorem 2's
            argument, applied to name registers instead of ``selected``).
    """
    if not renaming_possible(system):
        raise SelectionError(
            "similar processors exist; deterministic renaming is impossible"
        )
    theta = similarity_labeling(system)
    tables = LabelTables.from_labeled_system(system, theta)
    program = RenamingProgram(tables)
    executor = Executor(
        system, program, scheduler or RoundRobinScheduler(system.processors)
    )
    steps = None
    for i in range(max_steps):
        executor.step()
        if all(
            program.acquired_name(executor.local[p]) is not None
            for p in system.processors
        ):
            steps = i + 1
            break
    names = {p: program.acquired_name(executor.local[p]) for p in system.processors}
    assigned = [n for n in names.values() if n is not None]
    distinct = len(set(assigned)) == len(assigned) and len(assigned) == len(names)
    return RenamingOutcome(names=names, distinct=distinct, steps=steps)
