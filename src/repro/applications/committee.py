"""Committee selection: choose exactly k processors, not just one.

A natural generalization of the selection problem through the same
similarity lens.  Because same-labeled processors are indistinguishable
and decisions must be stable, a deterministic algorithm can only select
*whole similarity classes*: a committee of size k exists iff some set of
processor classes has sizes summing to k (a subset-sum over the class
sizes; k = 1 recovers the paper's selection problem).

The runnable algorithm is Algorithm 2 plus a class-set ELITE: every
processor that learns a label in the chosen set joins the committee.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Hashable, Optional, Tuple

from ..algorithms.algorithm2 import Algorithm2Program
from ..algorithms.select_program import SelectionWrapper
from ..algorithms.tables import LabelTables
from ..core.names import NodeId
from ..core.similarity import similarity_labeling
from ..core.system import System
from ..exceptions import SelectionError


def committee_labels(system: System, k: int) -> Optional[FrozenSet[Hashable]]:
    """A set of processor-class labels with sizes summing to ``k``.

    Deterministic choice among same-sum candidates: prefer fewer classes,
    then lexicographically smallest labels.
    """
    theta = similarity_labeling(system)
    sizes: Dict[Hashable, int] = {}
    for p in system.processors:
        sizes[theta[p]] = sizes.get(theta[p], 0) + 1
    labels = sorted(sizes, key=repr)
    for r in range(1, len(labels) + 1):
        for combo in combinations(labels, r):
            if sum(sizes[l] for l in combo) == k:
                return frozenset(combo)
    return None


def committee_possible(system: System, k: int) -> bool:
    """Is a deterministic, stable committee of exactly ``k`` possible?"""
    if k == 0:
        return True
    return committee_labels(system, k) is not None


def committee_program(system: System, k: int) -> SelectionWrapper:
    """A program whose ``is_selected`` marks exactly the k committee
    members once labels are learned.

    Raises:
        SelectionError: if no class subset sums to ``k``.
    """
    labels = committee_labels(system, k)
    if labels is None:
        raise SelectionError(
            f"no union of similarity classes has size exactly {k}; "
            f"a deterministic committee of {k} is impossible"
        )
    theta = similarity_labeling(system)
    tables = LabelTables.from_labeled_system(system, theta)
    inner = Algorithm2Program(tables)
    return SelectionWrapper(inner, Algorithm2Program.learned_label, labels)


@dataclass(frozen=True)
class CommitteeOutcome:
    members: Tuple[NodeId, ...]
    size_ok: bool
    steps: Optional[int]


def run_committee(
    system: System,
    k: int,
    scheduler=None,
    max_steps: int = 100_000,
) -> CommitteeOutcome:
    """Run committee selection end to end."""
    from ..runtime.executor import Executor
    from ..runtime.scheduler import RoundRobinScheduler

    program = committee_program(system, k)
    executor = Executor(
        system, program, scheduler or RoundRobinScheduler(system.processors)
    )
    steps = None
    for i in range(max_steps):
        executor.step()
        if all(
            Algorithm2Program.is_done(executor.local[p]) for p in system.processors
        ):
            steps = i + 1
            break
    members = executor.selected_processors()
    return CommitteeOutcome(members=members, size_ok=len(members) == k, steps=steps)
