"""Command-line interface: ``python -m repro <command> ...``.

Gives the library's main analyses a shell-friendly surface:

* ``analyze`` -- similarity labeling + selection decision for a built-in
  topology under a chosen model;
* ``figures`` -- the Figure 1-5 summary table;
* ``hierarchy`` -- the model-power decision table with witnesses;
* ``dining N`` -- run the dining-philosopher programs on an N-table;
* ``elect`` -- leader election demos (SELECT / Itai-Rodeh);
* ``batch`` -- bulk similarity analysis of a single-mark family through
  the fingerprint cache / process pool driver;
* ``bench`` -- the refinement microbenchmarks (``BENCH_refinement.json``);
* ``bench-mp`` -- faulty-channel delivery throughput (``BENCH_mp_faults.json``);
* ``witness`` -- the sharded separation-witness sweep (checkpointable,
  resumable, deterministic output on any worker count);
* ``bench-witness`` -- serial vs sharded vs cached sweep timings
  (``BENCH_witness.json``);
* ``explore`` -- bounded exhaustive schedule exploration with Θ-orbit
  symmetry reduction: deadlock/livelock/invariant checking with
  replayable counterexample traces;
* ``bench-explore`` -- unreduced vs Θ-reduced vs sharded exploration
  timings (``BENCH_explore.json``);
* ``parametric`` -- parameterized verification over a symbolic topology
  family: explore sizes until the abstract reachable structure
  stabilizes, certify "for all n >= cutoff", independently re-verify;
* ``bench-parametric`` -- the three headline cutoff detections, timed,
  with a hash-seed-comparable report (``BENCH_parametric.json``);
* ``serve`` -- the long-lived analysis service: HTTP and/or stdio front
  ends over the coalescing, store-backed engine core;
* ``bench-serve`` -- cold vs warm-store serving benchmark under a
  seeded concurrent mixed workload (``BENCH_serve.json``);
* ``store-gc`` -- decision-store garbage collector: usage report,
  LRU eviction under a byte cap, compaction, health check;
* ``trace`` -- record a run as a replayable JSONL trace;
* ``trace-mp`` -- record a message-passing run (with optional channel
  faults, crash-stops, and stubborn retransmission) as a trace;
* ``replay`` -- re-run a recorded trace (either flavor) and verify
  bit-for-bit agreement;
* ``report trace --file RUN.jsonl`` -- census/timeline report of a trace.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional

from .analysis.reporting import format_table, yesno
from .core import (
    InstructionSet,
    ScheduleClass,
    System,
    decide_selection,
    processor_similarity_classes,
    similarity_labeling,
)
from .topologies import (
    ALL_WITNESSES,
    alternating_ring,
    complete_bipartite,
    dining_system,
    figure1_system,
    figure2_system,
    figure3_system,
    path,
    ring,
    star,
    torus_grid,
)

_TOPOLOGIES = {
    "ring": lambda n: ring(n),
    "alternating-ring": lambda n: alternating_ring(n),
    "path": lambda n: path(n),
    "star": lambda n: star(n),
    "complete": lambda n: complete_bipartite(n, 2),
    "grid": lambda n: torus_grid(n, n),
}

_MODELS = {
    "S": (InstructionSet.S, ScheduleClass.FAIR),
    "BFS": (InstructionSet.S, ScheduleClass.BOUNDED_FAIR),
    "Q": (InstructionSet.Q, ScheduleClass.FAIR),
    "L": (InstructionSet.L, ScheduleClass.FAIR),
    "L2": (InstructionSet.L2, ScheduleClass.FAIR),
}


def _positive_workers(text: str) -> int:
    """argparse type for every ``--workers`` flag: an integer >= 1.

    The engines speak "0 = serial" internally, but on the command line a
    worker count of zero (or less) is always a typo'd request for no
    work at all — reject it up front instead of silently running serial.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"worker count must be >= 1 (1 = serial), got {value}"
        )
    return value


def _build_system(args) -> System:
    if getattr(args, "file", None):
        from .io import load

        return load(args.file)
    try:
        net = _TOPOLOGIES[args.topology](args.size)
    except KeyError:
        raise SystemExit(
            f"unknown topology {args.topology!r}; pick from {sorted(_TOPOLOGIES)}"
        )
    iset, sched = _MODELS[args.model]
    state: Dict = {}
    for mark in args.mark or []:
        state[mark] = 1
    return System(net, state, iset, sched)


def cmd_analyze(args) -> int:
    if args.topology == "file" and not args.file:
        raise SystemExit("analyze file requires --file PATH")
    system = _build_system(args)
    theta = similarity_labeling(system)
    classes = processor_similarity_classes(system)
    decision = decide_selection(system)
    if args.file:
        print(f"system: {args.file}, model {system.instruction_set.value}")
    else:
        print(f"system: {args.topology}({args.size}), model {args.model}, "
              f"marks {args.mark or '-'}")
    print(f"similarity classes (processors): {len(classes)}")
    for block in classes:
        members = ",".join(sorted(map(str, block)))
        print(f"  {{{members}}}")
    print(f"selection possible: {yesno(decision.possible)}  [{decision.theorem}]")
    print(f"  {decision.reason}")
    return 0


def cmd_figures(_args) -> int:
    rows = []
    for name, system in (
        ("Figure 1 (Q)", figure1_system()),
        ("Figure 1 (L)", figure1_system(InstructionSet.L)),
        ("Figure 2 (Q)", figure2_system()),
        ("Figure 2 (BF-S)", figure2_system(InstructionSet.S, ScheduleClass.BOUNDED_FAIR)),
        ("Figure 3 (fair S)", figure3_system()),
        ("Figure 4 / DP-5 (L)", dining_system(5, instruction_set=InstructionSet.L)),
        ("Figure 5 / DP-6 (L)", dining_system(6, alternating=True, instruction_set=InstructionSet.L)),
    ):
        decision = decide_selection(system)
        rows.append((name, yesno(decision.possible), decision.theorem))
    print(format_table(["figure", "selection possible", "decided by"], rows))
    return 0


def cmd_hierarchy(_args) -> int:
    from .core import POWER_ORDER, selection_across_models

    rows = []
    for (weaker, stronger), builder in sorted(ALL_WITNESSES.items(), key=repr):
        net, state, desc = builder()
        report = selection_across_models(net, state, desc)
        rows.append(
            (f"{desc} [{weaker}<{stronger}]",)
            + tuple(yesno(report.decisions[m].possible) for m in POWER_ORDER)
        )
    print(format_table(["witness"] + list(POWER_ORDER), rows))
    return 0


def cmd_dining(args) -> int:
    from .baselines import LeftFirstDiningProgram, run_dining
    from .runtime import RoundRobinScheduler
    from .topologies import adjacent_pairs

    system = dining_system(
        args.size,
        alternating=args.alternating,
        instruction_set=InstructionSet.L,
    )
    report = run_dining(
        system,
        LeftFirstDiningProgram(),
        RoundRobinScheduler(system.processors),
        steps=args.steps,
        adjacent=adjacent_pairs(system),
    )
    shape = "alternating" if args.alternating else "uniform"
    print(f"dining({args.size}, {shape}), left-first program, {args.steps} steps:")
    print(f"  exclusion respected: {yesno(report.safety_ok)}")
    print(f"  deadlocked:          {yesno(report.deadlocked)}")
    print(f"  everyone ate:        {yesno(report.everyone_ate)}")
    print(f"  meals: {dict(sorted(report.meals.items()))}")
    return 0


def cmd_report(args) -> int:
    if args.topology == "trace":
        from .obs import load_trace, trace_report

        if not args.file:
            raise SystemExit("repro report trace requires --file RUN.jsonl")
        print(trace_report(load_trace(args.file)))
        return 0
    from .analysis import full_report

    system = _build_system(args)
    state = {n: system.state0(n) for n in system.nodes}
    report = full_report(system.network, state,
                         description=args.file or f"{args.topology}({args.size})")
    print(report.text)
    return 0


def cmd_explain(args) -> int:
    from .core import explain_dissimilarity

    system = _build_system(args)
    explanation = explain_dissimilarity(system, args.x, args.y)
    print(explanation.reason)
    for line in explanation.chain[1:]:
        print(f"  because: {line}")
    return 0


def cmd_elect(args) -> int:
    if args.randomized:
        from .randomized import elect

        result = elect(args.size, id_space=args.id_space, seed=args.seed)
        print(
            f"Itai-Rodeh on anonymous ring({args.size}): leader p{result.leader} "
            f"after {result.phases} phase(s), {result.messages} messages"
        )
        return 0
    from .algorithms import select_program
    from .runtime import verify_selection_program

    system = System(ring(args.size), {"p0": 1}, InstructionSet.Q)
    program = select_program(system)
    verdict = verify_selection_program(system, program, max_steps=200_000)
    print(
        f"SELECT on marked ring({args.size}): "
        f"{'OK' if verdict.all_ok else 'FAILED'}, winners {verdict.winners}"
    )
    return 0


def cmd_batch(args) -> int:
    from .core import single_mark_family
    from .perf import batch_similarity

    try:
        net = _TOPOLOGIES[args.topology](args.size)
    except KeyError:
        raise SystemExit(
            f"unknown topology {args.topology!r}; pick from {sorted(_TOPOLOGIES)}"
        )
    iset, sched = _MODELS[args.model]
    procs = list(net.processors)[: args.members] if args.members else None
    family = single_mark_family(
        net, processors=procs, instruction_set=iset, schedule_class=sched
    )
    report = batch_similarity(
        family.members, engine=args.engine, workers=args.workers
    )
    counts = sorted({r.stats.classes for r in report.results})
    print(
        f"batch: {args.topology}({args.size}) single-mark family, "
        f"{len(family)} member(s), model {args.model}, engine {args.engine}"
    )
    print(
        f"  workers {report.workers}, distinct systems {report.distinct}, "
        f"cache hits/misses {report.cache_hits}/{report.cache_misses}"
    )
    print(f"  similarity class counts across members: {counts}")
    print(f"  elapsed: {report.elapsed:.3f}s")
    return 0


def cmd_bench(args) -> int:
    from .perf.microbench import format_microbench, run_microbench

    try:
        sizes = tuple(int(s) for s in args.sizes.split(","))
    except ValueError:
        raise SystemExit(f"--sizes must be comma-separated integers, got {args.sizes!r}")
    try:
        doc = run_microbench(
            sizes=sizes,
            topologies=tuple(args.topologies.split(",")),
            repeats=args.repeats,
            batch_n=args.batch_n,
            family_size=args.family_size,
            workers=args.workers,
            measure_baseline=not args.skip_baseline,
            output=args.output,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(format_microbench(doc))
    if args.output:
        print(f"written: {args.output}")
    return 0


def _parse_crashes(specs) -> Dict[str, int]:
    crash_at: Dict[str, int] = {}
    for item in specs or []:
        try:
            proc, _, step = item.partition("=")
            crash_at[proc] = int(step)
        except ValueError:
            raise SystemExit(f"--crash wants PROC=STEP (e.g. phil2=40), got {item!r}")
    return crash_at


def cmd_trace(args) -> int:
    from .obs import ScenarioError, record_scenario

    spec = {
        "topology": args.topology,
        "size": args.size,
        "alternating": args.alternating,
        "model": args.model,
        "marks": args.mark or [],
        "program": args.program,
        "program_seed": args.program_seed,
        "scheduler": args.scheduler,
        "sched_seed": args.sched_seed,
        "crash_at": _parse_crashes(args.crash),
    }
    if args.k is not None:
        spec["k"] = args.k
    try:
        summary = record_scenario(
            spec, args.steps, args.output, sample_every=args.sample_every
        )
    except ScenarioError as exc:
        raise SystemExit(str(exc))
    print(
        f"recorded {summary['steps']} steps ({summary['samples']} samples, "
        f"every {summary['sample_every']}) to {summary['path']}"
    )
    print(f"final digest: {summary['final_digest']}")
    return 0


def cmd_trace_mp(args) -> int:
    from .obs import ScenarioError, record_mp_scenario

    faults = None
    if args.drop or args.duplicate or args.delay or args.crash or args.fault_seed:
        faults = {
            "default": {
                "drop": args.drop,
                "duplicate": args.duplicate,
                "delay": args.delay,
                "max_delay": args.max_delay,
            },
            "crash_at": _parse_crashes(args.crash),
            "seed": args.fault_seed,
        }
    spec = {
        "kind": "mp",
        "topology": args.topology,
        "size": args.size,
        "program": args.program,
        "scheduler": args.scheduler,
        "sched_seed": args.sched_seed,
        "stubborn": args.stubborn,
        "faults": faults,
    }
    if args.ids:
        try:
            spec["ids"] = [int(i) for i in args.ids.split(",")]
        except ValueError:
            raise SystemExit(f"--ids must be comma-separated integers, got {args.ids!r}")
    try:
        summary = record_mp_scenario(
            spec, args.deliveries, args.output, sample_every=args.sample_every
        )
    except ScenarioError as exc:
        raise SystemExit(str(exc))
    print(
        f"recorded {summary['deliveries']} deliveries "
        f"({summary['drops']} dropped, {summary['duplicates']} duplicated, "
        f"{summary['samples']} samples) to {summary['path']}"
    )
    if summary["crashed"]:
        print(f"crashed: {', '.join(summary['crashed'])}")
    if summary["selected"]:
        print(f"selected: {', '.join(summary['selected'])}")
    print(f"final digest: {summary['final_digest']}")
    return 0


def cmd_bench_mp(args) -> int:
    from .perf.mp_bench import format_mp_bench, run_mp_bench

    try:
        sizes = tuple(int(s) for s in args.sizes.split(","))
    except ValueError:
        raise SystemExit(f"--sizes must be comma-separated integers, got {args.sizes!r}")
    doc = run_mp_bench(
        sizes=sizes,
        deliveries=args.deliveries,
        repeats=args.repeats,
        seed=args.seed,
        output=args.output,
    )
    print(format_mp_bench(doc))
    if args.output:
        print(f"written: {args.output}")
    return 0


#: CLI model shorthands accepted on top of the MODEL_AXIS labels.
_WITNESS_ALIASES = {"S": "fair-S", "BFS": "bounded-fair-S"}


def _witness_label(label: str) -> str:
    return _WITNESS_ALIASES.get(label, label)


def cmd_witness(args) -> int:
    from .analysis.witness_engine import SweepSpec, run_sweep
    from .exceptions import WitnessSearchError

    try:
        spec = SweepSpec(
            weaker=_witness_label(args.weaker),
            stronger=_witness_label(args.stronger),
            max_processors=args.max_processors,
            max_names=args.max_names,
            max_variables=args.max_variables,
            allow_marks=args.allow_marks,
            limit=args.limit,
        )
    except WitnessSearchError as exc:
        raise SystemExit(str(exc))

    hub = None
    if args.events:
        from .obs import EventHub, JsonlSink

        hub = EventHub()
        hub.attach(JsonlSink(open(args.events, "w"), owns=True))
    try:
        result = run_sweep(
            spec, workers=args.workers, checkpoint=args.checkpoint, hub=hub
        )
    except WitnessSearchError as exc:
        raise SystemExit(str(exc))
    finally:
        if hub is not None:
            hub.close()

    print(
        f"witness sweep {spec.weaker} < {spec.stronger}: "
        f"{len(result.witnesses)} witness(es) in {result.elapsed:.2f}s "
        f"({result.shards} shards, {result.resumed_shards} resumed, "
        f"workers {result.workers or 'serial'})"
    )
    print(
        f"  enumerated {result.stats.enumerated}, novel {result.stats.novel}, "
        f"cache hits/misses {result.stats.cache_hits}/{result.stats.cache_misses}"
    )
    for i, witness in enumerate(result.witnesses):
        print(f"  [{i}] {witness.describe()}")
    if args.output:
        import json

        doc = {
            "spec": spec.to_json(),
            "witnesses": [
                {"record": record.to_json(), "description": witness.describe()}
                for record, witness in zip(result.records, result.witnesses)
            ],
        }
        with open(args.output, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"written: {args.output}")
    return 0


def cmd_bench_witness(args) -> int:
    from .exceptions import WitnessSearchError
    from .perf.witness_bench import format_witness_bench, run_witness_bench

    pairs = None
    if args.pairs:
        pairs = []
        for item in args.pairs.split(","):
            weaker, sep, stronger = item.partition("<")
            if not sep:
                raise SystemExit(
                    f"--pairs wants comma-separated WEAKER<STRONGER entries "
                    f"(e.g. Q<L,BFS<Q), got {item!r}"
                )
            pairs.append((_witness_label(weaker), _witness_label(stronger)))
    try:
        doc = run_witness_bench(
            **({"pairs": pairs} if pairs is not None else {}),
            max_processors=args.max_processors,
            max_names=args.max_names,
            max_variables=args.max_variables,
            allow_marks=args.allow_marks,
            workers=args.workers,
            output=args.output or None,
        )
    except WitnessSearchError as exc:
        raise SystemExit(str(exc))
    print(format_witness_bench(doc))
    if args.output:
        print(f"written: {args.output}")
    return 0


def cmd_explore(args) -> int:
    from .analysis.explore import ExploreSpec, run_explore, write_counterexample
    from .exceptions import ExploreError
    from .obs import ScenarioError

    scenario = {
        "topology": args.topology,
        "size": args.size,
        "alternating": args.alternating,
        "model": args.model,
        "marks": args.mark or [],
        "program": args.program,
        "program_seed": args.program_seed,
        "scheduler": args.scheduler,
        "sched_seed": args.sched_seed,
    }
    if args.sched_k is not None:
        scenario["k"] = args.sched_k
    try:
        spec = ExploreSpec(
            scenario=scenario,
            max_depth=args.max_depth,
            strategy=args.strategy,
            fairness=args.fairness,
            k=args.k,
            symmetry=not args.no_symmetry,
            invariants=tuple(args.invariant or []),
            probes=tuple(args.probe or []),
            check_deadlock=not args.no_deadlock,
            check_livelock=args.livelock,
            progress=args.progress,
            split_depth=args.split_depth,
        )
    except (ExploreError, ScenarioError) as exc:
        raise SystemExit(str(exc))

    hub = None
    if args.events:
        from .obs import EventHub, JsonlSink

        hub = EventHub()
        hub.attach(JsonlSink(open(args.events, "w"), owns=True))
    try:
        result = run_explore(
            spec, workers=args.workers, checkpoint=args.checkpoint, hub=hub
        )
    except (ExploreError, ScenarioError) as exc:
        raise SystemExit(str(exc))
    finally:
        if hub is not None:
            hub.close()

    print(result.describe())
    if args.output:
        import json

        with open(args.output, "w") as fh:
            json.dump(result.report_doc(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"written: {args.output}")
    if args.states_output:
        with open(args.states_output, "w") as fh:
            for digest in result.state_digests:
                fh.write(digest + "\n")
        print(
            f"states: {len(result.state_digests)} digest(s) "
            f"to {args.states_output}"
        )
    if args.counterexample:
        if result.violation is None:
            print("no violation; counterexample trace not written")
        else:
            summary = write_counterexample(result, args.counterexample)
            print(
                f"counterexample: {summary['steps']} step(s) to {summary['path']} "
                f"(replay with: python -m repro replay {summary['path']})"
            )
    return 1 if result.violation is not None else 0


def cmd_bench_explore(args) -> int:
    from .exceptions import ExploreError
    from .perf.explore_bench import format_explore_bench, run_explore_bench

    try:
        doc = run_explore_bench(
            workers=args.workers,
            output=args.output or None,
        )
    except ExploreError as exc:
        raise SystemExit(str(exc))
    print(format_explore_bench(doc))
    if args.output:
        print(f"written: {args.output}")
    return 0 if doc["all_agree"] else 1


def cmd_parametric(args) -> int:
    from .analysis.parametric import run_parametric
    from .exceptions import ExploreError, FamilyError, ParametricError

    try:
        doc = run_parametric(
            args.family,
            args.property,
            start=args.start,
            max_sizes=args.max_sizes,
            omega=args.omega,
            structure_depth=args.structure_depth,
            verify_extra=args.verify_extra,
            schema=not args.no_schema,
        )
    except (ParametricError, ExploreError, FamilyError) as exc:
        raise SystemExit(str(exc))

    cert = doc["certificate"]
    verify = doc["verify_cutoff"]
    print(cert["claim"])
    print(
        f"  cutoff {cert['cutoff']} (period {cert['period']}, "
        f"step {cert['step']}), structure depth {cert['structure_depth']}, "
        f"{len(cert['records'])} size(s) explored"
    )
    for record in cert["records"]:
        print(
            f"    n={record['size']}: {record['verdict']} "
            f"(depth {record['depth']}, {record['unique_states']} states, "
            f"{record['profile_count']} abstract profiles) "
            f"fp {record['fingerprint'][:12]}"
        )
    if verify["confirmed"]:
        print(
            f"  verify_cutoff: confirmed unreduced at "
            f"{verify['extra_sizes']} size(s) above the cutoff"
        )
    else:
        print(f"  verify_cutoff: FAILED -- {verify['error']}")
    schema = doc.get("labeling_schema")
    if schema is not None:
        print(
            f"  labeling schema: stabilized at n={schema['stabilized_at']} "
            f"(checked to n={schema['checked_to']}), "
            f"{schema['base_counts']} class(es) + {schema['slope']} per period"
        )
    if args.output:
        import json

        with open(args.output, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"written: {args.output}")
    return 0 if verify["confirmed"] else 1


def cmd_bench_parametric(args) -> int:
    from .exceptions import ExploreError, FamilyError, ParametricError
    from .perf.parametric_bench import (
        format_parametric_bench,
        run_parametric_bench,
    )

    cases = None
    if args.cases:
        cases = []
        for item in args.cases.split(","):
            family, sep, prop = item.partition("/")
            if not sep:
                raise SystemExit(
                    f"--cases wants comma-separated FAMILY/PROPERTY entries "
                    f"(e.g. dp/deadlock,ring/lockstep), got {item!r}"
                )
            cases.append((family, prop))
    try:
        doc = run_parametric_bench(
            **({"cases": cases} if cases is not None else {}),
            output=args.output or None,
            determinism_output=args.determinism_output,
        )
    except (ParametricError, ExploreError, FamilyError) as exc:
        raise SystemExit(str(exc))
    print(format_parametric_bench(doc))
    if args.output:
        print(f"written: {args.output}")
    if args.determinism_output:
        print(f"determinism: {args.determinism_output}")
    return 0 if doc["all_confirmed"] else 1


def cmd_serve(args) -> int:
    import asyncio

    from .serve.http import serve_forever
    from .serve.service import AnalysisService

    if args.http is None and not args.stdio:
        raise SystemExit("serve needs a front end: --http PORT and/or --stdio")
    workers = args.workers if args.workers is not None else 1
    service = AnalysisService(
        store_dir=args.store,
        engine_workers=0 if workers <= 1 else workers,
        batch_window=args.batch_window,
        default_deadline=args.deadline,
        store_max_bytes=args.store_max_bytes,
    )

    def ready(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    try:
        asyncio.run(
            serve_forever(
                service,
                http_port=args.http,
                host=args.host,
                stdio=args.stdio,
                ready=ready,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


def cmd_bench_serve(args) -> int:
    from .perf.serve_bench import format_serve_bench, run_serve_bench

    store_dir = args.store
    cleanup = None
    if store_dir is None:
        import tempfile

        cleanup = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
        store_dir = cleanup.name
    try:
        doc = run_serve_bench(
            store_dir=store_dir,
            requests=args.requests,
            seed=args.seed,
            workers=args.workers,
            batch_window=args.batch_window,
            output=args.output or None,
            determinism_output=args.determinism_output,
        )
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    print(format_serve_bench(doc))
    if args.output:
        print(f"written: {args.output}")
    if args.determinism_output:
        print(f"determinism: {args.determinism_output}")
    det = doc["determinism"]
    ok = (
        det["cold_warm_agree"]
        and det["warm_witness_cache_misses"] == 0
        and all(det.get("hardening", {}).values())
        and all(det.get("gc", {}).values())
    )
    return 0 if ok else 1


def cmd_store_gc(args) -> int:
    import json as json_module

    from .store import StoreError
    from .store.gc import GCReport, check, collect

    try:
        if args.check:
            doc = check(args.dir)
            print(json_module.dumps(doc, indent=2, sort_keys=True))
            if args.output:
                with open(args.output, "w", encoding="utf-8") as handle:
                    json_module.dump(doc, handle, indent=2, sort_keys=True)
                    handle.write("\n")
                print(f"written: {args.output}")
            if not doc["ok"]:
                print("store-gc: check failed: store has fresh quarantined "
                      "entries", file=sys.stderr)
            return 0 if doc["ok"] else 1
        report = collect(args.dir, max_bytes=args.max_bytes,
                         dry_run=args.dry_run)
    except StoreError as exc:
        raise SystemExit(str(exc))
    assert isinstance(report, GCReport)
    print(report.describe())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json_module.dump(report.to_json(), handle, indent=2,
                             sort_keys=True)
            handle.write("\n")
        print(f"written: {args.output}")
    return 0 if report.under_cap else 1


def cmd_replay(args) -> int:
    from .obs import TraceError, replay_trace

    try:
        report = replay_trace(args.trace, mode=args.mode)
    except (TraceError, OSError) as exc:
        raise SystemExit(str(exc))
    print(report.describe())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Symmetry and similarity in distributed systems (PODC 1985), executable.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="similarity + selection for a topology")
    analyze.add_argument("topology", choices=sorted(_TOPOLOGIES) + ["file"],
                         help='a built-in topology, or "file" with --file')
    analyze.add_argument("size", type=int, nargs="?", default=0)
    analyze.add_argument("--file", help="load the system from a JSON file (see repro.io)")
    analyze.add_argument("--model", choices=sorted(_MODELS), default="Q")
    analyze.add_argument(
        "--mark", action="append", metavar="NODE",
        help="set this node's initial state to 1 (repeatable)",
    )
    analyze.set_defaults(func=cmd_analyze)

    figures = sub.add_parser("figures", help="the paper's Figures 1-5 decisions")
    figures.set_defaults(func=cmd_figures)

    hierarchy = sub.add_parser("hierarchy", help="model power table with witnesses")
    hierarchy.set_defaults(func=cmd_hierarchy)

    report = sub.add_parser("report", help="full dossier: every analysis at once")
    report.add_argument("topology", choices=sorted(_TOPOLOGIES) + ["file", "trace"],
                        help='a topology, "file" (system JSON), or "trace" (run JSONL)')
    report.add_argument("size", type=int, nargs="?", default=0)
    report.add_argument("--file", help="load the system (or trace) from a file")
    report.add_argument("--model", choices=sorted(_MODELS), default="Q")
    report.add_argument("--mark", action="append", metavar="NODE")
    report.set_defaults(func=cmd_report)

    dining = sub.add_parser("dining", help="run dining philosophers")
    dining.add_argument("size", type=int)
    dining.add_argument("--alternating", action="store_true")
    dining.add_argument("--steps", type=int, default=4000)
    dining.set_defaults(func=cmd_dining)

    explain = sub.add_parser("explain", help="why are two nodes dissimilar?")
    explain.add_argument("topology", choices=sorted(_TOPOLOGIES) + ["file"])
    explain.add_argument("size", type=int, nargs="?", default=0)
    explain.add_argument("x")
    explain.add_argument("y")
    explain.add_argument("--file")
    explain.add_argument("--model", choices=sorted(_MODELS), default="Q")
    explain.add_argument("--mark", action="append", metavar="NODE")
    explain.set_defaults(func=cmd_explain)

    elect = sub.add_parser("elect", help="leader election demos")
    elect.add_argument("size", type=int)
    elect.add_argument("--randomized", action="store_true", help="Itai-Rodeh on an anonymous ring")
    elect.add_argument("--id-space", type=int, default=2)
    elect.add_argument("--seed", type=int, default=0)
    elect.set_defaults(func=cmd_elect)

    batch = sub.add_parser(
        "batch", help="bulk similarity analysis of a single-mark family"
    )
    batch.add_argument("topology", choices=sorted(_TOPOLOGIES))
    batch.add_argument("size", type=int)
    batch.add_argument("--model", choices=sorted(_MODELS), default="Q")
    batch.add_argument(
        "--engine", choices=["literal", "signatures", "worklist"], default="worklist"
    )
    batch.add_argument(
        "--members", type=int, default=None,
        help="only mark the first N processors (default: all)",
    )
    batch.add_argument(
        "--workers", type=_positive_workers, default=None,
        help="process-pool size (1 = serial; default: min(4, cores))",
    )
    batch.set_defaults(func=cmd_batch)

    bench = sub.add_parser("bench", help="refinement microbenchmarks")
    bench.add_argument("--sizes", default="100,1000,10000",
                       help="comma-separated processor counts")
    bench.add_argument("--topologies", default="ring,grid,random")
    bench.add_argument("--repeats", type=int, default=1)
    bench.add_argument("--batch-n", type=int, default=None,
                       help="ring size for the batch comparison (default: max size)")
    bench.add_argument("--family-size", type=int, default=4)
    bench.add_argument("--workers", type=_positive_workers, default=4)
    bench.add_argument("--skip-baseline", action="store_true",
                       help="skip the slow serial-uncached baseline")
    bench.add_argument("--output", default="BENCH_refinement.json",
                       help='JSON artifact path ("" to skip writing)')
    bench.set_defaults(func=cmd_bench)

    trace = sub.add_parser(
        "trace", help="record a run as a replayable JSONL trace"
    )
    trace.add_argument("topology", choices=sorted(_TOPOLOGIES) + ["dining"])
    trace.add_argument("size", type=int)
    trace.add_argument("--steps", type=int, default=200)
    trace.add_argument("--output", "-o", default="run.jsonl")
    trace.add_argument("--model", choices=["S", "Q", "L", "L2"], default="Q")
    trace.add_argument(
        "--program", choices=["random", "idle", "left-first", "both-forks"],
        default="random",
    )
    trace.add_argument("--program-seed", type=int, default=0)
    trace.add_argument(
        "--scheduler", choices=["round-robin", "random", "k-bounded"],
        default="round-robin",
    )
    trace.add_argument("--sched-seed", type=int, default=0)
    trace.add_argument("--k", type=int, default=None,
                       help="fairness bound for the k-bounded scheduler")
    trace.add_argument("--mark", action="append", metavar="NODE")
    trace.add_argument("--alternating", action="store_true",
                       help="alternating fork naming (dining only)")
    trace.add_argument(
        "--crash", action="append", metavar="PROC=STEP",
        help="crash PROC at STEP (repeatable)",
    )
    trace.add_argument("--sample-every", type=int, default=None,
                       help="config-digest sampling stride (default: #processors)")
    trace.set_defaults(func=cmd_trace)

    trace_mp = sub.add_parser(
        "trace-mp", help="record a message-passing run (optionally faulty) as a trace"
    )
    trace_mp.add_argument("topology", choices=["ring", "bi-ring", "chain"])
    trace_mp.add_argument("size", type=int)
    trace_mp.add_argument("--deliveries", type=int, default=500,
                          help="delivery budget for the run")
    trace_mp.add_argument("--output", "-o", default="run_mp.jsonl")
    trace_mp.add_argument(
        "--program", choices=["flood", "chang-roberts"], default="flood"
    )
    trace_mp.add_argument("--ids", default=None,
                          help="comma-separated initial values / identifiers")
    trace_mp.add_argument("--scheduler", choices=["random", "fifo"], default="random")
    trace_mp.add_argument("--sched-seed", type=int, default=0)
    trace_mp.add_argument("--stubborn", action="store_true",
                          help="retransmit last payloads when the network idles")
    trace_mp.add_argument("--drop", type=float, default=0.0,
                          help="per-send loss probability on every channel")
    trace_mp.add_argument("--duplicate", type=float, default=0.0,
                          help="per-send duplication probability")
    trace_mp.add_argument("--delay", type=float, default=0.0,
                          help="per-copy delay (reordering) probability")
    trace_mp.add_argument("--max-delay", type=int, default=4,
                          help="max delay in delivery steps")
    trace_mp.add_argument(
        "--crash", action="append", metavar="PROC=INDEX",
        help="crash-stop PROC at delivery INDEX (repeatable)",
    )
    trace_mp.add_argument("--fault-seed", type=int, default=0)
    trace_mp.add_argument("--sample-every", type=int, default=None,
                          help="config-digest sampling stride (default: #processors)")
    trace_mp.set_defaults(func=cmd_trace_mp)

    bench_mp = sub.add_parser(
        "bench-mp", help="faulty-channel delivery-throughput microbenchmark"
    )
    bench_mp.add_argument("--sizes", default="16,64,256",
                          help="comma-separated ring sizes")
    bench_mp.add_argument("--deliveries", type=int, default=20000,
                          help="delivery budget per cell")
    bench_mp.add_argument("--repeats", type=int, default=1)
    bench_mp.add_argument("--seed", type=int, default=0)
    bench_mp.add_argument("--output", default="BENCH_mp_faults.json",
                          help='JSON artifact path ("" to skip writing)')
    bench_mp.set_defaults(func=cmd_bench_mp)

    witness = sub.add_parser(
        "witness", help="sharded separation-witness sweep between two models"
    )
    witness.add_argument(
        "weaker", metavar="WEAKER",
        help="weaker model label (fair-S, bounded-fair-S, Q, L, L2; "
             "S and BFS are accepted shorthands)",
    )
    witness.add_argument("stronger", metavar="STRONGER", help="stronger model label")
    witness.add_argument("--max-processors", type=int, default=3)
    witness.add_argument("--max-names", type=int, default=2)
    witness.add_argument("--max-variables", type=int, default=3)
    witness.add_argument("--allow-marks", action="store_true",
                         help="also mark one node (processor or variable) at a time")
    witness.add_argument("--limit", type=int, default=None,
                         help="stop after this many witnesses (default: exhaust)")
    witness.add_argument(
        "--workers", type=_positive_workers, default=None,
        help="process-pool size (1 = serial; default: min(4, cores))",
    )
    witness.add_argument("--checkpoint", metavar="PATH",
                         help="JSONL checkpoint; an existing file resumes the sweep")
    witness.add_argument("--events", metavar="PATH",
                         help="write per-shard progress / witness events as JSONL")
    witness.add_argument("--output", "-o", metavar="PATH",
                         help="write the witness list as JSON")
    witness.set_defaults(func=cmd_witness)

    bench_witness = sub.add_parser(
        "bench-witness", help="witness-sweep microbenchmark: serial vs sharded vs cached"
    )
    bench_witness.add_argument(
        "--pairs", default=None,
        help="comma-separated WEAKER<STRONGER pairs (default: all adjacent pairs)",
    )
    bench_witness.add_argument("--max-processors", type=int, default=3)
    bench_witness.add_argument("--max-names", type=int, default=2)
    bench_witness.add_argument("--max-variables", type=int, default=3)
    bench_witness.add_argument("--allow-marks", action="store_true")
    bench_witness.add_argument("--workers", type=_positive_workers, default=4)
    bench_witness.add_argument("--output", default="BENCH_witness.json",
                               help='JSON artifact path ("" to skip writing)')
    bench_witness.set_defaults(func=cmd_bench_witness)

    explore = sub.add_parser(
        "explore",
        help="bounded exhaustive schedule exploration (symmetry-reduced)",
    )
    explore.add_argument(
        "topology",
        choices=sorted(_TOPOLOGIES) + ["dining", "figure1", "figure2", "figure3"],
    )
    explore.add_argument("size", type=int)
    explore.add_argument("--max-depth", type=int, default=10,
                         help="explore all schedules of at most this length")
    explore.add_argument("--strategy", choices=["bfs", "dfs"], default="bfs")
    explore.add_argument(
        "--fairness", choices=["none", "fair", "k-bounded"], default="none",
        help="restrict enumeration to prefixes of this schedule class",
    )
    explore.add_argument("--k", type=int, default=None,
                         help="bound for --fairness k-bounded")
    explore.add_argument("--no-symmetry", action="store_true",
                         help="deduplicate exact configurations (no Θ-orbit quotient)")
    explore.add_argument(
        "--invariant", action="append", metavar="NAME",
        help="check this named invariant at every state (repeatable; "
             "exclusion, lockstep)",
    )
    explore.add_argument(
        "--probe", action="append", metavar="NAME",
        help="record states matching this named probe (repeatable; "
             "uniform, selected)",
    )
    explore.add_argument("--no-deadlock", action="store_true",
                         help="skip the built-in deadlock check")
    explore.add_argument("--livelock", action="store_true",
                         help="detect livelock cycles (DFS only, needs --progress)")
    explore.add_argument(
        "--progress", choices=["eating", "selected"], default=None,
        help="progress criterion for the livelock check",
    )
    explore.add_argument("--split-depth", type=int, default=2,
                         help="BFS depth at which the frontier is sharded")
    explore.add_argument("--model", choices=["S", "Q", "L", "L2"], default="Q")
    explore.add_argument(
        "--program", choices=["random", "idle", "left-first", "both-forks"],
        default="random",
    )
    explore.add_argument("--program-seed", type=int, default=0)
    explore.add_argument("--mark", action="append", metavar="NODE")
    explore.add_argument("--alternating", action="store_true",
                         help="alternating fork naming (dining only)")
    explore.add_argument(
        "--scheduler", choices=["round-robin", "random", "k-bounded"],
        default="round-robin",
        help="base scheduler recorded in counterexample traces",
    )
    explore.add_argument("--sched-seed", type=int, default=0)
    explore.add_argument("--sched-k", type=int, default=None,
                         help="fairness bound for the k-bounded base scheduler")
    explore.add_argument(
        "--workers", type=_positive_workers, default=None,
        help="process-pool size (1 = serial; default: min(4, cores))",
    )
    explore.add_argument("--checkpoint", metavar="PATH",
                         help="JSONL checkpoint; an existing file resumes the run")
    explore.add_argument("--events", metavar="PATH",
                         help="write per-shard progress / violation events as JSONL")
    explore.add_argument("--output", "-o", metavar="PATH",
                         help="write the deterministic exploration report as JSON")
    explore.add_argument(
        "--states-output", metavar="PATH",
        help="write sorted canonical state digests, one hex digest per "
             "line (identical across worker counts and hash seeds)",
    )
    explore.add_argument(
        "--counterexample", metavar="PATH",
        help="write the violating schedule as a replayable JSONL trace",
    )
    explore.set_defaults(func=cmd_explore)

    bench_explore = sub.add_parser(
        "bench-explore",
        help="schedule-explorer microbenchmark: unreduced vs Θ-reduced vs sharded",
    )
    bench_explore.add_argument("--workers", type=_positive_workers, default=4)
    bench_explore.add_argument("--output", default="BENCH_explore.json",
                               help='JSON artifact path ("" to skip writing)')
    bench_explore.set_defaults(func=cmd_bench_explore)

    parametric = sub.add_parser(
        "parametric",
        help="parameterized verification: detect a cutoff, verify once, "
             "conclude for all n",
    )
    parametric.add_argument(
        "--family", required=True,
        help="symbolic topology family (ring, marked-ring, star, "
             "marked-star, dp, dp-prime)",
    )
    parametric.add_argument(
        "--property", required=True,
        help="parameterized property (deadlock, deadlock-free, lockstep)",
    )
    parametric.add_argument("--start", type=int, default=None,
                            help="first size to probe (default: family minimum)")
    parametric.add_argument("--max-sizes", type=int, default=8,
                            help="give up if no cutoff within this many sizes")
    parametric.add_argument("--omega", type=int, default=2,
                            help="counter-abstraction threshold "
                                 "(counts >= ω collapse to 'many')")
    parametric.add_argument("--structure-depth", type=int, default=2,
                            help="fixed depth of the profile runs that "
                                 "detect stabilization (must not grow with n)")
    parametric.add_argument("--verify-extra", type=int, default=2,
                            help="independently re-check this many sizes "
                                 "above the cutoff, unreduced")
    parametric.add_argument("--no-schema", action="store_true",
                            help="skip the labeling-schema computation")
    parametric.add_argument("--output", "-o", metavar="PATH",
                            help="write the full cutoff report as JSON")
    parametric.set_defaults(func=cmd_parametric)

    bench_parametric = sub.add_parser(
        "bench-parametric",
        help="parametric-verification benchmark: three headline cutoffs, "
             "timed and verified",
    )
    bench_parametric.add_argument(
        "--cases", default=None,
        help="comma-separated FAMILY/PROPERTY pairs "
             "(default: dp/deadlock,dp-prime/deadlock-free,ring/lockstep)",
    )
    bench_parametric.add_argument("--output", default="BENCH_parametric.json",
                                  help='JSON artifact path ("" to skip writing)')
    bench_parametric.add_argument(
        "--determinism-output", metavar="PATH", default=None,
        help="also write the hash-seed-comparable section standalone "
             "(what CI compares byte-for-byte)",
    )
    bench_parametric.set_defaults(func=cmd_bench_parametric)

    serve = sub.add_parser(
        "serve", help="long-lived analysis service (HTTP and/or stdio)"
    )
    serve.add_argument("--http", type=int, default=None, metavar="PORT",
                       help="serve HTTP on this port (0 = ephemeral)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="HTTP bind address (default: 127.0.0.1)")
    serve.add_argument("--stdio", action="store_true",
                       help="serve JSON lines on stdin/stdout (EOF stops)")
    serve.add_argument("--store", metavar="DIR", default=None,
                       help="content-addressed decision store directory "
                            "(omit to run memory-only)")
    serve.add_argument(
        "--workers", type=_positive_workers, default=None,
        help="engine process-pool size per job (1 = serial, the default)",
    )
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-request deadline; exceeding it "
                            "returns {'error': 'deadline'} (default: none)")
    serve.add_argument("--store-max-bytes", type=int, default=None,
                       metavar="BYTES",
                       help="store size cap; flush evicts least-recently-"
                            "used entries past it (default: unbounded)")
    serve.add_argument("--batch-window", type=float, default=0.01,
                       help="request-coalescing window in seconds")
    serve.set_defaults(func=cmd_serve)

    bench_serve = sub.add_parser(
        "bench-serve",
        help="serving benchmark: cold vs warm store under concurrent load",
    )
    bench_serve.add_argument("--store", metavar="DIR", default=None,
                             help="store directory (default: fresh temp dir)")
    bench_serve.add_argument("--requests", type=int, default=24,
                             help="workload length per phase")
    bench_serve.add_argument("--seed", type=int, default=7,
                             help="workload RNG seed")
    bench_serve.add_argument("--workers", type=_positive_workers, default=1)
    bench_serve.add_argument("--batch-window", type=float, default=0.005)
    bench_serve.add_argument("--output", default="BENCH_serve.json",
                             help='JSON artifact path ("" to skip writing)')
    bench_serve.add_argument(
        "--determinism-output", metavar="PATH", default=None,
        help="also write the hash-seed-comparable section standalone "
             "(what CI compares byte-for-byte)",
    )
    bench_serve.set_defaults(func=cmd_bench_serve)

    store_gc = sub.add_parser(
        "store-gc",
        help="decision-store garbage collector: usage, eviction, compaction",
    )
    store_gc.add_argument("dir", help="content-addressed store directory")
    store_gc.add_argument("--max-bytes", type=int, default=None,
                          metavar="BYTES",
                          help="evict least-recently-used entries until the "
                               "store fits (default: compact only)")
    store_gc.add_argument("--check", action="store_true",
                          help="report per-namespace usage and health; exit 1 "
                               "if compaction quarantined anything")
    store_gc.add_argument("--dry-run", action="store_true",
                          help="report what would be evicted without "
                               "touching the store")
    store_gc.add_argument("--output", default=None, metavar="FILE",
                          help="also write the JSON report to FILE")
    store_gc.set_defaults(func=cmd_store_gc)

    replay = sub.add_parser(
        "replay", help="re-run a recorded trace, verifying determinism"
    )
    replay.add_argument("trace", help="path to a JSONL trace file")
    replay.add_argument(
        "--mode", choices=["schedule", "scheduler"], default="schedule",
        help="drive by recorded schedule, or rebuild the seeded scheduler",
    )
    replay.set_defaults(func=cmd_replay)

    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
