"""Algorithm 1: computing the similarity labeling by partition refinement.

The similarity labeling ``Theta`` of a system is the *coarsest* labeling
that respects environments: equal labels imply equal environments (the
condition of Theorem 4).  Coarsest-stable-partition problems are solved by
refinement, and this module offers three interchangeable engines:

* :func:`algorithm1_literal` -- the paper's Algorithm 1, verbatim: start
  from the trivial subsimilarity labeling and repeatedly split a class
  containing two nodes with different environments.  Worst-case cubic;
  kept as executable specification and cross-check.
* :func:`algorithm1_signatures` -- iterated signature hashing (the
  1-dimensional Weisfeiler-Leman strategy): each round relabels every node
  by the pair (old label, environment signature).  O(rounds * (P+V+E)).
* :func:`algorithm1_worklist` -- a Hopcroft/Paige-Tarjan-style worklist
  refiner that only re-examines nodes adjacent to freshly split blocks and
  enqueues all but the largest fragment, the strategy behind Theorem 5's
  O(n log n) bound ([H71]).

All three return the same partition (tests enforce this); the public entry
point :func:`compute_similarity_labeling` picks the worklist engine.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from .environment import EnvironmentModel, environment_signature
from .labeling import Labeling
from .names import NodeId
from .system import System


@dataclass(frozen=True)
class RefinementStats:
    """Instrumentation for a refinement run.

    Attributes:
        rounds: number of global passes (signature engine) or worklist
            pops (worklist engine).
        splits: how many times an existing class was split.
        classes: number of classes in the final labeling.
    """

    rounds: int
    splits: int
    classes: int


@dataclass(frozen=True)
class RefinementResult:
    """A similarity labeling plus instrumentation."""

    labeling: Labeling
    stats: RefinementStats


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------


def _initial_labeling(system: System, include_state: bool) -> Labeling:
    """The coarsest admissible starting point.

    Nodes are split by kind (processor vs variable) and -- when
    ``include_state`` -- by initial state; this is forced by environment
    condition (1), and starting from it merely skips Algorithm 1's first
    round of splits.
    """
    assignment: Dict[NodeId, Hashable] = {}
    for node in system.nodes:
        kind = "P" if system.network.is_processor(node) else "V"
        state = system.state0(node) if include_state else None
        assignment[node] = (kind, state)
    return Labeling(assignment)


def _finalize(system: System, labeling: Labeling) -> Labeling:
    """Deterministically rename labels to CanonicalLabel values."""
    return labeling.canonical(
        lambda node: "P" if system.network.is_processor(node) else "V"
    )


# ----------------------------------------------------------------------
# engine 1: the paper's Algorithm 1, literally
# ----------------------------------------------------------------------


def algorithm1_literal(
    system: System,
    model: EnvironmentModel = EnvironmentModel.MULTISET,
    include_state: bool = True,
) -> RefinementResult:
    """The paper's Algorithm 1 as written.

    ``Phi := trivial subsimilarity labeling;``
    ``do`` some x, y share a label but have different environments ``->``
    pick a new label; give it to every y in x's class whose environment
    differs from x's ``od``.

    The loop invariant is that ``Phi`` stays a subsimilarity labeling
    (similar nodes are never separated, because nodes with different
    environments under a subsimilarity labeling are provably dissimilar);
    at termination no class contains two environments, so ``Phi`` is also
    a supersimilarity labeling (Theorem 4) -- hence the similarity
    labeling.
    """
    assignment: Dict[NodeId, Hashable] = {
        n: l for n, l in _initial_labeling(system, include_state).items()
    }
    rounds = 0
    splits = 0
    fresh = 0
    while True:
        rounds += 1
        labeling = Labeling(assignment)
        sig = {
            node: environment_signature(system, node, labeling, model, include_state)
            for node in system.nodes
        }
        split_performed = False
        for block in labeling.blocks:
            members = sorted(block, key=repr)
            x = members[0]
            different = [y for y in members[1:] if sig[y] != sig[x]]
            if different:
                fresh += 1
                new_label = ("fresh", fresh)
                for y in different:
                    assignment[y] = new_label
                splits += 1
                split_performed = True
                break  # re-evaluate environments under the new labeling
        if not split_performed:
            break
    final = _finalize(system, Labeling(assignment))
    return RefinementResult(final, RefinementStats(rounds, splits, len(final.labels)))


# ----------------------------------------------------------------------
# engine 2: iterated signature hashing
# ----------------------------------------------------------------------


def algorithm1_signatures(
    system: System,
    model: EnvironmentModel = EnvironmentModel.MULTISET,
    include_state: bool = True,
) -> RefinementResult:
    """Global-round refinement: relabel all nodes by (label, signature).

    Because each node's new label embeds its old one, the partition is
    monotonically refined, so the number of classes is strictly increasing
    until the fixpoint; at most ``|P| + |V|`` rounds.
    """
    labeling = _initial_labeling(system, include_state)
    rounds = 0
    splits = 0
    while True:
        rounds += 1
        combined: Dict[NodeId, Hashable] = {}
        for node in system.nodes:
            combined[node] = (
                labeling[node],
                environment_signature(system, node, labeling, model, include_state),
            )
        # Intern the combined signatures as small integers for speed.
        intern: Dict[Hashable, int] = {}
        new_assignment: Dict[NodeId, int] = {}
        for node in system.nodes:
            key = combined[node]
            if key not in intern:
                intern[key] = len(intern)
            new_assignment[node] = intern[key]
        new_labeling = Labeling(new_assignment)
        new_classes = len(new_labeling.labels)
        old_classes = len(labeling.labels)
        if new_classes == old_classes:
            break
        splits += new_classes - old_classes
        labeling = new_labeling
    final = _finalize(system, labeling)
    return RefinementResult(final, RefinementStats(rounds, splits, len(final.labels)))


# ----------------------------------------------------------------------
# engine 3: worklist (Hopcroft / Paige-Tarjan style)
# ----------------------------------------------------------------------


class _Partition:
    """Mutable block partition with split support."""

    def __init__(self, nodes: List[NodeId], initial: Dict[NodeId, Hashable]) -> None:
        by_key: Dict[Hashable, List[NodeId]] = defaultdict(list)
        for node in nodes:
            by_key[initial[node]].append(node)
        self.blocks: List[List[NodeId]] = []
        self.block_of: Dict[NodeId, int] = {}
        for key in sorted(by_key, key=repr):
            idx = len(self.blocks)
            members = by_key[key]
            self.blocks.append(members)
            for node in members:
                self.block_of[node] = idx

    def split_block(self, idx: int, groups: Dict[Hashable, List[NodeId]]) -> List[int]:
        """Replace block ``idx`` by the given groups (a partition of it).

        The largest group keeps the old index; the rest get fresh indices.
        Returns the list of fresh indices (the "smaller halves").
        """
        ordered = sorted(groups.items(), key=lambda kv: (-len(kv[1]), repr(kv[0])))
        keep_key, keep_members = ordered[0]
        self.blocks[idx] = keep_members
        fresh: List[int] = []
        for _key, members in ordered[1:]:
            new_idx = len(self.blocks)
            self.blocks.append(members)
            for node in members:
                self.block_of[node] = new_idx
            fresh.append(new_idx)
        return fresh


def algorithm1_worklist(
    system: System,
    model: EnvironmentModel = EnvironmentModel.MULTISET,
    include_state: bool = True,
) -> RefinementResult:
    """Worklist refinement in the style of [H71] / Paige-Tarjan.

    A worklist holds block indices whose creation may invalidate the
    stability of neighboring blocks.  Popping a *variable* block ``W``
    re-splits only the processor blocks with an edge into ``W`` (by which
    of their names point into ``W``); popping a *processor* block ``W``
    re-splits only the variable blocks adjacent to ``W`` (by per-name
    counts of neighbors in ``W`` for the MULTISET model, by per-name
    presence for the SET model).  All but the largest fragment of every
    split are enqueued, which yields the O(n log n) behavior of Theorem 5.

    A final stabilization check (one signature round) guards against the
    subtle incompleteness of pure smaller-half counting splits; in
    practice it never fires, and tests assert agreement with the other
    engines.
    """
    net = system.network
    nodes = list(system.nodes)
    init = {n: l for n, l in _initial_labeling(system, include_state).items()}
    part = _Partition(nodes, init)

    rounds = 0
    splits = 0
    from collections import deque

    worklist = deque(range(len(part.blocks)))
    queued = set(worklist)

    def enqueue(idx: int) -> None:
        if idx not in queued:
            worklist.append(idx)
            queued.add(idx)

    while worklist:
        w_idx = worklist.popleft()
        queued.discard(w_idx)
        rounds += 1
        w_members = list(part.blocks[w_idx])
        if not w_members:
            continue
        w_is_variable = net.is_variable(w_members[0])

        if w_is_variable:
            # Re-split processor blocks by which names map into W.
            w_set = set(w_members)
            touched: Dict[int, List[NodeId]] = defaultdict(list)
            for v in w_members:
                for p, _name in net.neighbors_of_variable(v):
                    touched[part.block_of[p]].append(p)
            for b_idx, _procs in list(touched.items()):
                members = part.blocks[b_idx]
                groups: Dict[Hashable, List[NodeId]] = defaultdict(list)
                for p in members:
                    key = tuple(
                        name for name in net.names if net.n_nbr(p, name) in w_set
                    )
                    groups[key].append(p)
                if len(groups) > 1:
                    splits += len(groups) - 1
                    for fresh_idx in part.split_block(b_idx, groups):
                        enqueue(fresh_idx)
                    # The kept fragment changed membership; it may need to
                    # split others again.
                    enqueue(b_idx)
        else:
            # Re-split variable blocks by per-name counts of neighbors in W.
            w_set = set(w_members)
            touched_vars: Dict[int, set] = defaultdict(set)
            for p in w_members:
                for name in net.names:
                    v = net.n_nbr(p, name)
                    touched_vars[part.block_of[v]].add(v)
            for b_idx in list(touched_vars):
                members = part.blocks[b_idx]
                groups = defaultdict(list)
                for v in members:
                    per_name = []
                    for name in net.names:
                        in_w = [
                            p
                            for p in net.n_neighbors_of_variable(v, name)
                            if p in w_set
                        ]
                        if model is EnvironmentModel.MULTISET:
                            per_name.append(len(in_w))
                        else:
                            per_name.append(bool(in_w))
                    groups[tuple(per_name)].append(v)
                if len(groups) > 1:
                    splits += len(groups) - 1
                    for fresh_idx in part.split_block(b_idx, groups):
                        enqueue(fresh_idx)
                    enqueue(b_idx)

    labeling = Labeling({n: part.block_of[n] for n in nodes})

    # Safety net: confirm stability with one signature pass; finish with the
    # signature engine from this partition if anything still splits.
    sig_round = {
        node: (
            labeling[node],
            environment_signature(system, node, labeling, model, include_state),
        )
        for node in nodes
    }
    if len(set(sig_round.values())) != len(labeling.labels):  # pragma: no cover
        refined = algorithm1_signatures(system, model, include_state)
        return RefinementResult(
            refined.labeling,
            RefinementStats(rounds + refined.stats.rounds,
                            splits + refined.stats.splits,
                            refined.stats.classes),
        )

    final = _finalize(system, labeling)
    return RefinementResult(final, RefinementStats(rounds, splits, len(final.labels)))


# ----------------------------------------------------------------------
# public entry point
# ----------------------------------------------------------------------

_ENGINES = {
    "literal": algorithm1_literal,
    "signatures": algorithm1_signatures,
    "worklist": algorithm1_worklist,
}


def compute_similarity_labeling(
    system: System,
    model: Optional[EnvironmentModel] = None,
    include_state: bool = True,
    engine: str = "worklist",
) -> RefinementResult:
    """Compute the similarity labeling ``Theta`` of ``system``.

    Args:
        system: the system to label.  Its instruction set selects the
            environment model unless ``model`` overrides it.  Note that
            for instruction set L this computes the *Q-similarity*
            labeling of the given initial state; full L analysis goes
            through the relabel family (see :mod:`repro.core.selection`).
        model: override the environment model.
        include_state: drop environment condition (1) when False
            (Algorithm 3's structural first phase).
        engine: ``"worklist"`` (default), ``"signatures"`` or
            ``"literal"``.
    """
    if model is None:
        model = EnvironmentModel.for_instruction_set(system.instruction_set)
    try:
        fn = _ENGINES[engine]
    except KeyError:
        raise ValueError(f"unknown engine {engine!r}; pick from {sorted(_ENGINES)}")
    return fn(system, model, include_state)
