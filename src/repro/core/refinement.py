"""Algorithm 1: computing the similarity labeling by partition refinement.

The similarity labeling ``Theta`` of a system is the *coarsest* labeling
that respects environments: equal labels imply equal environments (the
condition of Theorem 4).  Coarsest-stable-partition problems are solved by
refinement, and this module offers three interchangeable engines:

* :func:`algorithm1_literal` -- the paper's Algorithm 1, verbatim: start
  from the trivial subsimilarity labeling and repeatedly split a class
  containing two nodes with different environments.  Worst-case cubic;
  kept as executable specification and cross-check.
* :func:`algorithm1_signatures` -- iterated signature hashing (the
  1-dimensional Weisfeiler-Leman strategy): each round relabels every node
  by the pair (old label, environment signature).  O(rounds * (P+V+E)).
* :func:`algorithm1_worklist` -- a Hopcroft/Paige-Tarjan-style worklist
  refiner that only re-examines nodes adjacent to freshly split blocks and
  enqueues all but the largest fragment, the strategy behind Theorem 5's
  O(n log n) bound ([H71]).

All three return the same partition (tests enforce this); the public entry
point :func:`compute_similarity_labeling` picks the worklist engine.

Fast path
---------

Every engine accepts ``use_incidence_cache`` (default True).  The cached
path reads adjacency from the network's shared
:class:`~repro.core.network.IncidenceCache` and runs entirely on interned
small integers: node ids become array indices, labels become consecutive
ints, and block membership tests are int-set lookups.  Splitting only ever
touches nodes *incident to the popped block*, never the untouched
remainder of a neighboring block, which is what turns the worklist engine
from quadratic-in-practice into the near-linear behavior Theorem 5
promises.

``use_incidence_cache=False`` selects the reference path: the original
straightforward implementations that re-derive neighbor lists through the
:class:`~repro.core.network.Network` accessors on every use.  It exists as
an executable baseline -- tests assert the two paths agree bit-for-bit and
the microbenchmarks (:mod:`repro.perf.microbench`) measure the gap.
"""

from __future__ import annotations

import time
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set

from ..obs.events import RefinementCompleted, RefinementRound
from .environment import EnvironmentModel, environment_signature
from .labeling import Labeling
from .names import NodeId
from .system import System


@dataclass(frozen=True)
class RefinementStats:
    """Instrumentation for a refinement run.

    Attributes:
        rounds: number of global passes (signature engine) or worklist
            pops (worklist engine).
        splits: how many times an existing class was split.
        classes: number of classes in the final labeling.
    """

    rounds: int
    splits: int
    classes: int


@dataclass(frozen=True)
class RefinementResult:
    """A similarity labeling plus instrumentation."""

    labeling: Labeling
    stats: RefinementStats


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------


def _emit_completion(sink, engine: str, result: "RefinementResult", start: float) -> None:
    """Publish a :class:`RefinementCompleted` event when observed."""
    if sink is None:
        return
    sink.on_event(
        RefinementCompleted(
            engine=engine,
            rounds=result.stats.rounds,
            splits=result.stats.splits,
            classes=result.stats.classes,
            elapsed=time.perf_counter() - start,
        )
    )


def _initial_labeling(system: System, include_state: bool) -> Labeling:
    """The coarsest admissible starting point.

    Nodes are split by kind (processor vs variable) and -- when
    ``include_state`` -- by initial state; this is forced by environment
    condition (1), and starting from it merely skips Algorithm 1's first
    round of splits.
    """
    assignment: Dict[NodeId, Hashable] = {}
    for node in system.nodes:
        kind = "P" if system.network.is_processor(node) else "V"
        state = system.state0(node) if include_state else None
        assignment[node] = (kind, state)
    return Labeling(assignment)


def _finalize(system: System, labeling: Labeling) -> Labeling:
    """Deterministically rename labels to CanonicalLabel values."""
    return labeling.canonical(
        lambda node: "P" if system.network.is_processor(node) else "V"
    )


def _interned_initial_labels(system: System, include_state: bool) -> List[int]:
    """Initial labels as consecutive ints over the incidence node order.

    Processors come first (indices ``0..|P|-1``) then variables, matching
    :class:`~repro.core.network.IncidenceCache` numbering.  Label codes are
    assigned by sorted repr of the ``(kind, state)`` keys so the initial
    partition is identical to :func:`_initial_labeling`'s.
    """
    inc = system.network.incidence
    keys: List[Hashable] = []
    for node in inc.processors:
        keys.append(("P", system.state0(node) if include_state else None))
    for node in inc.variables:
        keys.append(("V", system.state0(node) if include_state else None))
    code: Dict[Hashable, int] = {}
    for key in sorted(set(keys), key=repr):
        code[key] = len(code)
    return [code[k] for k in keys]


# ----------------------------------------------------------------------
# engine 1: the paper's Algorithm 1, literally
# ----------------------------------------------------------------------


def algorithm1_literal(
    system: System,
    model: EnvironmentModel = EnvironmentModel.MULTISET,
    include_state: bool = True,
    use_incidence_cache: bool = True,
    sink=None,
) -> RefinementResult:
    """The paper's Algorithm 1 as written.

    ``Phi := trivial subsimilarity labeling;``
    ``do`` some x, y share a label but have different environments ``->``
    pick a new label; give it to every y in x's class whose environment
    differs from x's ``od``

    The loop invariant is that ``Phi`` stays a subsimilarity labeling
    (similar nodes are never separated, because nodes with different
    environments under a subsimilarity labeling are provably dissimilar);
    at termination no class contains two environments, so ``Phi`` is also
    a supersimilarity labeling (Theorem 4) -- hence the similarity
    labeling.
    """
    start = time.perf_counter()
    incidence = (
        system.network.incidence
        if use_incidence_cache
        else system.network.build_incidence()
    )
    assignment: Dict[NodeId, Hashable] = {
        n: l for n, l in _initial_labeling(system, include_state).items()
    }
    rounds = 0
    splits = 0
    fresh = 0
    while True:
        rounds += 1
        if sink is not None:
            sink.on_event(
                RefinementRound("literal", rounds, len(set(assignment.values())))
            )
        labeling = Labeling(assignment)
        sig = {
            node: environment_signature(
                system, node, labeling, model, include_state, incidence
            )
            for node in system.nodes
        }
        split_performed = False
        for block in labeling.blocks:
            members = sorted(block, key=repr)
            x = members[0]
            different = [y for y in members[1:] if sig[y] != sig[x]]
            if different:
                fresh += 1
                new_label = ("fresh", fresh)
                for y in different:
                    assignment[y] = new_label
                splits += 1
                split_performed = True
                break  # re-evaluate environments under the new labeling
        if not split_performed:
            break
    final = _finalize(system, Labeling(assignment))
    result = RefinementResult(final, RefinementStats(rounds, splits, len(final.labels)))
    _emit_completion(sink, "literal", result, start)
    return result


# ----------------------------------------------------------------------
# engine 2: iterated signature hashing
# ----------------------------------------------------------------------


def algorithm1_signatures(
    system: System,
    model: EnvironmentModel = EnvironmentModel.MULTISET,
    include_state: bool = True,
    use_incidence_cache: bool = True,
    sink=None,
) -> RefinementResult:
    """Global-round refinement: relabel all nodes by (label, signature).

    Because each node's new label embeds its old one, the partition is
    monotonically refined, so the number of classes is strictly increasing
    until the fixpoint; at most ``|P| + |V|`` rounds.
    """
    start = time.perf_counter()
    if use_incidence_cache:
        result = _signatures_interned(system, model, include_state, sink)
    else:
        result = _signatures_reference(system, model, include_state, sink)
    _emit_completion(sink, "signatures", result, start)
    return result


def _signatures_interned(
    system: System, model: EnvironmentModel, include_state: bool, sink=None
) -> RefinementResult:
    """Cached fast path: interned int labels over incidence arrays.

    Per round, a processor's key is its label plus the label row of its
    named neighbors; a variable's key is its label plus per-name label
    counts (MULTISET) or label sets (SET).  Keys are interned to
    consecutive ints so the next round compares small ints only.
    """
    inc = system.network.incidence
    n_procs = inc.n_processors
    n_nodes = inc.n_nodes
    proc_rows = inc.proc_rows
    var_rows = inc.var_rows
    multiset = model is EnvironmentModel.MULTISET

    labels = _interned_initial_labels(system, include_state)
    n_classes = len(set(labels))
    rounds = 0
    splits = 0
    while True:
        rounds += 1
        code: Dict[Hashable, int] = {}
        new_labels: List[int] = [0] * n_nodes
        for i in range(n_procs):
            # Processor and variable keys cannot collide: the embedded old
            # label already separates the two kinds.
            key = (labels[i], tuple(labels[j] for j in proc_rows[i]))
            c = code.get(key)
            if c is None:
                c = code[key] = len(code)
            new_labels[i] = c
        for i in range(n_procs, n_nodes):
            per_name: List[Hashable] = []
            for procs in var_rows[i - n_procs]:
                got = sorted(labels[p] for p in procs)
                if multiset:
                    per_name.append(tuple(got))
                else:
                    per_name.append(tuple(sorted(set(got))))
            key = (labels[i], tuple(per_name))
            c = code.get(key)
            if c is None:
                c = code[key] = len(code)
            new_labels[i] = c
        new_classes = len(code)
        if sink is not None:
            sink.on_event(RefinementRound("signatures", rounds, new_classes))
        if new_classes == n_classes:
            break
        splits += new_classes - n_classes
        n_classes = new_classes
        labels = new_labels
    assignment = {inc.node_of(i): labels[i] for i in range(n_nodes)}
    final = _finalize(system, Labeling(assignment))
    return RefinementResult(final, RefinementStats(rounds, splits, len(final.labels)))


def _signatures_reference(
    system: System, model: EnvironmentModel, include_state: bool, sink=None
) -> RefinementResult:
    """Reference path: nested-tuple signatures via the Network accessors."""
    incidence = system.network.build_incidence()
    labeling = _initial_labeling(system, include_state)
    rounds = 0
    splits = 0
    while True:
        rounds += 1
        combined: Dict[NodeId, Hashable] = {}
        for node in system.nodes:
            combined[node] = (
                labeling[node],
                environment_signature(
                    system, node, labeling, model, include_state, incidence
                ),
            )
        # Intern the combined signatures as small integers for speed.
        intern: Dict[Hashable, int] = {}
        new_assignment: Dict[NodeId, int] = {}
        for node in system.nodes:
            key = combined[node]
            if key not in intern:
                intern[key] = len(intern)
            new_assignment[node] = intern[key]
        new_labeling = Labeling(new_assignment)
        new_classes = len(new_labeling.labels)
        old_classes = len(labeling.labels)
        if sink is not None:
            sink.on_event(RefinementRound("signatures", rounds, new_classes))
        if new_classes == old_classes:
            break
        splits += new_classes - old_classes
        labeling = new_labeling
    final = _finalize(system, labeling)
    return RefinementResult(final, RefinementStats(rounds, splits, len(final.labels)))


# ----------------------------------------------------------------------
# engine 3: worklist (Hopcroft / Paige-Tarjan style)
# ----------------------------------------------------------------------


class _Partition:
    """Mutable block partition with split support (reference path)."""

    def __init__(self, nodes: List[NodeId], initial: Dict[NodeId, Hashable]) -> None:
        by_key: Dict[Hashable, List[NodeId]] = defaultdict(list)
        for node in nodes:
            by_key[initial[node]].append(node)
        self.blocks: List[List[NodeId]] = []
        self.block_of: Dict[NodeId, int] = {}
        for key in sorted(by_key, key=repr):
            idx = len(self.blocks)
            members = by_key[key]
            self.blocks.append(members)
            for node in members:
                self.block_of[node] = idx

    def split_block(self, idx: int, groups: Dict[Hashable, List[NodeId]]) -> List[int]:
        """Replace block ``idx`` by the given groups (a partition of it).

        The largest group keeps the old index; the rest get fresh indices.
        Returns the list of fresh indices (the "smaller halves").
        """
        ordered = sorted(groups.items(), key=lambda kv: (-len(kv[1]), repr(kv[0])))
        keep_key, keep_members = ordered[0]
        self.blocks[idx] = keep_members
        fresh: List[int] = []
        for _key, members in ordered[1:]:
            new_idx = len(self.blocks)
            self.blocks.append(members)
            for node in members:
                self.block_of[node] = new_idx
            fresh.append(new_idx)
        return fresh


def algorithm1_worklist(
    system: System,
    model: EnvironmentModel = EnvironmentModel.MULTISET,
    include_state: bool = True,
    use_incidence_cache: bool = True,
    sink=None,
) -> RefinementResult:
    """Worklist refinement in the style of [H71] / Paige-Tarjan.

    A worklist holds block indices whose creation may invalidate the
    stability of neighboring blocks.  Popping a *variable* block ``W``
    re-splits only the processor blocks with an edge into ``W`` (by which
    of their names point into ``W``); popping a *processor* block ``W``
    re-splits only the variable blocks adjacent to ``W`` (by per-name
    counts of neighbors in ``W`` for the MULTISET model, by per-name
    presence for the SET model).  All but the largest fragment of every
    split are enqueued, which yields the O(n log n) behavior of Theorem 5.

    The cached path additionally never scans block members that have no
    edge into ``W``: untouched members stay in place as the split
    remainder, so a pop costs O(edges incident to W), not O(size of the
    touched blocks).  The reference path re-groups whole blocks, which is
    quadratic on e.g. a fully-refining marked ring.

    A final stabilization check (one signature round) guards against the
    subtle incompleteness of pure smaller-half counting splits; in
    practice it never fires, and tests assert agreement with the other
    engines.

    The worklist engines report only a completion event (a worklist pop
    is too fine-grained to be a useful "round").
    """
    start = time.perf_counter()
    if use_incidence_cache:
        result = _worklist_interned(system, model, include_state)
    else:
        result = _worklist_reference(system, model, include_state)
    _emit_completion(sink, "worklist", result, start)
    return result


def _worklist_interned(
    system: System, model: EnvironmentModel, include_state: bool
) -> RefinementResult:
    """Cached fast path: int-indexed blocks over incidence arrays."""
    inc = system.network.incidence
    n_procs = inc.n_processors
    n_nodes = inc.n_nodes
    proc_rows = inc.proc_rows
    var_rows = inc.var_rows
    n_names = len(inc.names)
    multiset = model is EnvironmentModel.MULTISET

    init = _interned_initial_labels(system, include_state)
    by_label: Dict[int, Set[int]] = defaultdict(set)
    for i, label in enumerate(init):
        by_label[label].add(i)
    blocks: List[Set[int]] = [by_label[label] for label in sorted(by_label)]
    block_of: List[int] = [0] * n_nodes
    for idx, members in enumerate(blocks):
        for i in members:
            block_of[i] = idx

    worklist = deque(range(len(blocks)))
    queued = set(worklist)
    rounds = 0
    splits = 0

    def enqueue(idx: int) -> None:
        if idx not in queued:
            worklist.append(idx)
            queued.add(idx)

    def split_by(touched: Dict[int, Hashable], can_skip_largest: bool) -> None:
        """Re-split the blocks of the touched nodes by their keys.

        Nodes of a block that are *not* in ``touched`` implicitly share
        the "no edges into W" key and stay in place as the remainder, so
        the cost is O(len(touched)), independent of block sizes.

        When ``can_skip_largest`` holds, the largest resulting fragment is
        *not* enqueued unless the split block was already pending: a
        future splitter's effect on neighbors is determined by the old
        block plus all-but-one of its fragments (counts are additive, and
        a name maps into exactly one fragment), which is the smaller-half
        discipline behind Theorem 5's O(n log n) bound.  Presence-based
        (SET-model) keys of processor fragments are not recoverable that
        way, so those splits enqueue every fragment.
        """
        nonlocal splits
        by_block: Dict[int, Dict[Hashable, List[int]]] = {}
        for node, key in touched.items():
            by_block.setdefault(block_of[node], {}).setdefault(key, []).append(node)
        for b_idx, groups in by_block.items():
            block = blocks[b_idx]
            touched_count = sum(len(g) for g in groups.values())
            if len(groups) == 1 and touched_count == len(block):
                continue  # every member touched identically: stable
            was_queued = b_idx in queued
            fragments = sorted(
                groups.items(), key=lambda kv: (-len(kv[1]), repr(kv[0]))
            )
            if touched_count == len(block):
                # No untouched remainder: the largest fragment keeps the
                # old index.
                blocks[b_idx] = set(fragments[0][1])
                rest = fragments[1:]
            else:
                # The untouched remainder keeps the old index; every
                # touched group moves out.
                for group in groups.values():
                    block.difference_update(group)
                rest = fragments
            new_indices: List[int] = []
            for _key, members in rest:
                new_idx = len(blocks)
                blocks.append(set(members))
                for node in members:
                    block_of[node] = new_idx
                new_indices.append(new_idx)
                splits += 1
            parts = [(b_idx, len(blocks[b_idx]))] + [
                (idx, len(blocks[idx])) for idx in new_indices
            ]
            if can_skip_largest and not was_queued:
                parts.sort(key=lambda iv: -iv[1])
                parts = parts[1:]
            for idx, _size in parts:
                enqueue(idx)

    while worklist:
        w_idx = worklist.popleft()
        queued.discard(w_idx)
        rounds += 1
        w_members = blocks[w_idx]
        if not w_members:
            continue
        w_is_variable = next(iter(w_members)) >= n_procs

        if w_is_variable:
            # Key processors by the bitmask of their names mapping into W.
            # A name maps into exactly one fragment of a split variable
            # block, so the largest fragment may be skipped under MULTISET
            # -- but the resulting *processor* fragments act as SET-model
            # splitters of variables, where presence w.r.t. the skipped
            # fragment is not recoverable; be conservative there.
            proc_mask: Dict[int, int] = {}
            for v in w_members:
                rows = var_rows[v - n_procs]
                for pos in range(n_names):
                    bit = 1 << pos
                    for p in rows[pos]:
                        proc_mask[p] = proc_mask.get(p, 0) | bit
            split_by(proc_mask, can_skip_largest=multiset)
        else:
            # Key variables by per-name counts (MULTISET) or presence
            # (SET) of neighbors inside W.  Variable fragments split
            # processors by exclusive name membership, which is always
            # recoverable from all-but-one fragment.
            var_counts: Dict[int, List[int]] = {}
            for p in w_members:
                row = proc_rows[p]
                for pos in range(n_names):
                    v = row[pos]
                    counts = var_counts.get(v)
                    if counts is None:
                        counts = var_counts[v] = [0] * n_names
                    counts[pos] += 1
            if multiset:
                keys = {v: tuple(c) for v, c in var_counts.items()}
            else:
                keys = {v: tuple(x > 0 for x in c) for v, c in var_counts.items()}
            split_by(keys, can_skip_largest=True)

    # Safety net: confirm stability with one interned signature pass;
    # finish with the signature engine from scratch if anything still
    # splits (never observed; agreement tests would catch it).
    seen_keys: set = set()
    for i in range(n_procs):
        seen_keys.add((block_of[i], tuple(block_of[j] for j in proc_rows[i])))
    for i in range(n_procs, n_nodes):
        per_name = []
        for procs in var_rows[i - n_procs]:
            got = sorted(block_of[p] for p in procs)
            per_name.append(tuple(got) if multiset else tuple(sorted(set(got))))
        seen_keys.add((block_of[i], tuple(per_name)))
    if len(seen_keys) != len(blocks):  # pragma: no cover
        refined = _signatures_interned(system, model, include_state)
        return RefinementResult(
            refined.labeling,
            RefinementStats(rounds + refined.stats.rounds,
                            splits + refined.stats.splits,
                            refined.stats.classes),
        )

    assignment = {inc.node_of(i): block_of[i] for i in range(n_nodes)}
    final = _finalize(system, Labeling(assignment))
    return RefinementResult(final, RefinementStats(rounds, splits, len(final.labels)))


def _worklist_reference(
    system: System, model: EnvironmentModel, include_state: bool
) -> RefinementResult:
    """Reference path: node-id blocks, whole-block regrouping per pop."""
    net = system.network
    nodes = list(system.nodes)
    init = {n: l for n, l in _initial_labeling(system, include_state).items()}
    part = _Partition(nodes, init)

    rounds = 0
    splits = 0

    worklist = deque(range(len(part.blocks)))
    queued = set(worklist)

    def enqueue(idx: int) -> None:
        if idx not in queued:
            worklist.append(idx)
            queued.add(idx)

    while worklist:
        w_idx = worklist.popleft()
        queued.discard(w_idx)
        rounds += 1
        w_members = list(part.blocks[w_idx])
        if not w_members:
            continue
        w_is_variable = net.is_variable(w_members[0])

        if w_is_variable:
            # Re-split processor blocks by which names map into W.
            w_set = set(w_members)
            touched: Dict[int, List[NodeId]] = defaultdict(list)
            for v in w_members:
                for p, _name in net.neighbors_of_variable(v):
                    touched[part.block_of[p]].append(p)
            for b_idx, _procs in list(touched.items()):
                members = part.blocks[b_idx]
                groups: Dict[Hashable, List[NodeId]] = defaultdict(list)
                for p in members:
                    key = tuple(
                        name for name in net.names if net.n_nbr(p, name) in w_set
                    )
                    groups[key].append(p)
                if len(groups) > 1:
                    splits += len(groups) - 1
                    for fresh_idx in part.split_block(b_idx, groups):
                        enqueue(fresh_idx)
                    # The kept fragment changed membership; it may need to
                    # split others again.
                    enqueue(b_idx)
        else:
            # Re-split variable blocks by per-name counts of neighbors in W.
            w_set = set(w_members)
            touched_vars: Dict[int, set] = defaultdict(set)
            for p in w_members:
                for name in net.names:
                    v = net.n_nbr(p, name)
                    touched_vars[part.block_of[v]].add(v)
            for b_idx in list(touched_vars):
                members = part.blocks[b_idx]
                groups = defaultdict(list)
                for v in members:
                    per_name = []
                    for name in net.names:
                        in_w = [
                            p
                            for p in net.n_neighbors_of_variable(v, name)
                            if p in w_set
                        ]
                        if model is EnvironmentModel.MULTISET:
                            per_name.append(len(in_w))
                        else:
                            per_name.append(bool(in_w))
                    groups[tuple(per_name)].append(v)
                if len(groups) > 1:
                    splits += len(groups) - 1
                    for fresh_idx in part.split_block(b_idx, groups):
                        enqueue(fresh_idx)
                    enqueue(b_idx)

    labeling = Labeling({n: part.block_of[n] for n in nodes})

    # Safety net: confirm stability with one signature pass; finish with the
    # signature engine from this partition if anything still splits.
    incidence = net.build_incidence()
    sig_round = {
        node: (
            labeling[node],
            environment_signature(
                system, node, labeling, model, include_state, incidence
            ),
        )
        for node in nodes
    }
    if len(set(sig_round.values())) != len(labeling.labels):  # pragma: no cover
        refined = _signatures_reference(system, model, include_state)
        return RefinementResult(
            refined.labeling,
            RefinementStats(rounds + refined.stats.rounds,
                            splits + refined.stats.splits,
                            refined.stats.classes),
        )

    final = _finalize(system, labeling)
    return RefinementResult(final, RefinementStats(rounds, splits, len(final.labels)))


# ----------------------------------------------------------------------
# public entry point
# ----------------------------------------------------------------------

_ENGINES = {
    "literal": algorithm1_literal,
    "signatures": algorithm1_signatures,
    "worklist": algorithm1_worklist,
}


def compute_similarity_labeling(
    system: System,
    model: Optional[EnvironmentModel] = None,
    include_state: bool = True,
    engine: str = "worklist",
    use_incidence_cache: bool = True,
    sink=None,
) -> RefinementResult:
    """Compute the similarity labeling ``Theta`` of ``system``.

    Args:
        system: the system to label.  Its instruction set selects the
            environment model unless ``model`` overrides it.  Note that
            for instruction set L this computes the *Q-similarity*
            labeling of the given initial state; full L analysis goes
            through the relabel family (see :mod:`repro.core.selection`).
        model: override the environment model.
        include_state: drop environment condition (1) when False
            (Algorithm 3's structural first phase).
        engine: ``"worklist"`` (default), ``"signatures"`` or
            ``"literal"``.
        use_incidence_cache: read adjacency from the network's shared
            incidence cache (fast interned path); ``False`` selects the
            reference path that re-derives edges through the Network
            accessors.
        sink: optional event sink (:mod:`repro.obs`) receiving
            refinement-round and completion events.
    """
    if model is None:
        model = EnvironmentModel.for_instruction_set(system.instruction_set)
    try:
        fn = _ENGINES[engine]
    except KeyError:
        raise ValueError(f"unknown engine {engine!r}; pick from {sorted(_ENGINES)}")
    return fn(system, model, include_state, use_incidence_cache, sink=sink)
