"""Automorphisms of system graphs (paper, Section 7).

The graph-theoretic definition of symmetry used in DP/DP' is: two nodes
are symmetric if some automorphism of the system graph maps one to the
other.  An automorphism here is a bijection ``pi`` on nodes that

* maps processors to processors and variables to variables,
* preserves initial states (node labels), unless ``ignore_state`` is set,
* preserves named edges: ``pi(n-nbr(p, n)) = n-nbr(pi(p), n)`` for every
  processor ``p`` and name ``n``.

The search is a standard backtracking matcher over processors with two
prunings: candidate images are restricted to the node's class under the
(color-refinement) similarity labeling -- which every automorphism must
preserve, since it is an isomorphism invariant -- and variable images are
forced eagerly as processor images are chosen.

This module is built from scratch (no networkx dependency) because the
matcher must respect edge *names* and the processor/variable split, and
because it doubles as a substrate exercised by the Theorem 10/11 tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from math import factorial
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from .labeling import Labeling
from .names import NodeId
from .refinement import compute_similarity_labeling
from .system import System


class _MatcherContext:
    """Precomputed data shared by all searches over one system."""

    def __init__(self, system: System, ignore_state: bool) -> None:
        self.system = system
        self.net = system.network
        self.invariant: Labeling = compute_similarity_labeling(
            system, include_state=not ignore_state
        ).labeling
        self.processors: Tuple[NodeId, ...] = self.net.processors
        # Candidate images per processor: members of its invariant class.
        by_label: Dict[object, List[NodeId]] = {}
        for p in self.processors:
            by_label.setdefault(self.invariant[p], []).append(p)
        self.candidates: Dict[NodeId, Tuple[NodeId, ...]] = {
            p: tuple(by_label[self.invariant[p]]) for p in self.processors
        }
        # Variables not adjacent to any processor can only arise when they
        # were declared explicitly; they may permute freely within classes.
        self.isolated_variables: Tuple[NodeId, ...] = tuple(
            v for v in self.net.variables if not self.net.neighbors_of_variable(v)
        )


def _search(
    ctx: _MatcherContext,
    order: List[NodeId],
    idx: int,
    mapping: Dict[NodeId, NodeId],
    used_procs: set,
    used_vars: set,
    emit_all: bool,
) -> Iterator[Dict[NodeId, NodeId]]:
    """Backtracking over processor images; yields completed mappings.

    ``mapping`` holds images for processors assigned so far and all
    variables forced by them.  When ``emit_all`` is False the caller stops
    after the first yield.
    """
    if idx == len(order):
        yield dict(mapping)
        return
    p = order[idx]
    if p in mapping:
        # Image fixed by the caller's partial map; just validate neighbors.
        candidates: Iterable[NodeId] = (mapping[p],)
        prefixed = True
    else:
        candidates = ctx.candidates[p]
        prefixed = False
    for q in candidates:
        if not prefixed and q in used_procs:
            continue
        trail: List[NodeId] = []
        ok = True
        if not prefixed:
            mapping[p] = q
            used_procs.add(q)
            trail.append(p)
        for name in ctx.net.names:
            v = ctx.net.n_nbr(p, name)
            w = ctx.net.n_nbr(mapping[p], name)
            if v in mapping:
                if mapping[v] != w:
                    ok = False
                    break
            else:
                if w in used_vars:
                    ok = False
                    break
                if ctx.invariant[v] != ctx.invariant[w]:
                    ok = False
                    break
                mapping[v] = w
                used_vars.add(w)
                trail.append(v)
        if ok:
            yield from _search(ctx, order, idx + 1, mapping, used_procs, used_vars, emit_all)
        # undo
        for node in reversed(trail):
            img = mapping.pop(node)
            if node in ctx.net._processor_set:  # noqa: SLF001 - hot path
                used_procs.discard(img)
            else:
                used_vars.discard(img)


def _isolated_extensions(
    ctx: _MatcherContext, base: Dict[NodeId, NodeId], emit_all: bool
) -> Iterator[Dict[NodeId, NodeId]]:
    """Extend a processor-complete mapping over isolated variables."""
    isolated = [v for v in ctx.isolated_variables if v not in base]
    if not isolated:
        yield base
        return
    classes: Dict[object, List[NodeId]] = {}
    for v in isolated:
        classes.setdefault(ctx.invariant[v], []).append(v)
    groups = [sorted(vs, key=repr) for _label, vs in sorted(classes.items(), key=lambda kv: repr(kv[0]))]

    def rec(i: int, acc: Dict[NodeId, NodeId]) -> Iterator[Dict[NodeId, NodeId]]:
        if i == len(groups):
            yield dict(acc)
            return
        group = groups[i]
        perms = permutations(group) if emit_all else (tuple(group),)
        for perm in perms:
            for v, w in zip(group, perm):
                acc[v] = w
            yield from rec(i + 1, acc)
            for v in group:
                del acc[v]

    yield from rec(0, dict(base))


def iter_automorphisms(
    system: System,
    ignore_state: bool = False,
    limit: Optional[int] = None,
) -> Iterator[Dict[NodeId, NodeId]]:
    """Yield automorphisms of the system graph (including the identity).

    Args:
        system: the system whose graph is searched.
        ignore_state: drop the node-label (initial state) constraint.
        limit: stop after this many automorphisms (the group can be
            factorially large, e.g. a star's leaves permute freely).
    """
    ctx = _MatcherContext(system, ignore_state)
    order = sorted(ctx.processors, key=lambda p: (len(ctx.candidates[p]), repr(p)))
    count = 0
    for base in _search(ctx, order, 0, {}, set(), set(), emit_all=True):
        for full in _isolated_extensions(ctx, base, emit_all=True):
            yield full
            count += 1
            if limit is not None and count >= limit:
                return


def _find_in_context(
    ctx: _MatcherContext, partial: Optional[Mapping[NodeId, NodeId]]
) -> Optional[Dict[NodeId, NodeId]]:
    """The body of :func:`find_automorphism` over a prebuilt context.

    Splitting this out lets callers that issue many extension queries on
    one system (notably :func:`stabilizer_chain`) pay the similarity
    refinement once instead of per query.
    """
    partial = dict(partial or {})
    for node, image in partial.items():
        if ctx.net.is_processor(node) != ctx.net.is_processor(image):
            return None
        if ctx.invariant[node] != ctx.invariant[image]:
            return None
    # Variables in the partial map are handled by pinning one adjacent
    # processor ordering; simplest correct approach: translate variable
    # constraints into a post-check.
    proc_partial = {n: i for n, i in partial.items() if ctx.net.is_processor(n)}
    var_partial = {n: i for n, i in partial.items() if not ctx.net.is_processor(n)}
    if len(set(proc_partial.values())) != len(proc_partial):
        # Non-injective prefix: _search skips the used-image check for
        # prefixed candidates, so reject here.
        return None
    mapping: Dict[NodeId, NodeId] = dict(proc_partial)
    used_procs = set(proc_partial.values())
    used_vars: set = set()
    order = sorted(ctx.processors, key=lambda p: (p not in mapping, len(ctx.candidates[p]), repr(p)))
    for base in _search(ctx, order, 0, mapping, used_procs, used_vars, emit_all=True):
        if all(base.get(v) == w for v, w in var_partial.items()):
            for full in _isolated_extensions(ctx, base, emit_all=False):
                return full
    return None


def find_automorphism(
    system: System,
    partial: Optional[Mapping[NodeId, NodeId]] = None,
    ignore_state: bool = False,
) -> Optional[Dict[NodeId, NodeId]]:
    """Find one automorphism extending ``partial`` (processor images only),
    or None if no such automorphism exists.

    The common query is ``partial={x: y}``: *is there an automorphism
    mapping x to y?* -- the paper's definition of x and y being symmetric.
    """
    return _find_in_context(_MatcherContext(system, ignore_state), partial)


@dataclass(frozen=True)
class ChainLevel:
    """One level of a stabilizer chain: the orbit of base point
    ``point_index`` (a ``system.processors`` position) under the
    stabilizer of all earlier base points, with one coset representative
    per orbit member.

    Transversal elements are stored as index arrays over both node axes:
    ``parr[j]`` is the processor index of ``sigma(processors[j])`` and
    ``varr[j]`` the variable index of ``sigma(variables[j])``, so
    composition is array gather and never touches node ids again.
    """

    point_index: int
    orbit: Tuple[int, ...]
    transversal: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = field(hash=False)


@dataclass(frozen=True)
class StabilizerChain:
    """A Schreier–Sims-style stabilizer chain of the automorphism group.

    Base points are the processors in ``system.processors`` order -- the
    same order canonicalization minimizes state slots in, so a greedy
    minimal-image search walks the chain front to back.  Fixing every
    processor forces every edge-attached variable (named edges pin their
    images), so the chain exhausts that factor of the group; variables
    with no processor neighbors permute freely within similarity classes
    and are recorded separately in ``isolated_classes`` (as tuples of
    ``system.variables`` positions).  ``order`` is the exact group order:
    the product of orbit sizes times the factorials of isolated-class
    sizes -- no enumeration, no truncation cap.
    """

    levels: Tuple[ChainLevel, ...]
    isolated_classes: Tuple[Tuple[int, ...], ...]
    order: int
    n_procs: int
    n_vars: int


def stabilizer_chain(system: System, ignore_state: bool = False) -> StabilizerChain:
    """Build the stabilizer chain of ``system``'s automorphism group.

    Cost is polynomial: per base point, one backtracking search per
    candidate image (bounded by the similarity-class size), all sharing
    one refinement context -- against the factorial worst case of
    enumerating the group element by element.
    """
    ctx = _MatcherContext(system, ignore_state)
    procs = tuple(system.processors)
    variables = tuple(system.variables)
    pindex = {p: i for i, p in enumerate(procs)}
    vindex = {v: i for i, v in enumerate(variables)}
    identity = (tuple(range(len(procs))), tuple(range(len(variables))))

    levels: List[ChainLevel] = []
    fixed: Dict[NodeId, NodeId] = {}
    order = 1
    for i, p in enumerate(procs):
        transversal = {i: identity}
        for q in ctx.candidates[p]:
            if q == p or q in fixed:
                continue
            partial = dict(fixed)
            partial[p] = q
            auto = _find_in_context(ctx, partial)
            if auto is None:
                continue
            parr = tuple(pindex[auto[pp]] for pp in procs)
            varr = tuple(vindex[auto[vv]] for vv in variables)
            transversal[pindex[q]] = (parr, varr)
        levels.append(
            ChainLevel(i, tuple(sorted(transversal)), transversal)
        )
        order *= len(transversal)
        fixed[p] = p

    classes: Dict[object, List[int]] = {}
    for v in ctx.isolated_variables:
        classes.setdefault(ctx.invariant[v], []).append(vindex[v])
    isolated = tuple(
        tuple(sorted(members))
        for _label, members in sorted(classes.items(), key=lambda kv: repr(kv[0]))
    )
    for members in isolated:
        order *= factorial(len(members))

    return StabilizerChain(
        levels=tuple(levels),
        isolated_classes=isolated,
        order=order,
        n_procs=len(procs),
        n_vars=len(variables),
    )


def are_symmetric(system: System, x: NodeId, y: NodeId, ignore_state: bool = False) -> bool:
    """Graph-theoretic symmetry: some automorphism maps ``x`` to ``y``."""
    if x == y:
        return True
    return find_automorphism(system, {x: y}, ignore_state) is not None


def automorphism_orbits(
    system: System, ignore_state: bool = False
) -> Tuple[frozenset, ...]:
    """The orbits of the automorphism group (symmetry equivalence classes).

    Computed without enumerating the whole group: every discovered
    automorphism contributes all of its cycles to a union-find, and only
    unresolved pairs inside an invariant class trigger a fresh search.
    """
    ctx = _MatcherContext(system, ignore_state)
    parent: Dict[NodeId, NodeId] = {n: n for n in system.nodes}

    def find(a: NodeId) -> NodeId:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(a: NodeId, b: NodeId) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for block in ctx.invariant.blocks:
        members = sorted(block, key=repr)
        anchor = members[0]
        for other in members[1:]:
            if find(anchor) == find(other):
                continue
            if ctx.net.is_processor(anchor) != ctx.net.is_processor(other):
                continue
            auto = find_automorphism(system, {anchor: other}, ignore_state)
            if auto is None:
                continue
            for node, image in auto.items():
                union(node, image)
    groups: Dict[NodeId, set] = {}
    for node in system.nodes:
        groups.setdefault(find(node), set()).add(node)
    return tuple(
        frozenset(g)
        for g in sorted(groups.values(), key=lambda g: min(repr(n) for n in g))
    )


def orbit_labeling(system: System, ignore_state: bool = False) -> Labeling:
    """Orbits as a :class:`Labeling` (the supersimilarity labeling used in
    the proof of Theorem 10)."""
    return Labeling.from_blocks(automorphism_orbits(system, ignore_state))


def permutation_order(perm: Mapping[NodeId, NodeId]) -> int:
    """The order of a permutation (lcm of its cycle lengths)."""
    from math import gcd

    seen: set = set()
    order = 1
    for start in perm:
        if start in seen:
            continue
        length = 0
        node = start
        while node not in seen:
            seen.add(node)
            node = perm[node]
            length += 1
        order = order * length // gcd(order, length)
    return order


def restriction_is_single_cycle(perm: Mapping[NodeId, NodeId], nodes: Iterable[NodeId]) -> bool:
    """Does ``perm`` act on ``nodes`` as one cycle covering all of them?

    Nodes outside the permutation's domain cannot lie on any cycle of it,
    so their presence makes the answer False (rather than a KeyError --
    callers probe orbits against permutations over arbitrary node sets).
    """
    nodes = set(nodes)
    if not nodes:
        return False
    start = next(iter(nodes))
    count = 1
    node = perm.get(start)
    if node is None:
        return False
    while node != start:
        if node not in nodes:
            return False
        count += 1
        node = perm.get(node)
        if node is None:
            return False
        if count > len(nodes):
            return False
    return count == len(nodes)


def find_transitive_generator(
    system: System,
    orbit: Iterable[NodeId],
    ignore_state: bool = False,
    limit: int = 100_000,
) -> Optional[Dict[NodeId, NodeId]]:
    """Find an automorphism acting on ``orbit`` as a single cycle.

    This is the generator ``sigma`` in the proof of Theorem 11: when the
    orbit size j is prime and the system is symmetric, such a sigma exists
    (the transitive image of the group in Sym(orbit) contains a j-cycle by
    Cauchy's theorem).
    """
    orbit = list(orbit)
    for auto in iter_automorphisms(system, ignore_state, limit=limit):
        if restriction_is_single_cycle(auto, orbit):
            return auto
    return None
