"""Canonical byte encoding of execution states (the flat-state substrate).

The exploration and canonicalization machinery used to carry states
around as nested tuples of heterogeneous Python objects and compare
orbit members by ``repr`` strings.  That taxed every hot path three
ways: ``repr`` of a whole configuration is built per candidate
permutation, string ordering of numeric values is formatting-dependent
(``"10" < "2"``), and pickled object trees are what cross the
process-pool boundary.

This module replaces all of that with one primitive:
:func:`encode_value` maps any (hashable) state value to a compact
``bytes`` string that is

* **injective** -- distinct values get distinct encodings (type-tagged,
  length-prefixed, recursively delimited), so byte equality is value
  equality;
* **deterministic** -- independent of ``PYTHONHASHSEED``, interning,
  or repr formatting: safe to digest, checkpoint, and compare across
  processes and CI hash-seed matrices;
* **totally ordered, type-stably** -- byte comparison orders values
  first by type tag, then within a type by a stable rule (numeric for
  machine-size ints, shortlex for strings/tuples), so canonical-form
  selection no longer depends on how ``repr`` happens to spell a value;
* **cheap** -- hashing and equality on interned ``bytes`` beats
  deep-tuple hashing, and the encodings are what shared-memory buffers
  and digests consume directly.

:class:`StateEncoder` specializes the primitive to the executor's
*exploration states* (:meth:`repro.runtime.executor.Executor
.exploration_state`): per-processor slots fold the local state, halted
flag and any rider vectors into one interned blob; variable entries
keep their embedded processor references (lock owners, subvalue
posters) *structured* so a canonicalizer can rename them through a
permutation before rendering.  ``identity_key`` renders the state
as-is (exact-configuration dedup); the stabilizer-chain canonicalizer
(:class:`repro.core.orbits.StabilizerChainCanonicalizer`) renders one
key per candidate permutation and keeps the least.
"""

from __future__ import annotations

import dataclasses
import struct
from hashlib import blake2b
from typing import Dict, Hashable, List, Sequence, Tuple

from .system import System

_U32 = struct.Struct(">I")
_I64_BIAS = 1 << 63

# Type tags, in comparison order.  Byte comparison of two encodings
# first compares tags, so all values of one type sort together; the
# order of types themselves is arbitrary but fixed.
_T_NONE = b"\x00"
_T_FALSE = b"\x01"
_T_TRUE = b"\x02"
_T_INT_NEG = b"\x0e"  # ints below -2**63 (magnitude-encoded)
_T_INT = b"\x10"      # machine-size ints, order-preserving
_T_INT_POS = b"\x12"  # ints at or above 2**63
_T_FLOAT = b"\x18"
_T_STR = b"\x20"
_T_BYTES = b"\x28"
_T_TUPLE = b"\x30"
_T_LIST = b"\x31"
_T_FROZENSET = b"\x38"
_T_DICT = b"\x40"
_T_DATACLASS = b"\x48"
_T_OTHER = b"\x7e"


def _join(parts: Sequence[bytes]) -> bytes:
    """Length-prefix and concatenate: injective for any part list."""
    out = bytearray()
    for part in parts:
        out += _U32.pack(len(part))
        out += part
    return bytes(out)


def encode_value(value: Hashable) -> bytes:
    """The canonical byte encoding of one state value.

    Total, injective, and hash-seed independent over the closure of
    ``None | bool | int | float | str | bytes`` under tuples, lists,
    frozensets/sets, dicts and (frozen) dataclasses.  Anything else
    falls back to ``(type qualname, repr)`` -- deterministic as long as
    the type's ``repr`` is, which every state type in this repository
    guarantees.

    Ordering notes: machine-size integers (``|v| < 2**63``) compare
    *numerically* (the old repr comparison ordered ``10`` before ``2``);
    strings and containers compare shortlex (length first, then
    contents), which is total and formatting-independent.
    """
    if value is None:
        return _T_NONE
    tpe = type(value)
    if tpe is bool:
        return _T_TRUE if value else _T_FALSE
    if tpe is int:
        if -_I64_BIAS <= value < _I64_BIAS:
            return _T_INT + struct.pack(">Q", value + _I64_BIAS)
        magnitude = abs(value)
        blob = magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
        if value >= 0:
            return _T_INT_POS + _U32.pack(len(blob)) + blob
        # Complement so more-negative sorts earlier among big negatives.
        return (
            _T_INT_NEG
            + _U32.pack(0xFFFFFFFF - len(blob))
            + bytes(255 - b for b in blob)
        )
    if tpe is float:
        # Standard order-preserving trick: flip the sign bit of
        # non-negatives, complement negatives.  NaN is canonicalized so
        # equal-by-identity NaN keys encode identically.
        if value != value:  # NaN
            return _T_FLOAT + b"\xff" * 8
        bits = struct.unpack(">Q", struct.pack(">d", value))[0]
        if bits & (1 << 63):
            bits = ~bits & 0xFFFFFFFFFFFFFFFF
        else:
            bits |= 1 << 63
        return _T_FLOAT + struct.pack(">Q", bits)
    if tpe is str:
        return _T_STR + value.encode("utf-8", "surrogatepass")
    if tpe is bytes:
        return _T_BYTES + value
    if tpe is tuple or tpe is list:
        tag = _T_TUPLE if tpe is tuple else _T_LIST
        return tag + _join([encode_value(item) for item in value])
    if tpe is frozenset or tpe is set:
        return _T_FROZENSET + _join(sorted(encode_value(item) for item in value))
    if tpe is dict:
        items = sorted(
            (encode_value(k), encode_value(v)) for k, v in value.items()
        )
        return _T_DICT + _join([k + v for k, v in items])
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = [
            encode_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        ]
        name = f"{tpe.__module__}.{tpe.__qualname__}".encode()
        return _T_DATACLASS + _join([name] + fields)
    name = f"{tpe.__module__}.{tpe.__qualname__}".encode()
    return _T_OTHER + _join([name, repr(value).encode()])


def fingerprint(value: Hashable, digest_size: int = 16) -> str:
    """Hex digest of :func:`encode_value` -- a hash-seed-independent
    content fingerprint.

    The parametric layer compares orbit/class structures across sizes by
    these strings; anything :func:`encode_value` accepts can be
    fingerprinted, and equal values always produce equal hex digests
    regardless of ``PYTHONHASHSEED`` or process boundaries.
    """
    return blake2b(encode_value(value), digest_size=digest_size).hexdigest()


class ValueInterner:
    """Memoized :func:`encode_value`, keyed by ``(type, value)``.

    The type rides in the key because Python considers ``1``, ``1.0``
    and ``True`` equal (one dict slot), while their encodings must stay
    distinct and deterministic regardless of which was seen first.
    Interning also means repeated values across millions of states are
    encoded once and shared as one ``bytes`` object.
    """

    def __init__(self) -> None:
        self._memo: Dict[Tuple[type, Hashable], bytes] = {}

    def encode(self, value: Hashable) -> bytes:
        key = (type(value), value)
        blob = self._memo.get(key)
        if blob is None:
            blob = encode_value(value)
            self._memo[key] = blob
        return blob

    def __len__(self) -> int:
        return len(self._memo)


#: A structured (renamable) variable entry: ``("P", payload, owner)`` for
#: plain variables (owner is a processor index or -1) or
#: ``("Q", base, ((poster, payload), ...))`` for subvalue variables.
VarEntry = Tuple


class StateEncoder:
    """Encode one system's exploration states into flat byte keys.

    One encoder per system (and per process): it pins the processor and
    variable axes and owns the intern table.  The two products are

    * :meth:`proc_slots` / :meth:`var_entries` -- the intermediate form
      a canonicalizer permutes (interned bytes per processor slot,
      structured entries per variable so embedded processor indices can
      be renamed); and
    * :meth:`identity_key` -- the final flat ``bytes`` key of the state
      as-is, used directly when symmetry reduction is off.

    Keys are self-delimiting (fixed slot count per system, every slot
    length-prefixed), so key equality is exact state equality.
    """

    def __init__(self, system: System) -> None:
        self.system = system
        self.n_procs = len(system.processors)
        self.n_vars = len(system.variables)
        self._intern = ValueInterner()

    # -- intermediate (permutable) form --------------------------------

    def proc_slots(
        self,
        proc_part: Tuple[Hashable, ...],
        vectors: Sequence[Tuple[Hashable, ...]] = (),
    ) -> Tuple[bytes, ...]:
        """One interned blob per processor index: local-state entry plus
        the processor's column of every rider vector."""
        encode = self._intern.encode
        if not vectors:
            return tuple(encode(entry) for entry in proc_part)
        return tuple(
            encode((proc_part[i],) + tuple(vec[i] for vec in vectors))
            for i in range(self.n_procs)
        )

    def var_entries(self, var_part: Tuple[VarEntry, ...]) -> Tuple[VarEntry, ...]:
        """Structured entries with value payloads interned but processor
        references (owners, posters) kept as raw indices for renaming."""
        encode = self._intern.encode
        out: List[VarEntry] = []
        for entry in var_part:
            if entry[0] == "plain":
                _kind, value, locked, owner = entry
                out.append(("P", encode((value, locked)), owner))
            else:  # ("subvalue", base, ((proc_index, value), ...))
                _kind, base, items = entry
                out.append(
                    ("Q", encode(base), tuple((i, encode(v)) for i, v in items))
                )
        return tuple(out)

    # -- rendering -----------------------------------------------------

    @staticmethod
    def render_var(entry: VarEntry, owner_position) -> bytes:
        """Flatten one structured entry, mapping each embedded processor
        index through ``owner_position`` (its slot in the rendered
        processor axis)."""
        if entry[0] == "P":
            _tag, payload, owner = entry
            pos = owner_position(owner) + 1 if owner >= 0 else 0
            return b"P" + _U32.pack(pos) + payload
        _tag, base, items = entry
        renamed = sorted((owner_position(i), blob) for i, blob in items)
        return (
            b"Q"
            + _U32.pack(len(base))
            + base
            + _join([_U32.pack(pos) + blob for pos, blob in renamed])
        )

    @staticmethod
    def join_slots(slots: Sequence[bytes]) -> bytes:
        """The final flat key: length-prefixed concatenation."""
        return _join(slots)

    def identity_key(
        self,
        proc_part: Tuple[Hashable, ...],
        var_part: Tuple[VarEntry, ...],
        vectors: Sequence[Tuple[Hashable, ...]] = (),
    ) -> bytes:
        """The flat key of the state under the identity permutation."""
        slots = list(self.proc_slots(proc_part, vectors))
        identity = lambda i: i  # noqa: E731 - trivially the identity
        slots.extend(
            self.render_var(entry, identity)
            for entry in self.var_entries(var_part)
        )
        return _join(slots)
