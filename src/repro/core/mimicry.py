"""Mimicry: the obstruction in fair systems in S (paper, Section 6).

In a fair-but-not-bounded-fair system with only read/write instructions,
dissimilar processors may still be unable to distinguish themselves,
because a processor can never rule out that some other part of the system
simply has not executed yet.  The paper captures this as **mimicry**:

    ``x`` mimics ``y`` if there is a subsystem of the system such that
    ``x`` is similar to the image of ``y`` in the subsystem.

While the outsiders of that subsystem are frozen (legal under plain
fairness -- they only need to run *eventually*), ``y`` behaves exactly as
its image in the subsystem, which is indistinguishable from ``x``; so
``x`` can never safely conclude its own label.  Selection in a fair system
in S is possible iff some processor mimics no other.

Cross-system similarity ("x in Sigma similar to y in Sigma-prime") is
evaluated, exactly as for families in Section 5, on the disjoint union of
the two systems, with the SET environment model of instruction set S.

Subsystems are induced by processor subsets (processors keep all their
named edges); the search is exponential in |P| and intended for the
figure-scale systems the paper analyzes.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Tuple

from .environment import EnvironmentModel
from .names import NodeId
from .refinement import compute_similarity_labeling
from .system import System


def _union_similar(
    system: System,
    sub: System,
    x: NodeId,
    y: NodeId,
) -> bool:
    """Is ``x`` (in ``system``) similar to ``y`` (in ``sub``)?

    Computed on the disjoint union with the S (SET) environment model.
    """
    union = system.disjoint_union(sub, tags=("full", "sub"))
    theta = compute_similarity_labeling(union, model=EnvironmentModel.SET).labeling
    return theta[("full", x)] == theta[("sub", y)]


def mimics(system: System, x: NodeId, y: NodeId) -> bool:
    """Does processor ``x`` mimic processor ``y``?

    True iff some induced subsystem containing ``y`` has its image of
    ``y`` similar to ``x``.  Taking the subsystem to be the whole system
    shows that similarity implies mimicry.
    """
    processors = list(system.processors)
    others = [p for p in processors if p != y]
    for k in range(0, len(others) + 1):
        for extra in combinations(others, k):
            subset = (y,) + extra
            sub = system.induced_subsystem(subset)
            if _union_similar(system, sub, x, y):
                return True
    return False


def mimicry_relation(system: System) -> Dict[NodeId, FrozenSet[NodeId]]:
    """``proc -> set of processors it mimics`` (excluding itself).

    The subsystem enumeration is shared across all pairs: for every
    induced subsystem we compute one union labeling and read off every
    (x, y) pair at once, instead of re-searching per pair.
    """
    processors = list(system.processors)
    result: Dict[NodeId, set] = {p: set() for p in processors}
    for k in range(1, len(processors) + 1):
        for subset in combinations(processors, k):
            sub = system.induced_subsystem(subset)
            union = system.disjoint_union(sub, tags=("full", "sub"))
            theta = compute_similarity_labeling(
                union, model=EnvironmentModel.SET
            ).labeling
            for y in subset:
                label_y = theta[("sub", y)]
                for x in processors:
                    if x != y and theta[("full", x)] == label_y:
                        result[x].add(y)
    return {p: frozenset(s) for p, s in result.items()}


def processors_mimicking_no_other(system: System) -> Tuple[NodeId, ...]:
    """Processors that mimic no other processor.

    Section 6: a fair system in S has a selection algorithm iff this
    tuple is non-empty.
    """
    relation = mimicry_relation(system)
    return tuple(p for p in system.processors if not relation[p])


def fair_s_selection_possible(system: System) -> bool:
    """Decision for fair (not bounded-fair) systems in S."""
    return bool(processors_mimicking_no_other(system))
