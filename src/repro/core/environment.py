"""Environments under a labeling (paper, Section 4 and Section 6).

Given a labeling ``psi`` of the nodes of a system, two nodes *x* and *y*
have the **same environment** when

1. ``state_0(x) = state_0(y)``;
2. if both are processors: for every name ``n``,
   ``psi(n-nbr(x)) = psi(n-nbr(y))``;
3. if both are variables: for every name ``n`` and every label ``a``, the
   *number* of n-neighbors of *x* labeled ``a`` equals the number of
   n-neighbors of *y* labeled ``a``.

Condition (3) is the **Q**/**L** form.  For bounded-fair systems in **S**
(Section 6) the multiplicities are invisible -- a processor can never count
its variable's neighbors -- so condition (3) weakens to: for every name
``n``, the *set* of labels of n-neighbors of *x* equals that of *y*.

Theorem 4 says a labeling is a supersimilarity labeling (for Q) exactly
when equal labels imply equal environments.  The refinement algorithms in
:mod:`repro.core.refinement` work with the *environment signature* -- a
hashable digest of conditions (1)-(3) -- computed here.
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import Hashable

from typing import Optional

from .labeling import Labeling
from .names import NodeId
from .network import IncidenceCache, Network
from .system import InstructionSet, System


class EnvironmentModel(enum.Enum):
    """How variable environments are compared.

    * ``MULTISET`` -- per-name label *counts* matter (instruction sets Q
      and L, and extended locking L2).
    * ``SET`` -- only the per-name label *sets* matter (bounded-fair
      systems in S, and the asynchronous message-passing analogue).
    """

    MULTISET = "multiset"
    SET = "set"

    @staticmethod
    def for_instruction_set(instruction_set: InstructionSet) -> "EnvironmentModel":
        if instruction_set is InstructionSet.S:
            return EnvironmentModel.SET
        return EnvironmentModel.MULTISET


def processor_signature(
    system: System,
    processor: NodeId,
    labeling: Labeling,
    incidence: Optional[IncidenceCache] = None,
) -> Hashable:
    """Condition (2) digest: the labels of the processor's named neighbors.

    ``incidence`` supplies the precomputed neighbor rows; by default the
    network's shared :attr:`~repro.core.network.Network.incidence` cache is
    used (pass ``network.build_incidence()`` to bypass it).
    """
    inc = incidence if incidence is not None else system.network.incidence
    return tuple(labeling[v] for v in inc.proc_neighbors[processor])


def variable_signature(
    system: System,
    variable: NodeId,
    labeling: Labeling,
    model: EnvironmentModel = EnvironmentModel.MULTISET,
    incidence: Optional[IncidenceCache] = None,
) -> Hashable:
    """Condition (3) digest for a variable, per environment model."""
    inc = incidence if incidence is not None else system.network.incidence
    per_name = []
    for procs in inc.var_name_neighbors[variable]:
        labels = [labeling[p] for p in procs]
        if model is EnvironmentModel.MULTISET:
            counts = Counter(labels)
            per_name.append(tuple(sorted(counts.items(), key=lambda kv: repr(kv[0]))))
        else:
            per_name.append(tuple(sorted(set(labels), key=repr)))
    return tuple(per_name)


def environment_signature(
    system: System,
    node: NodeId,
    labeling: Labeling,
    model: EnvironmentModel = EnvironmentModel.MULTISET,
    include_state: bool = True,
    incidence: Optional[IncidenceCache] = None,
) -> Hashable:
    """The full environment digest of ``node`` under ``labeling``.

    Two nodes of the same kind have the same environment (per the paper's
    definition) iff their signatures are equal.  Signatures of processors
    and variables are made structurally distinct so a processor can never
    collide with a variable.

    ``include_state=False`` drops condition (1); Algorithm 3's first phase
    uses this to label a homogeneous family while ignoring initial states.
    """
    net = system.network
    state_part = system.state0(node) if include_state else None
    if net.is_processor(node):
        return ("P", state_part, processor_signature(system, node, labeling, incidence))
    return ("V", state_part, variable_signature(system, node, labeling, model, incidence))


def same_environment(
    system: System,
    x: NodeId,
    y: NodeId,
    labeling: Labeling,
    model: EnvironmentModel = EnvironmentModel.MULTISET,
    include_state: bool = True,
) -> bool:
    """Do ``x`` and ``y`` have the same environment under ``labeling``?"""
    return environment_signature(
        system, x, labeling, model, include_state
    ) == environment_signature(system, y, labeling, model, include_state)


def is_environment_respecting(
    system: System,
    labeling: Labeling,
    model: EnvironmentModel = EnvironmentModel.MULTISET,
    include_state: bool = True,
) -> bool:
    """Theorem 4's condition: equal labels imply equal environments.

    For systems in Q this is sufficient for ``labeling`` to be a
    supersimilarity labeling.
    """
    seen = {}
    for node in system.nodes:
        label = labeling[node]
        sig = environment_signature(system, node, labeling, model, include_state)
        if label in seen:
            if seen[label] != sig:
                return False
        else:
            seen[label] = sig
    return True


# ----------------------------------------------------------------------
# Locking-specific labeling conditions (Theorem 8 and Section 6)
# ----------------------------------------------------------------------


def satisfies_locking_condition(network: Network, labeling: Labeling) -> bool:
    """Theorem 8's side condition for instruction set L.

    ``psi(p) = psi(q)`` (p != q) must imply that p and q never give the
    *same name* to the *same variable*; i.e. no variable has two distinct
    n-neighbors (same n) with equal labels.  Under this condition a
    Q-supersimilarity labeling is also an L-supersimilarity labeling.
    """
    for v in network.variables:
        for name in network.names:
            nbrs = network.n_neighbors_of_variable(v, name)
            labels = [labeling[p] for p in nbrs]
            if len(labels) != len(set(labels)):
                return False
    return True


def satisfies_extended_locking_condition(network: Network, labeling: Labeling) -> bool:
    """Section 6's condition for extended (multi-variable) locking.

    With an indivisible multi-lock, similar processors cannot even be
    neighbors of the same variable under *different* names: no variable may
    have two distinct neighbors with equal labels, regardless of names.
    """
    for v in network.variables:
        procs = [p for p, _name in network.neighbors_of_variable(v)]
        labels = [labeling[p] for p in set(procs)]
        if len(labels) != len(set(labels)):
            return False
    return True


def is_supersimilarity_for(
    system: System, labeling: Labeling
) -> bool:
    """Supersimilarity test dispatched on the system's instruction set.

    * Q: Theorem 4 (environment-respecting, multiset model).
    * L: Theorem 8 (Q condition + locking side condition).
    * L2: Q condition + extended-locking side condition.
    * S: environment-respecting under the SET model (bounded-fair S);
      fair-S subtleties (mimicry) live in :mod:`repro.core.mimicry`.
    """
    iset = system.instruction_set
    model = EnvironmentModel.for_instruction_set(iset)
    if not is_environment_respecting(system, labeling, model):
        return False
    if iset is InstructionSet.L:
        return satisfies_locking_condition(system.network, labeling)
    if iset is InstructionSet.L2:
        return satisfies_extended_locking_condition(system.network, labeling)
    return True
