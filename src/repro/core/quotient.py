"""Quotient systems and canonical forms.

Section 3 states that the similarity labeling "is unique up to
isomorphism".  This module makes that claim operational:

* :func:`quotient_system` collapses a system along its similarity
  labeling: one node per class, with multiplicity annotations.  The
  quotient is the finite syntactic object the labeling *is*; two systems
  have isomorphic similarity structure iff their quotients are equal
  after canonical renaming.
* :func:`canonical_form` produces a hashable canonical description of a
  system up to isomorphism (class-graph plus a canonicalized concrete
  graph), so :func:`are_isomorphic` can decide system isomorphism using
  the automorphism matcher.

The quotient is also a compression device: analyses that only depend on
Theta (selection decisions, table generation for Algorithm 2) can run on
the quotient of a large symmetric system instead of the system itself.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from .automorphism import find_automorphism
from .labeling import Labeling
from .names import Name, State
from .refinement import compute_similarity_labeling
from .system import System


@dataclass(frozen=True)
class QuotientEdge:
    """One class-level edge of the quotient.

    ``count`` is the number of ``name``-edges from processors of class
    ``plabel`` into each single variable of class ``vlabel`` -- i.e.
    ``neighborhood_size(name, plabel, vlabel)``.
    """

    plabel: Hashable
    name: Name
    vlabel: Hashable
    count: int


@dataclass(frozen=True)
class QuotientSystem:
    """A system collapsed along a similarity labeling.

    Attributes:
        pclasses: processor class labels with their sizes and state.
        vclasses: variable class labels with their sizes and state.
        edges: the class-level named edges with multiplicities.
    """

    pclasses: Tuple[Tuple[Hashable, int, State], ...]
    vclasses: Tuple[Tuple[Hashable, int, State], ...]
    edges: Tuple[QuotientEdge, ...]

    @property
    def processor_class_count(self) -> int:
        return len(self.pclasses)

    @property
    def variable_class_count(self) -> int:
        return len(self.vclasses)

    def class_size(self, label: Hashable) -> int:
        for lbl, size, _state in self.pclasses + self.vclasses:
            if lbl == label:
                return size
        raise KeyError(label)

    def selection_possible(self) -> bool:
        """Theorem 3 read off the quotient: some processor class of size 1."""
        return any(size == 1 for _l, size, _s in self.pclasses)


def quotient_system(
    system: System, theta: Optional[Labeling] = None
) -> QuotientSystem:
    """Collapse ``system`` along ``theta`` (default: its Theta)."""
    if theta is None:
        theta = compute_similarity_labeling(system).labeling
    net = system.network

    def classes_of(nodes):
        acc: Dict[Hashable, Tuple[int, State]] = {}
        for node in nodes:
            label = theta[node]
            size, state = acc.get(label, (0, system.state0(node)))
            acc[label] = (size + 1, state)
        return tuple(
            (label, size, state)
            for label, (size, state) in sorted(acc.items(), key=lambda kv: repr(kv[0]))
        )

    pclasses = classes_of(net.processors)
    vclasses = classes_of(net.variables)

    # Read class-level edges off the shared incidence cache: per variable
    # representative, the per-name neighbor lists are already grouped.
    incidence = net.incidence
    edge_counts: Dict[Tuple[Hashable, Name, Hashable], int] = {}
    counted_vars: set = set()
    for v in net.variables:
        beta = theta[v]
        if beta in counted_vars:
            continue  # environment-respecting: any representative works
        counted_vars.add(beta)
        for name, procs in zip(incidence.names, incidence.var_name_neighbors[v]):
            for proc in procs:
                key = (theta[proc], name, beta)
                edge_counts[key] = edge_counts.get(key, 0) + 1
    edges = tuple(
        QuotientEdge(plabel, name, vlabel, count)
        for (plabel, name, vlabel), count in sorted(
            edge_counts.items(), key=lambda kv: repr(kv[0])
        )
    )
    return QuotientSystem(pclasses, vclasses, edges)


def similarity_structures_equal(a: System, b: System) -> bool:
    """Do two systems have identical similarity structure?

    True iff their quotients coincide (classes with equal sizes, states
    and class-level edges).  Canonical labels make quotients directly
    comparable only when class numbering agrees, so we compare via the
    union system: compute Theta of the disjoint union and check it pairs
    the two quotients class-for-class.
    """
    qa = quotient_system(a)
    qb = quotient_system(b)
    if (qa.processor_class_count, qa.variable_class_count) != (
        qb.processor_class_count,
        qb.variable_class_count,
    ):
        return False
    union = a.disjoint_union(b, tags=("A", "B"))
    theta = compute_similarity_labeling(union).labeling
    # Class-for-class pairing: every union class must contain nodes of
    # both systems in proportional counts (sizes may differ; structure
    # classes must coincide).  Proportionality means every class holds
    # the two systems in the same ratio as their total node counts --
    # e.g. an anonymous 4-ring and an anonymous 8-ring share one
    # processor class (4 vs 8 members) and one variable class (4 vs 8),
    # both in the global 1:2 ratio.  A one-sided class (b_count == 0 or
    # a_count == 0) always fails, since both totals are positive.
    a_total = len(a.nodes)
    b_total = len(b.nodes)
    for block in theta.blocks:
        a_count = sum(1 for tag, _node in block if tag == "A")
        b_count = len(block) - a_count
        if a_count * b_total != b_count * a_total:
            return False
    return True


def canonical_form(system: System) -> Hashable:
    """A hashable isomorphism invariant of the system.

    CanonicalLabel codes depend on node identifiers, so the raw quotient
    is *not* invariant under renaming.  This form renumbers the quotient
    classes by refinement over invariant data only: start each class from
    ``(kind, initial state, size)`` and iterate with the multiset of its
    quotient edges expressed in current class colors.  The result is the
    multiset of stable class colors plus the edge multiset in those
    colors -- equal for isomorphic systems, and complete enough to
    distinguish everything the similarity structure distinguishes.

    Used as the fast filter inside :func:`are_isomorphic`; the exact
    decision is made by the automorphism matcher.
    """
    theta = compute_similarity_labeling(system).labeling
    q = quotient_system(system, theta)

    color: Dict[Hashable, Hashable] = {}
    for label, size, state in q.pclasses:
        color[label] = ("P", state, size)
    for label, size, state in q.vclasses:
        color[label] = ("V", state, size)

    while True:
        new_color: Dict[Hashable, Hashable] = {}
        for label in color:
            incident = tuple(
                sorted(
                    (
                        ("out", e.name, repr(color[e.vlabel]), e.count)
                        for e in q.edges
                        if e.plabel == label
                    )
                )
                + sorted(
                    (
                        ("in", e.name, repr(color[e.plabel]), e.count)
                        for e in q.edges
                        if e.vlabel == label
                    )
                )
            )
            new_color[label] = (color[label], incident)
        if len(set(map(repr, new_color.values()))) == len(
            set(map(repr, color.values()))
        ):
            break
        # Intern: canonical small colors, keyed only by invariant content
        # (sorted by the repr of the combined signature, which contains no
        # node identifiers).
        intern: Dict[str, int] = {}
        for signature in sorted(repr(v) for v in new_color.values()):
            if signature not in intern:
                intern[signature] = len(intern)
        color = {label: ("c", intern[repr(new_color[label])]) for label in color}

    class_multiset = tuple(sorted(repr(c) for c in color.values()))
    edge_multiset = tuple(
        sorted(
            repr((e.name, color[e.plabel], color[e.vlabel], e.count))
            for e in q.edges
        )
    )
    return (class_multiset, edge_multiset)


def _component_systems(system: System) -> list:
    """The connected components with processors, as standalone systems.

    Components that are a single isolated variable are dropped (they are
    matched by state multisets in :func:`are_isomorphic`).
    """
    net = system.network
    out = []
    for component in net.connected_components:
        procs = [p for p in component if net.is_processor(p)]
        if not procs:
            continue
        sub = net.induced_subnetwork(procs)
        out.append(
            System(
                sub,
                {n: system.state0(n) for n in sub.nodes},
                system.instruction_set,
                system.schedule_class,
            )
        )
    return out


def are_isomorphic(a: System, b: System) -> bool:
    """Exact isomorphism of systems (structure, names, initial states).

    Decided with the automorphism matcher on the disjoint union: ``a`` and
    ``b`` are isomorphic iff the union has an automorphism swapping the
    two sides, which we find by pinning one processor of ``a`` to each
    candidate processor of ``b``.  The side-swap check covers both node
    kinds: every processor *and* every edge-connected variable of ``a``
    must land on the ``b`` side.  Isolated variables (declared without
    edges) are matched separately by their initial-state multisets, since
    any state-preserving bijection between them extends an automorphism.

    Disconnected systems are matched component-by-component: pinning one
    processor only forces its own component across the union, so a
    non-swapping automorphism (other components mapped to themselves)
    would defeat the side-swap check and report a false negative.
    Components decompose the question soundly because any isomorphism
    restricts to a bijection between components.
    """
    if set(a.names) != set(b.names):
        return False
    if len(a.processors) != len(b.processors) or len(a.variables) != len(b.variables):
        return False
    if not a.processors:
        # Processor-free systems have no edges at all, so any
        # state-preserving bijection on variables is an isomorphism.
        return Counter(a.state0(v) for v in a.variables) == Counter(
            b.state0(v) for v in b.variables
        )
    if canonical_form(a) != canonical_form(b):
        return False
    # Isolated variables never appear in the edge-forced part of an
    # automorphism; they pair up iff their state multisets agree.
    isolated_a = [v for v in a.variables if not a.network.neighbors_of_variable(v)]
    isolated_b = [v for v in b.variables if not b.network.neighbors_of_variable(v)]
    if Counter(a.state0(v) for v in isolated_a) != Counter(
        b.state0(v) for v in isolated_b
    ):
        return False
    components_a = _component_systems(a)
    if len(components_a) > 1:
        # Greedy multiset matching is exact here: isomorphism is an
        # equivalence, so any component pairing that works locally
        # extends to a global one.
        remaining = _component_systems(b)
        if len(components_a) != len(remaining):
            return False
        for comp_a in components_a:
            for i, comp_b in enumerate(remaining):
                if are_isomorphic(comp_a, comp_b):
                    del remaining[i]
                    break
            else:
                return False
        return True
    connected_a = [v for v in a.variables if a.network.neighbors_of_variable(v)]
    union = a.disjoint_union(b, tags=("A", "B"))
    anchor = ("A", a.processors[0])
    for candidate in b.processors:
        auto = find_automorphism(union, {anchor: ("B", candidate)})
        if auto is None:
            continue
        # The automorphism must swap the sides wholesale -- processors
        # and connected variables alike.
        if all(auto[("A", p)][0] == "B" for p in a.processors) and all(
            auto[("A", v)][0] == "B" for v in connected_a
        ):
            return True
    return False
