"""Basic vocabulary of the system model.

The paper's system model (Section 2) speaks of *processors*, *shared
variables*, and a set ``NAMES`` of local names that processors give to
variables.  This module fixes the Python representations used throughout
the library:

* a **node identifier** is any hashable value (usually a string such as
  ``"p1"`` or ``"v1"``);
* a **name** (an element of ``NAMES``) is any hashable value (usually a
  short string such as ``"left"`` or ``"fork_r"``);
* a **label** produced by a similarity labeling is an opaque hashable
  value; canonical labelings use :class:`CanonicalLabel`;
* a **state** of a processor or variable is any hashable value.

Keeping these as plain hashables (rather than wrapper classes) makes
systems cheap to build in tests and keeps the refinement algorithms fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

#: Type alias for processor / variable identifiers.
NodeId = Hashable

#: Type alias for elements of NAMES.
Name = Hashable

#: Type alias for node states.
State = Hashable


@dataclass(frozen=True, order=True)
class CanonicalLabel:
    """A label of a canonical similarity labeling.

    Canonical labels are comparable *across systems*: two nodes in two
    different systems receive equal :class:`CanonicalLabel` values exactly
    when the refinement history that produced their classes is identical
    (same initial-state class, same sequence of environment signatures).
    This is what makes the family constructions of Section 5 work -- the
    ELITE set of Theorem 9 is a set of canonical labels, and membership
    tests like ``labeling[p] in elite`` are meaningful for any member of
    the family.

    Attributes:
        kind: ``"P"`` for processor labels, ``"V"`` for variable labels.
        code: an integer identifying the class within its kind.  Codes are
            assigned deterministically by the refinement algorithms.
    """

    kind: str
    code: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}{self.code}"


PROCESSOR_KIND = "P"
VARIABLE_KIND = "V"
