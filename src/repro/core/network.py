"""The bipartite network ``N`` of a system (paper, Section 2).

A network is a connected bipartite graph whose nodes are processors ``P``
and shared variables ``V``.  Every edge connects a processor to a variable
and carries a *name*: the local name the processor uses for that variable.
The paper requires that each processor has **exactly one** n-neighbor for
each ``n`` in ``NAMES``, so the whole network is determined by the map

    ``n_nbr : P x NAMES -> V``.

:class:`Network` stores exactly that map and derives everything else
(variable neighborhoods, degrees, connectivity, ...).  Networks are
immutable; all mutating operations return new networks.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

from ..exceptions import NetworkError
from .names import Name, NodeId


def _sorted_nodes(nodes: Iterable[NodeId]) -> Tuple[NodeId, ...]:
    """Sort node ids deterministically even for mixed types."""
    return tuple(sorted(nodes, key=lambda x: (str(type(x)), repr(x))))


class IncidenceCache:
    """Immutable precomputed incidence index of a :class:`Network`.

    Similarity queries walk the same edges over and over: every refinement
    round needs each processor's named neighbor row and each variable's
    per-name neighbor lists.  This cache derives them once and exposes two
    synchronized views:

    * a *node-id* view (``proc_neighbors``, ``var_name_neighbors``,
      ``degrees``) for signature code that works with labelings keyed by
      node ids;
    * an *integer* view (``proc_rows``, ``var_rows``) where processors get
      ids ``0..|P|-1`` and variables ``|P|..|P|+|V|-1``, for the worklist
      engine's hot loops (list indexing instead of dict lookups, int sets
      instead of node-id sets).

    Obtain the shared per-network instance via :attr:`Network.incidence`
    (computed once, cached on the network) or a fresh throwaway one via
    :meth:`Network.build_incidence` (the "uncached" path used by tests to
    cross-check the cache bit-for-bit).
    """

    __slots__ = (
        "names",
        "processors",
        "variables",
        "node_index",
        "proc_rows",
        "var_rows",
        "proc_neighbors",
        "var_name_neighbors",
        "degrees",
    )

    def __init__(self, network: "Network") -> None:
        self.names: Tuple[Name, ...] = network.names
        self.processors: Tuple[NodeId, ...] = network.processors
        self.variables: Tuple[NodeId, ...] = network.variables
        n_procs = len(self.processors)
        self.node_index: Dict[NodeId, int] = {
            p: i for i, p in enumerate(self.processors)
        }
        for j, v in enumerate(self.variables):
            self.node_index[v] = n_procs + j

        # Processor rows: the n-neighbor of each processor per name, in
        # NAMES order (the paper's n-nbr function, tabulated).
        self.proc_neighbors: Dict[NodeId, Tuple[NodeId, ...]] = {
            p: tuple(network.n_nbr(p, name) for name in self.names)
            for p in self.processors
        }
        self.proc_rows: List[Tuple[int, ...]] = [
            tuple(self.node_index[v] for v in self.proc_neighbors[p])
            for p in self.processors
        ]

        # Variable rows: per name, the processors that are n-neighbors of
        # the variable under that name (sorted for determinism).
        acc: Dict[NodeId, List[List[NodeId]]] = {
            v: [[] for _ in self.names] for v in self.variables
        }
        for p in self.processors:
            row = self.proc_neighbors[p]
            for name_pos, v in enumerate(row):
                acc[v][name_pos].append(p)
        self.var_name_neighbors: Dict[NodeId, Tuple[Tuple[NodeId, ...], ...]] = {
            v: tuple(tuple(sorted(procs, key=repr)) for procs in per_name)
            for v, per_name in acc.items()
        }
        self.var_rows: List[Tuple[Tuple[int, ...], ...]] = [
            tuple(
                tuple(self.node_index[p] for p in procs)
                for procs in self.var_name_neighbors[v]
            )
            for v in self.variables
        ]
        self.degrees: Dict[NodeId, int] = {
            v: sum(len(procs) for procs in per_name)
            for v, per_name in self.var_name_neighbors.items()
        }

    @property
    def n_processors(self) -> int:
        return len(self.processors)

    @property
    def n_nodes(self) -> int:
        return len(self.processors) + len(self.variables)

    def node_of(self, index: int) -> NodeId:
        """Inverse of ``node_index``."""
        n_procs = len(self.processors)
        if index < n_procs:
            return self.processors[index]
        return self.variables[index - n_procs]


class Network:
    """A bipartite processor/variable network with named edges.

    Args:
        names: the set ``NAMES`` of local variable names.  Every processor
            must define an n-neighbor for every name in this set.
        edges: mapping ``processor -> {name -> variable}``.  The variable
            set is inferred as the union of all edge targets unless
            ``variables`` is given explicitly (which also allows declaring
            the processor/variable split when identifiers would otherwise
            be ambiguous).
        variables: optional explicit variable set; must be a superset of
            all edge targets.  Declaring variables without edges is
            allowed, including the degenerate processor-free network
            (no processors, explicitly declared variables only).

    Raises:
        NetworkError: if the specification is malformed (missing names,
            processor/variable id collision, unreferenced variables not
            declared, etc.).
    """

    def __init__(
        self,
        names: Iterable[Name],
        edges: Mapping[NodeId, Mapping[Name, NodeId]],
        variables: Iterable[NodeId] = (),
    ) -> None:
        self._names: Tuple[Name, ...] = tuple(sorted(set(names), key=repr))
        if not self._names:
            raise NetworkError("NAMES must be non-empty")
        self._processors: Tuple[NodeId, ...] = _sorted_nodes(edges.keys())
        seen_vars = set(variables)
        if not self._processors and not seen_vars:
            raise NetworkError(
                "a network needs at least one processor (or, for the "
                "degenerate processor-free case, explicitly declared variables)"
            )

        name_set = frozenset(self._names)
        n_nbr: Dict[Tuple[NodeId, Name], NodeId] = {}
        for proc, nbrs in edges.items():
            given = frozenset(nbrs.keys())
            if given != name_set:
                missing = name_set - given
                extra = given - name_set
                raise NetworkError(
                    f"processor {proc!r} must name exactly NAMES; "
                    f"missing={sorted(map(repr, missing))} "
                    f"extra={sorted(map(repr, extra))}"
                )
            for name, var in nbrs.items():
                n_nbr[(proc, name)] = var
                seen_vars.add(var)
        self._variables: Tuple[NodeId, ...] = _sorted_nodes(seen_vars)
        overlap = set(self._processors) & set(self._variables)
        if overlap:
            raise NetworkError(
                f"ids used as both processor and variable: {sorted(map(repr, overlap))}"
            )
        self._n_nbr: Dict[Tuple[NodeId, Name], NodeId] = n_nbr

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def names(self) -> Tuple[Name, ...]:
        """The set NAMES, as a sorted tuple."""
        return self._names

    @property
    def processors(self) -> Tuple[NodeId, ...]:
        """All processors, sorted deterministically."""
        return self._processors

    @property
    def variables(self) -> Tuple[NodeId, ...]:
        """All shared variables, sorted deterministically."""
        return self._variables

    @cached_property
    def nodes(self) -> Tuple[NodeId, ...]:
        """Processors followed by variables."""
        return self._processors + self._variables

    def is_processor(self, node: NodeId) -> bool:
        return node in self._processor_set

    def is_variable(self, node: NodeId) -> bool:
        return node in self._variable_set

    @cached_property
    def _processor_set(self) -> FrozenSet[NodeId]:
        return frozenset(self._processors)

    @cached_property
    def _variable_set(self) -> FrozenSet[NodeId]:
        return frozenset(self._variables)

    def n_nbr(self, processor: NodeId, name: Name) -> NodeId:
        """The unique n-neighbor of ``processor`` for ``name``.

        This is the function *n-nbr* of the paper: the variable that
        ``processor`` refers to by local name ``name``.
        """
        try:
            return self._n_nbr[(processor, name)]
        except KeyError:
            raise NetworkError(
                f"{processor!r} is not a processor of this network or "
                f"{name!r} not in NAMES"
            ) from None

    def neighbors_of_processor(self, processor: NodeId) -> Dict[Name, NodeId]:
        """Mapping ``name -> variable`` for one processor."""
        if processor not in self._processor_set:
            raise NetworkError(f"unknown processor {processor!r}")
        return {name: self._n_nbr[(processor, name)] for name in self._names}

    @cached_property
    def _var_neighbors(self) -> Dict[NodeId, Tuple[Tuple[NodeId, Name], ...]]:
        acc: Dict[NodeId, List[Tuple[NodeId, Name]]] = {v: [] for v in self._variables}
        for (proc, name), var in self._n_nbr.items():
            acc[var].append((proc, name))
        return {
            v: tuple(sorted(pairs, key=lambda pn: (repr(pn[0]), repr(pn[1]))))
            for v, pairs in acc.items()
        }

    def neighbors_of_variable(self, variable: NodeId) -> Tuple[Tuple[NodeId, Name], ...]:
        """All ``(processor, name)`` pairs adjacent to ``variable``.

        A processor appears once per name it uses for the variable (a
        processor may give one variable several names).
        """
        try:
            return self._var_neighbors[variable]
        except KeyError:
            raise NetworkError(f"unknown variable {variable!r}") from None

    def n_neighbors_of_variable(self, variable: NodeId, name: Name) -> Tuple[NodeId, ...]:
        """Processors that are n-neighbors of ``variable`` under ``name``."""
        per_name = self.incidence.var_name_neighbors.get(variable)
        if per_name is None:
            raise NetworkError(f"unknown variable {variable!r}")
        try:
            return per_name[self._name_positions[name]]
        except KeyError:
            raise NetworkError(f"{name!r} not in NAMES") from None

    @cached_property
    def _name_positions(self) -> Dict[Name, int]:
        return {name: pos for pos, name in enumerate(self._names)}

    def degree(self, variable: NodeId) -> int:
        """Number of edges incident to ``variable``."""
        return len(self.neighbors_of_variable(variable))

    @cached_property
    def incidence(self) -> IncidenceCache:
        """The shared incidence index of this network (built on first use).

        Networks are immutable, so one cache serves every consumer; the
        refinement engines, environment signatures and quotients all read
        adjacency from here instead of re-deriving edges.
        """
        return IncidenceCache(self)

    def build_incidence(self) -> IncidenceCache:
        """A *fresh* incidence index, bypassing :attr:`incidence`.

        The "uncached" reference path: tests compare results computed
        through a throwaway index against the shared cached one.
        """
        return IncidenceCache(self)

    @cached_property
    def edge_count(self) -> int:
        return len(self._n_nbr)

    # ------------------------------------------------------------------
    # structural predicates
    # ------------------------------------------------------------------

    @cached_property
    def is_connected(self) -> bool:
        """True if the bipartite graph is connected.

        The paper generally assumes connectivity; the union systems used
        for families (Section 5) are the deliberate exception.
        """
        if not self._processors:
            return True
        adjacency = self._adjacency
        start = self.nodes[0]
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nbr in adjacency[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        return len(seen) == len(self.nodes)

    @cached_property
    def _adjacency(self) -> Dict[NodeId, Tuple[NodeId, ...]]:
        adj: Dict[NodeId, List[NodeId]] = {n: [] for n in self.nodes}
        for (proc, _name), var in self._n_nbr.items():
            adj[proc].append(var)
            adj[var].append(proc)
        return {n: tuple(sorted(set(ns), key=repr)) for n, ns in adj.items()}

    @cached_property
    def connected_components(self) -> Tuple[FrozenSet[NodeId], ...]:
        """Connected components as frozensets of nodes."""
        adjacency = self._adjacency
        seen: set = set()
        components: List[FrozenSet[NodeId]] = []
        for start in self.nodes:
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for nbr in adjacency[node]:
                    if nbr not in comp:
                        comp.add(nbr)
                        stack.append(nbr)
            seen |= comp
            components.append(frozenset(comp))
        return tuple(components)

    @cached_property
    def is_distributed(self) -> bool:
        """True if no single variable is accessed by *all* processors.

        This is the paper's Section 7 notion of a *distributed* system,
        used in the Dining Philosophers argument (Theorem 11 requires
        ``k != j`` because the system is distributed).
        """
        total = len(self._processors)
        for v in self._variables:
            accessors = {p for p, _ in self.neighbors_of_variable(v)}
            if len(accessors) == total:
                return False
        return True

    # ------------------------------------------------------------------
    # constructions
    # ------------------------------------------------------------------

    def relabeled(self, rename) -> "Network":
        """A copy with every node id passed through callable ``rename``."""
        edges = {
            rename(p): {n: rename(self._n_nbr[(p, n)]) for n in self._names}
            for p in self._processors
        }
        return Network(self._names, edges, variables=[rename(v) for v in self._variables])

    def disjoint_union(self, other: "Network", tags: Tuple[str, str] = ("A", "B")) -> "Network":
        """The disjoint union of two networks over the same NAMES.

        Node ids are wrapped as ``(tag, original_id)``.  This is the graph
        underlying the *union system* that defines the similarity labeling
        of a family (Section 5).
        """
        if set(self._names) != set(other._names):
            raise NetworkError("disjoint union requires identical NAMES")
        a = self.relabeled(lambda x: (tags[0], x))
        b = other.relabeled(lambda x: (tags[1], x))
        edges: Dict[NodeId, Dict[Name, NodeId]] = {}
        for net in (a, b):
            for p in net.processors:
                edges[p] = dict(net.neighbors_of_processor(p))
        return Network(self._names, edges, variables=a.variables + b.variables)

    def induced_subnetwork(self, processors: Iterable[NodeId]) -> "Network":
        """The subsystem induced by a set of processors.

        The subsystem keeps every selected processor with *all* of its
        named edges (each processor must keep exactly one n-neighbor per
        name, so processors cannot lose edges) and keeps exactly the
        variables those edges touch.  This is the notion of *subsystem*
        used to define mimicry for fair systems in S (Section 6).
        """
        procs = _sorted_nodes(processors)
        unknown = [p for p in procs if p not in self._processor_set]
        if unknown:
            raise NetworkError(f"not processors of this network: {unknown!r}")
        if not procs:
            raise NetworkError("a subsystem needs at least one processor")
        edges = {p: dict(self.neighbors_of_processor(p)) for p in procs}
        return Network(self._names, edges)

    def all_subnetworks(self, min_processors: int = 1) -> Iterable["Network"]:
        """Yield every induced subsystem with at least ``min_processors``.

        Exponential in ``|P|``; intended for the small systems of the
        paper's figures (mimicry analysis).
        """
        from itertools import combinations

        for k in range(min_processors, len(self._processors) + 1):
            for subset in combinations(self._processors, k):
                yield self.induced_subnetwork(subset)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Network):
            return NotImplemented
        return (
            self._names == other._names
            and self._processors == other._processors
            and self._variables == other._variables
            and self._n_nbr == other._n_nbr
        )

    def __hash__(self) -> int:
        return hash((self._names, self._processors, self._variables,
                     tuple(sorted(self._n_nbr.items(), key=repr))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network(|P|={len(self._processors)}, |V|={len(self._variables)}, "
            f"names={list(self._names)!r})"
        )
