"""Explainable dissimilarity: *why* are two nodes not similar?

`similarity_labeling` answers whether nodes are similar; this module
answers **why not**, as a chain of reasons grounded in the environment
conditions -- the same information a processor extracts through alibis in
Algorithm 2, read off the refinement run instead:

    >>> explain_dissimilarity(figure2_system(), "p1", "p3").reason
    "split at round 1: their 'n'-neighbors were already distinguished..."

The explanation recurses: if two processors split because their
n-neighbors split, it explains the neighbors' split too, bottoming out at
initial-state differences or variables with different per-name writer
profiles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .environment import EnvironmentModel
from .labeling import Labeling
from .names import NodeId
from .refinement import _initial_labeling  # shared seeding logic
from .environment import environment_signature
from .system import System


@dataclass(frozen=True)
class Explanation:
    """Why two nodes are (dis)similar.

    Attributes:
        similar: True when the nodes share a similarity class (then
            ``reason`` says so and ``chain`` is empty).
        split_round: the refinement round at which they separated.
        reason: one-line summary of the separating evidence.
        chain: the full recursive reason chain, outermost first.
    """

    similar: bool
    split_round: Optional[int]
    reason: str
    chain: Tuple[str, ...]


def _refinement_rounds(
    system: System, model: EnvironmentModel, include_state: bool
) -> List[Labeling]:
    """Labelings per refinement round, from seed to fixpoint."""
    labeling = _initial_labeling(system, include_state)
    rounds = [labeling]
    while True:
        combined: Dict[NodeId, object] = {}
        for node in system.nodes:
            combined[node] = (
                labeling[node],
                environment_signature(system, node, labeling, model, include_state),
            )
        intern: Dict[object, int] = {}
        new_assignment: Dict[NodeId, int] = {}
        for node in system.nodes:
            key = combined[node]
            if key not in intern:
                intern[key] = len(intern)
            new_assignment[node] = intern[key]
        new_labeling = Labeling(new_assignment)
        if len(new_labeling.labels) == len(labeling.labels):
            return rounds
        labeling = new_labeling
        rounds.append(labeling)


def _first_split(rounds: List[Labeling], x: NodeId, y: NodeId) -> Optional[int]:
    for i, labeling in enumerate(rounds):
        if labeling[x] != labeling[y]:
            return i
    return None


def _describe_split(
    system: System,
    rounds: List[Labeling],
    x: NodeId,
    y: NodeId,
    split: int,
    model: EnvironmentModel,
    chain: List[str],
    depth: int,
    seen: set,
) -> None:
    net = system.network
    if split == 0:
        if net.is_processor(x) != net.is_processor(y):
            chain.append(f"{x!r} and {y!r} are different kinds of node")
        else:
            chain.append(
                f"{x!r} and {y!r} have different initial states "
                f"({system.state0(x)!r} vs {system.state0(y)!r})"
            )
        return
    prev = rounds[split - 1]
    if (x, y) in seen or depth <= 0:
        chain.append(f"... ({x!r} vs {y!r}: chain truncated)")
        return
    seen.add((x, y))

    if net.is_processor(x) and net.is_processor(y):
        for name in net.names:
            vx, vy = net.n_nbr(x, name), net.n_nbr(y, name)
            if prev[vx] != prev[vy]:
                chain.append(
                    f"split at round {split}: their {name!r}-neighbors "
                    f"({vx!r} vs {vy!r}) were already distinguished"
                )
                sub_split = _first_split(rounds, vx, vy)
                if sub_split is not None:
                    _describe_split(
                        system, rounds, vx, vy, sub_split, model, chain, depth - 1, seen
                    )
                return
        chain.append(f"split at round {split}: differing environments")
        return

    # variables: compare per-name writer-label profiles under prev.
    for name in net.names:
        labels_x = [prev[p] for p in net.n_neighbors_of_variable(x, name)]
        labels_y = [prev[p] for p in net.n_neighbors_of_variable(y, name)]
        if model is EnvironmentModel.MULTISET:
            differ = Counter(labels_x) != Counter(labels_y)
            what = "counts"
        else:
            differ = set(labels_x) != set(labels_y)
            what = "set"
        if differ:
            writers_x = net.n_neighbors_of_variable(x, name)
            writers_y = net.n_neighbors_of_variable(y, name)
            if len(writers_x) != len(writers_y):
                chain.append(
                    f"split at round {split}: {x!r} has {len(writers_x)} "
                    f"{name!r}-writer(s), {y!r} has {len(writers_y)}"
                    + (
                        " -- a multiplicity, visible to peek but not to read"
                        if model is EnvironmentModel.MULTISET
                        else ""
                    )
                )
                return
            chain.append(
                f"split at round {split}: their {name!r}-writers belong to "
                f"already-distinguished classes"
            )
            # Recurse on a concrete witness pair of writers.
            for wx in writers_x:
                for wy in writers_y:
                    if prev[wx] != prev[wy]:
                        sub_split = _first_split(rounds, wx, wy)
                        if sub_split is not None:
                            _describe_split(
                                system, rounds, wx, wy, sub_split, model,
                                chain, depth - 1, seen,
                            )
                        return
            return
    chain.append(f"split at round {split}: differing environments")


def explain_dissimilarity(
    system: System,
    x: NodeId,
    y: NodeId,
    model: Optional[EnvironmentModel] = None,
    include_state: bool = True,
    max_depth: int = 6,
) -> Explanation:
    """Explain why ``x`` and ``y`` are dissimilar (or report similarity).

    The explanation follows the refinement run: the round at which the
    two nodes' classes separated, the environment component responsible,
    and recursively the reason that component had already separated.
    """
    if model is None:
        model = EnvironmentModel.for_instruction_set(system.instruction_set)
    rounds = _refinement_rounds(system, model, include_state)
    split = _first_split(rounds, x, y)
    if split is None:
        return Explanation(
            similar=True,
            split_round=None,
            reason=f"{x!r} and {y!r} are similar (same class at the fixpoint)",
            chain=(),
        )
    chain: List[str] = []
    _describe_split(system, rounds, x, y, split, model, chain, max_depth, set())
    return Explanation(
        similar=False,
        split_round=split,
        reason=chain[0] if chain else f"split at round {split}",
        chain=tuple(chain),
    )
