"""Front door for similarity analysis (paper, Sections 3-6).

*Similarity* is the paper's model-independent characterization of
symmetry: a schedule causes nodes to behave similarly if it gives them the
same state at the same time infinitely often, for any program; nodes are
similar if some schedule causes them to behave similarly.  The similarity
labeling ``Theta`` groups nodes exactly by similarity.

How ``Theta`` is computed depends on the instruction set:

====================  =====================================================
instruction set       similarity labeling
====================  =====================================================
Q                     coarsest environment-respecting labeling, multiset
                      variable environments (Theorem 4 + Algorithm 1)
L (state in R)        identical to the Q labeling of the same state
                      (discussion after Theorem 8); for arbitrary initial
                      states L is analyzed through the relabel family --
                      see :mod:`repro.core.selection`
S, bounded-fair       as Q but variable environments compare label *sets*
                      (Section 6)
S, fair               same ``Theta`` as bounded-fair S, but processors
                      cannot learn their labels when mimicry occurs --
                      see :mod:`repro.core.mimicry`
====================  =====================================================
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from .environment import EnvironmentModel
from .labeling import Labeling
from .names import NodeId
from .refinement import RefinementResult, compute_similarity_labeling
from .system import System


def similarity_result(
    system: System,
    model: Optional[EnvironmentModel] = None,
    include_state: bool = True,
    engine: str = "worklist",
) -> RefinementResult:
    """Similarity labeling with refinement instrumentation."""
    return compute_similarity_labeling(system, model, include_state, engine)


def similarity_labeling(
    system: System,
    model: Optional[EnvironmentModel] = None,
    include_state: bool = True,
    engine: str = "worklist",
) -> Labeling:
    """The similarity labeling ``Theta`` of ``system``.

    For instruction set L this returns the Q-similarity labeling of the
    system *as given*; that equals the true L-similarity labeling whenever
    the initial state already separates same-name neighbors (the states
    ``R`` produced by ``relabel``).  Pre-relabel L systems should be
    analyzed with :func:`repro.core.selection.decide_selection` instead.
    """
    return similarity_result(system, model, include_state, engine).labeling


def similarity_classes(system: System, **kwargs) -> Tuple[FrozenSet[NodeId], ...]:
    """The similarity equivalence classes of ``system``'s nodes."""
    return similarity_labeling(system, **kwargs).blocks


def are_similar(system: System, x: NodeId, y: NodeId, **kwargs) -> bool:
    """Are nodes ``x`` and ``y`` similar in ``system``?"""
    theta = similarity_labeling(system, **kwargs)
    return theta[x] == theta[y]


def processor_similarity_classes(
    system: System, **kwargs
) -> Tuple[FrozenSet[NodeId], ...]:
    """Similarity classes restricted to processors."""
    theta = similarity_labeling(system, **kwargs)
    proc_set = set(system.processors)
    return tuple(
        frozenset(b & proc_set) for b in theta.blocks if b & proc_set
    )


def is_supersimilarity_labeling(system: System, labeling: Labeling, **kwargs) -> bool:
    """Is ``labeling`` a supersimilarity labeling (same label => similar)?

    Equivalent to: ``labeling`` refines ``Theta``.
    """
    theta = similarity_labeling(system, **kwargs)
    return labeling.refines(theta)


def is_subsimilarity_labeling(system: System, labeling: Labeling, **kwargs) -> bool:
    """Is ``labeling`` a subsimilarity labeling (similar => same label)?

    Equivalent to: ``Theta`` refines ``labeling``.
    """
    theta = similarity_labeling(system, **kwargs)
    return theta.refines(labeling)


def is_similarity_labeling(system: System, labeling: Labeling, **kwargs) -> bool:
    """Both super- and subsimilar: the labeling *is* ``Theta`` (up to
    renaming of labels)."""
    theta = similarity_labeling(system, **kwargs)
    return labeling.same_partition(theta)


def every_processor_is_paired(system: System, **kwargs) -> bool:
    """Theorem 2/3 test: does every processor have a similar peer?

    When true, no selection algorithm exists for the system (in the model
    that ``Theta`` was computed for).
    """
    theta = similarity_labeling(system, **kwargs)
    return theta.every_node_is_paired(system.processors)
