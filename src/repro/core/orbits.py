"""Θ-orbit canonicalization of execution states (symmetry reduction).

The similarity labeling Θ is an isomorphism invariant: every automorphism
of the system graph permutes nodes *within* Θ classes.  Because the
paper's programs are anonymous and deterministic, an automorphism ``σ``
also commutes with the step relation -- if configuration ``c`` steps to
``c'`` when processor ``p`` runs, then ``σ·c`` steps to ``σ·c'`` when
``σ(p)`` runs.  Two configurations in the same orbit therefore have
isomorphic futures, and a state-space search may identify them: this is
classic symmetry reduction (Clarke/Emerson/Jha; Ip/Dill), with Θ playing
its usual role of bounding the candidate permutations.

:class:`OrbitCanonicalizer` enumerates the automorphism group once per
system (optionally truncated -- soundness does not depend on closure,
only dedup strength does: every permutation applied maps reachable states
to reachable states, so ``canonical(x) == canonical(y)`` always means
``x`` and ``y`` are in the same orbit) and canonicalizes a state by
taking the lexicographically least image under the enumerated
permutations, comparing by ``repr`` so heterogeneous state values are
ordered deterministically.

States are the executor's *exploration states*
(:meth:`repro.runtime.executor.Executor.exploration_state`): processor
entries positional in ``system.processors`` order, variable entries
positional in ``system.variables`` order, with embedded processor
references (lock owners, subvalue posters) encoded as processor indices.
A permutation acts by permuting both node axes and renaming the embedded
indices through the inverse processor map.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .automorphism import iter_automorphisms
from .system import System

#: A processor-indexed vector riding along with the execution state
#: (fairness deadline ages, per-processor step counts, ...); permuted on
#: the processor axis exactly like the local-state part.
ProcVector = Tuple[object, ...]


class OrbitCanonicalizer:
    """Canonicalize exploration states under the automorphism group.

    Args:
        system: the system whose automorphisms are enumerated.
        limit: cap on the number of enumerated automorphisms (the group
            can be large); truncation weakens deduplication but never
            merges states from different orbits.
    """

    def __init__(self, system: System, limit: Optional[int] = 2000) -> None:
        self.system = system
        procs = tuple(system.processors)
        variables = tuple(system.variables)
        pindex = {p: i for i, p in enumerate(procs)}
        vindex = {v: i for i, v in enumerate(variables)}
        # Per permutation: where each output slot reads from, plus the
        # inverse processor rename for embedded owner/poster indices.
        self._perms: List[Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]] = []
        count = 0
        for sigma in iter_automorphisms(system, limit=limit):
            psrc = tuple(pindex[sigma[p]] for p in procs)
            vsrc = tuple(vindex[sigma[v]] for v in variables)
            inverse = {sigma[p]: p for p in procs}
            prename = tuple(pindex[inverse[p]] for p in procs)
            self._perms.append((psrc, vsrc, prename))
            count += 1
        self.group_size = count
        self.truncated = limit is not None and count >= limit

    def _apply(
        self,
        perm: Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]],
        proc_part: Tuple[object, ...],
        var_part: Tuple[object, ...],
        vectors: Tuple[ProcVector, ...],
    ) -> Tuple[object, ...]:
        psrc, vsrc, prename = perm
        new_procs = tuple(proc_part[i] for i in psrc)
        new_vars: List[object] = []
        for j in vsrc:
            entry = var_part[j]
            if entry[0] == "plain":
                _kind, value, locked, owner = entry
                new_vars.append(
                    ("plain", value, locked, prename[owner] if owner >= 0 else -1)
                )
            else:  # ("subvalue", base, ((proc_index, value), ...))
                _kind, base, items = entry
                new_vars.append(
                    (
                        "subvalue",
                        base,
                        tuple(sorted((prename[i], val) for i, val in items)),
                    )
                )
        new_vectors = tuple(tuple(vec[i] for i in psrc) for vec in vectors)
        return (new_procs, tuple(new_vars), new_vectors)

    def canonical(
        self,
        proc_part: Tuple[object, ...],
        var_part: Tuple[object, ...],
        vectors: Sequence[ProcVector] = (),
    ) -> Tuple[object, ...]:
        """The lexicographically least orbit member (by ``repr``)."""
        vectors = tuple(vectors)
        best = None
        best_repr = None
        for perm in self._perms:
            candidate = self._apply(perm, proc_part, var_part, vectors)
            candidate_repr = repr(candidate)
            if best_repr is None or candidate_repr < best_repr:
                best = candidate
                best_repr = candidate_repr
        if best is None:  # no automorphism enumerated (cannot happen: identity)
            return (proc_part, var_part, vectors)
        return best
