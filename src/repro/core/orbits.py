"""Θ-orbit canonicalization of execution states (symmetry reduction).

The similarity labeling Θ is an isomorphism invariant: every automorphism
of the system graph permutes nodes *within* Θ classes.  Because the
paper's programs are anonymous and deterministic, an automorphism ``σ``
also commutes with the step relation -- if configuration ``c`` steps to
``c'`` when processor ``p`` runs, then ``σ·c`` steps to ``σ·c'`` when
``σ(p)`` runs.  Two configurations in the same orbit therefore have
isomorphic futures, and a state-space search may identify them: this is
classic symmetry reduction (Clarke/Emerson/Jha; Ip/Dill), with Θ playing
its usual role of bounding the candidate permutations.

Two canonicalizers live here:

* :class:`OrbitCanonicalizer` enumerates the automorphism group once per
  system (optionally truncated -- soundness does not depend on closure,
  only dedup strength does: every permutation applied maps reachable
  states to reachable states, so ``canonical(x) == canonical(y)`` always
  means ``x`` and ``y`` are in the same orbit) and canonicalizes a state
  by taking the least image under the enumerated permutations, comparing
  encoded byte forms (:mod:`repro.core.encoding`) so heterogeneous state
  values are ordered totally and type-stably.  It is the reference
  implementation: transparent, but linear in |Aut| per state.
* :class:`StabilizerChainCanonicalizer` walks a Schreier–Sims stabilizer
  chain (:func:`repro.core.automorphism.stabilizer_chain`) instead of an
  enumeration: a greedy minimal-image search fixes one processor slot at
  a time, keeping only the candidate cosets that minimize the rendered
  slot and deduplicating candidates whose full rendered images coincide.
  Exact for the whole group -- no truncation cap, polynomial per state
  even for star topologies whose groups are factorial -- and its output
  is the flat canonical *byte key* the engines hash, share and compare.

States are the executor's *exploration states*
(:meth:`repro.runtime.executor.Executor.exploration_state`): processor
entries positional in ``system.processors`` order, variable entries
positional in ``system.variables`` order, with embedded processor
references (lock owners, subvalue posters) encoded as processor indices.
A permutation acts by permuting both node axes and renaming the embedded
indices through the inverse processor map.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .automorphism import StabilizerChain, iter_automorphisms, stabilizer_chain
from .encoding import StateEncoder, encode_value
from .system import System

#: A processor-indexed vector riding along with the execution state
#: (fairness deadline ages, per-processor step counts, ...); permuted on
#: the processor axis exactly like the local-state part.
ProcVector = Tuple[object, ...]


class OrbitCanonicalizer:
    """Canonicalize exploration states under the automorphism group.

    Args:
        system: the system whose automorphisms are enumerated.
        limit: cap on the number of enumerated automorphisms (the group
            can be large); truncation weakens deduplication but never
            merges states from different orbits.
    """

    def __init__(self, system: System, limit: Optional[int] = 2000) -> None:
        self.system = system
        procs = tuple(system.processors)
        variables = tuple(system.variables)
        pindex = {p: i for i, p in enumerate(procs)}
        vindex = {v: i for i, v in enumerate(variables)}
        # Per permutation: where each output slot reads from, plus the
        # inverse processor rename for embedded owner/poster indices.
        self._perms: List[Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]] = []
        count = 0
        truncated = False
        # Enumerate one element past the cap: a group of exactly `limit`
        # elements is complete, not truncated — only an extra element
        # proves the enumeration was cut short.
        peek = None if limit is None else limit + 1
        for sigma in iter_automorphisms(system, limit=peek):
            if limit is not None and count == limit:
                truncated = True
                break
            psrc = tuple(pindex[sigma[p]] for p in procs)
            vsrc = tuple(vindex[sigma[v]] for v in variables)
            inverse = {sigma[p]: p for p in procs}
            prename = tuple(pindex[inverse[p]] for p in procs)
            self._perms.append((psrc, vsrc, prename))
            count += 1
        self.group_size = count
        self.truncated = truncated

    def _apply(
        self,
        perm: Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]],
        proc_part: Tuple[object, ...],
        var_part: Tuple[object, ...],
        vectors: Tuple[ProcVector, ...],
    ) -> Tuple[object, ...]:
        psrc, vsrc, prename = perm
        new_procs = tuple(proc_part[i] for i in psrc)
        new_vars: List[object] = []
        for j in vsrc:
            entry = var_part[j]
            if entry[0] == "plain":
                _kind, value, locked, owner = entry
                new_vars.append(
                    ("plain", value, locked, prename[owner] if owner >= 0 else -1)
                )
            else:  # ("subvalue", base, ((proc_index, value), ...))
                _kind, base, items = entry
                new_vars.append(
                    (
                        "subvalue",
                        base,
                        tuple(sorted((prename[i], val) for i, val in items)),
                    )
                )
        new_vectors = tuple(tuple(vec[i] for i in psrc) for vec in vectors)
        return (new_procs, tuple(new_vars), new_vectors)

    def canonical(
        self,
        proc_part: Tuple[object, ...],
        var_part: Tuple[object, ...],
        vectors: Sequence[ProcVector] = (),
    ) -> Tuple[object, ...]:
        """The least orbit member, compared by canonical byte encoding.

        The old ``repr``-string comparison ordered numeric values as text
        (``"10" < "2"``) and tied the canonical choice to repr
        formatting; :func:`repro.core.encoding.encode_value` is total,
        type-stable, and numeric for machine-size ints.
        """
        vectors = tuple(vectors)
        best = None
        best_key = None
        for perm in self._perms:
            candidate = self._apply(perm, proc_part, var_part, vectors)
            candidate_key = encode_value(candidate)
            if best_key is None or candidate_key < best_key:
                best = candidate
                best_key = candidate_key
        if best is None:  # no automorphism enumerated (cannot happen: identity)
            return (proc_part, var_part, vectors)
        return best


class StabilizerChainCanonicalizer:
    """Exact canonical byte keys via a Schreier–Sims stabilizer chain.

    ``canonical_key`` returns the minimum, over the whole automorphism
    group, of the flat byte rendering of the permuted state — without
    ever enumerating the group.  The search walks the chain's base
    points (processors, in slot order): at each level every frontier
    candidate is extended by every coset representative of the level's
    transversal, only extensions minimizing that output slot survive,
    and survivors whose *complete* rendered images coincide are merged
    (if two prefix permutations render the whole state identically, all
    their extensions do too, so keeping one loses nothing — this is what
    keeps uniform states on factorial star groups polynomial).

    Isolated variables (no processor neighbors) permute freely within
    similarity classes; rendering sorts those slots within each class,
    which is the exact minimum over that symmetric factor.

    The key is deterministic across processes and ``PYTHONHASHSEED``
    values, and key equality is exactly orbit equivalence — the same
    relation :class:`OrbitCanonicalizer` induces without a cap.
    """

    def __init__(
        self,
        system: System,
        encoder: Optional[StateEncoder] = None,
        chain: Optional[StabilizerChain] = None,
    ) -> None:
        self.system = system
        self.encoder = encoder if encoder is not None else StateEncoder(system)
        self.chain = chain if chain is not None else stabilizer_chain(system)
        self.group_size = self.chain.order
        self.truncated = False  # exact by construction
        self._identity = (
            tuple(range(self.chain.n_procs)),
            tuple(range(self.chain.n_vars)),
        )

    def _render(
        self,
        parr: Tuple[int, ...],
        varr: Tuple[int, ...],
        pslots: Tuple[bytes, ...],
        ventries: Tuple[tuple, ...],
    ) -> bytes:
        """The flat byte key of the state permuted by ``(parr, varr)``."""
        inv = [0] * len(parr)
        for outpos, img in enumerate(parr):
            inv[img] = outpos
        slots = [pslots[img] for img in parr]
        render_var = self.encoder.render_var
        pos = inv.__getitem__
        var_slots = [render_var(ventries[img], pos) for img in varr]
        for members in self.chain.isolated_classes:
            # Transversal elements are the identity on isolated
            # variables, so output slot j of an isolated variable is j
            # itself: minimizing over the free Sym(class) factor is
            # sorting the rendered slots within the class.
            rendered = sorted(var_slots[j] for j in members)
            for j, blob in zip(members, rendered):
                var_slots[j] = blob
        slots.extend(var_slots)
        return self.encoder.join_slots(slots)

    def canonical_key(
        self,
        proc_part: Tuple[object, ...],
        var_part: Tuple[object, ...],
        vectors: Sequence[ProcVector] = (),
    ) -> bytes:
        """The least encoded orbit member (exact minimal image)."""
        pslots = self.encoder.proc_slots(proc_part, tuple(vectors))
        ventries = self.encoder.var_entries(var_part)
        frontier = [self._identity]
        for level in self.chain.levels:
            if len(level.transversal) == 1 and len(frontier) == 1:
                continue
            i = level.point_index
            best_slot = None
            extensions: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
            for gp, gv in frontier:
                for up, uv in level.transversal.values():
                    comp = (
                        tuple(gp[x] for x in up),
                        tuple(gv[x] for x in uv),
                    )
                    blob = pslots[comp[0][i]]
                    # Slots are length-prefixed in the final key, so the
                    # induced per-slot order is (length, bytes).
                    slot = (len(blob), blob)
                    if best_slot is None or slot < best_slot:
                        best_slot = slot
                        extensions = [comp]
                    elif slot == best_slot:
                        extensions.append(comp)
            if len(extensions) > 1:
                merged: Dict[bytes, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
                for comp in extensions:
                    image = self._render(comp[0], comp[1], pslots, ventries)
                    if image not in merged:
                        merged[image] = comp
                frontier = list(merged.values())
            else:
                frontier = extensions
        return min(
            self._render(gp, gv, pslots, ventries) for gp, gv in frontier
        )

    def identity_key(
        self,
        proc_part: Tuple[object, ...],
        var_part: Tuple[object, ...],
        vectors: Sequence[ProcVector] = (),
    ) -> bytes:
        """The key of the state as-is (no symmetry reduction)."""
        return self.encoder.identity_key(proc_part, var_part, tuple(vectors))
