"""Systems ``Sigma = (N, state_0, I, SP)`` (paper, Section 2).

A system bundles a :class:`~repro.core.network.Network` with an initial
state for every node, an instruction set, and a schedule class.  Systems
are immutable value objects; analyses (similarity labelings, selection
decisions) take systems as inputs and never mutate them.
"""

from __future__ import annotations

import enum
from functools import cached_property
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..exceptions import SystemError_
from .names import Name, NodeId, State
from .network import Network


class InstructionSet(enum.Enum):
    """The instruction sets studied by the paper.

    * ``S`` -- simple: ``read``/``write`` on shared variables plus
      arbitrary local instructions.
    * ``L`` -- locking: ``S`` plus ``lock``/``unlock`` using a lock bit
      per shared variable.
    * ``Q`` -- quasi-locking: ``peek``/``post`` on variables that hold a
      multiset of per-processor subvalues.
    * ``L2`` -- extended locking (Section 6): ``L`` plus an indivisible
      multi-variable lock.
    """

    S = "S"
    L = "L"
    Q = "Q"
    L2 = "L2"

    @property
    def has_locks(self) -> bool:
        return self in (InstructionSet.L, InstructionSet.L2)

    @property
    def is_multiset(self) -> bool:
        """True if shared variables hold per-processor subvalue multisets."""
        return self is InstructionSet.Q


class ScheduleClass(enum.Enum):
    """The schedule classes of Section 2.

    * ``GENERAL`` -- no restriction (processors may be starved forever).
    * ``FAIR`` -- every processor occurs infinitely often.
    * ``BOUNDED_FAIR`` -- there is a ``k`` such that every processor
      occurs in every window of ``k`` steps.
    """

    GENERAL = "G"
    FAIR = "F"
    BOUNDED_FAIR = "BF"

    @property
    def is_fair(self) -> bool:
        return self in (ScheduleClass.FAIR, ScheduleClass.BOUNDED_FAIR)


class System:
    """An immutable system ``(N, state_0, I, SP)``.

    Args:
        network: the bipartite processor/variable network.
        initial_state: state for each node.  Nodes omitted from the
            mapping default to ``0`` (a convenient "blank" state, so that
            fully anonymous systems can be written tersely).
        instruction_set: one of :class:`InstructionSet`.
        schedule_class: one of :class:`ScheduleClass`.
    """

    def __init__(
        self,
        network: Network,
        initial_state: Optional[Mapping[NodeId, State]] = None,
        instruction_set: InstructionSet = InstructionSet.Q,
        schedule_class: ScheduleClass = ScheduleClass.FAIR,
    ) -> None:
        initial_state = dict(initial_state or {})
        unknown = set(initial_state) - set(network.nodes)
        if unknown:
            raise SystemError_(
                f"initial_state mentions unknown nodes: {sorted(map(repr, unknown))}"
            )
        self._network = network
        self._state0: Dict[NodeId, State] = {
            node: initial_state.get(node, 0) for node in network.nodes
        }
        self._instruction_set = instruction_set
        self._schedule_class = schedule_class

    # ------------------------------------------------------------------

    @property
    def network(self) -> Network:
        return self._network

    @property
    def instruction_set(self) -> InstructionSet:
        return self._instruction_set

    @property
    def schedule_class(self) -> ScheduleClass:
        return self._schedule_class

    @property
    def processors(self) -> Tuple[NodeId, ...]:
        return self._network.processors

    @property
    def variables(self) -> Tuple[NodeId, ...]:
        return self._network.variables

    @property
    def names(self) -> Tuple[Name, ...]:
        return self._network.names

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        return self._network.nodes

    def state0(self, node: NodeId) -> State:
        """The initial state of ``node``."""
        try:
            return self._state0[node]
        except KeyError:
            raise SystemError_(f"unknown node {node!r}") from None

    @cached_property
    def initial_state(self) -> Mapping[NodeId, State]:
        """The full initial-state mapping (read-only view)."""
        return dict(self._state0)

    def n_nbr(self, processor: NodeId, name: Name) -> NodeId:
        return self._network.n_nbr(processor, name)

    # ------------------------------------------------------------------
    # derived systems
    # ------------------------------------------------------------------

    def with_state(self, new_state: Mapping[NodeId, State]) -> "System":
        """A copy with some initial states replaced."""
        merged = dict(self._state0)
        merged.update(new_state)
        return System(self._network, merged, self._instruction_set, self._schedule_class)

    def with_uniform_state(self, state: State = 0) -> "System":
        """A copy whose nodes all start in ``state``.

        Used by Algorithm 3's first phase, which deliberately ignores the
        initial state so that every member of a homogeneous family behaves
        identically.
        """
        return System(
            self._network,
            {node: state for node in self.nodes},
            self._instruction_set,
            self._schedule_class,
        )

    def with_instruction_set(self, instruction_set: InstructionSet) -> "System":
        """The same network and state under a different instruction set."""
        return System(self._network, self._state0, instruction_set, self._schedule_class)

    def with_schedule_class(self, schedule_class: ScheduleClass) -> "System":
        return System(self._network, self._state0, self._instruction_set, schedule_class)

    def induced_subsystem(self, processors: Iterable[NodeId]) -> "System":
        """Subsystem induced by a processor subset (used by mimicry)."""
        sub = self._network.induced_subnetwork(processors)
        state = {node: self._state0[node] for node in sub.nodes}
        return System(sub, state, self._instruction_set, self._schedule_class)

    def disjoint_union(self, other: "System", tags: Tuple[str, str] = ("A", "B")) -> "System":
        """The union system of Section 5 (generally unconnected).

        Both systems must share NAMES, instruction set and schedule class.
        """
        if self._instruction_set is not other._instruction_set:
            raise SystemError_("union requires identical instruction sets")
        if self._schedule_class is not other._schedule_class:
            raise SystemError_("union requires identical schedule classes")
        net = self._network.disjoint_union(other._network, tags)
        state: Dict[NodeId, State] = {}
        for node in self.nodes:
            state[(tags[0], node)] = self._state0[node]
        for node in other.nodes:
            state[(tags[1], node)] = other._state0[node]
        return System(net, state, self._instruction_set, self._schedule_class)

    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, System):
            return NotImplemented
        return (
            self._network == other._network
            and self._state0 == other._state0
            and self._instruction_set is other._instruction_set
            and self._schedule_class is other._schedule_class
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._network,
                tuple(sorted(self._state0.items(), key=lambda kv: repr(kv[0]))),
                self._instruction_set,
                self._schedule_class,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"System({self._network!r}, I={self._instruction_set.value}, "
            f"SP={self._schedule_class.value})"
        )


def union_of_systems(systems: Iterable[System]) -> System:
    """Disjoint union of any number of systems over the same NAMES.

    Members are tagged with their index.  The similarity labeling of a
    family is, per Section 5, the similarity labeling of this union.
    """
    systems = list(systems)
    if not systems:
        raise SystemError_("cannot union zero systems")
    first = systems[0]
    for s in systems[1:]:
        if set(s.names) != set(first.names):
            raise SystemError_("all systems in a union must share NAMES")
        if s.instruction_set is not first.instruction_set:
            raise SystemError_("all systems in a union must share the instruction set")
    from .network import Network  # local import to avoid cycle confusion

    edges: Dict[NodeId, Dict[Name, NodeId]] = {}
    variables = []
    state: Dict[NodeId, State] = {}
    for idx, s in enumerate(systems):
        for p in s.processors:
            edges[(idx, p)] = {
                n: (idx, v) for n, v in s.network.neighbors_of_processor(p).items()
            }
        variables.extend((idx, v) for v in s.variables)
        for node in s.nodes:
            state[(idx, node)] = s.state0(node)
    net = Network(first.names, edges, variables=variables)
    return System(net, state, first.instruction_set, first.schedule_class)
