"""The Selection Problem: decision procedures (paper, Sections 3-6).

    *Selection Problem.*  Decide whether there is a selection algorithm
    for a system ``Sigma`` and, if one exists, produce it.

A selection algorithm always establishes **Uniqueness** (exactly one
processor sets ``selected``) and maintains **Stability** (once selected,
always selected), for every schedule in the system's schedule class.

This module implements the *decision* side; the produced algorithms
themselves (runnable programs) live in :mod:`repro.algorithms`.  The
decision dispatches on the system's instruction set and schedule class:

==========================  ==========================================
case                        criterion
==========================  ==========================================
general schedules           never (Theorem 1; subsumes FLP)
Q, fair / bounded-fair      Theta has a uniquely labeled processor
S, bounded-fair             as Q with SET environments
S, fair                     some processor mimics no other (Section 6)
L / L2, fair                every relabel version has a uniquely
                            labeled processor; ELITE via Theorem 9
==========================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Optional, Tuple

from ..exceptions import SelectionError
from .environment import EnvironmentModel
from .families import (
    Family,
    elite_by_theorem9_greedy,
    relabel_family,
    relabel_family_extended,
)
from .labeling import Labeling
from .names import NodeId
from .similarity import similarity_labeling
from .system import InstructionSet, ScheduleClass, System


@dataclass(frozen=True)
class SelectionDecision:
    """Outcome of deciding the selection problem for one system.

    Attributes:
        possible: whether a selection algorithm exists.
        reason: human-readable justification naming the theorem applied.
        theorem: the paper theorem the decision rests on.
        elite: when possible and label-based, the set ELITE of processor
            labels such that exactly one processor per (reachable) system
            carries a label in ELITE.  The selected processor is the one
            that learns a label in this set.
        theta: the similarity labeling used (for L: the labeling of the
            relabel family's union, restricted to the first version), if
            label-based.
        unique_processors: processors holding a unique label under
            ``theta`` (candidates for selection), when meaningful.
    """

    possible: bool
    reason: str
    theorem: str
    elite: Optional[FrozenSet[Hashable]] = None
    theta: Optional[Labeling] = None
    unique_processors: Tuple[NodeId, ...] = ()


def _decide_by_labeling(system: System, model: EnvironmentModel, theorem: str) -> SelectionDecision:
    theta = similarity_labeling(system, model=model)
    unique = tuple(
        p for p in system.processors if theta.class_size(theta[p]) == 1
    )
    if unique:
        distinguished = min((theta[p] for p in unique), key=repr)
        return SelectionDecision(
            possible=True,
            reason=(
                f"similarity labeling has uniquely labeled processor(s) "
                f"{[repr(p) for p in unique]}; SELECT picks label {distinguished!r}"
            ),
            theorem=theorem,
            elite=frozenset({distinguished}),
            theta=theta,
            unique_processors=unique,
        )
    return SelectionDecision(
        possible=False,
        reason=(
            "every processor shares its similarity label with another "
            "processor, so some schedule makes each behave similarly to "
            "another (Theorem 2/3): no selection algorithm"
        ),
        theorem="Theorem 3",
        theta=theta,
    )


def _decide_locking(system: System) -> SelectionDecision:
    if system.instruction_set is InstructionSet.L2:
        family = relabel_family_extended(system)
    else:
        family = relabel_family(system)
    versions = family.member_labelings()
    processors = system.processors
    # Impossibility: some reachable relabeled version pairs every processor.
    for version in versions:
        if version.every_node_is_paired(processors):
            return SelectionDecision(
                possible=False,
                reason=(
                    "some execution of relabel yields a system whose "
                    "similarity labeling pairs every processor; that "
                    "labeling is a supersimilarity labeling of the system "
                    "in L, so by Theorem 3 no selection algorithm exists"
                ),
                theorem="Theorem 3 + Theorem 8",
                theta=version,
            )
    try:
        elite = elite_by_theorem9_greedy(versions, processors)
    except SelectionError as exc:  # pragma: no cover - guarded above
        return SelectionDecision(
            possible=False,
            reason=str(exc),
            theorem="Theorem 9",
        )
    return SelectionDecision(
        possible=True,
        reason=(
            f"every relabel version uniquely labels some processor; the "
            f"Theorem 9 greedy loop built ELITE={sorted(map(repr, elite))} with "
            f"exactly one ELITE-labeled processor per version; Algorithm 4 "
            f"(relabel, then Algorithm 3 for the family) selects it"
        ),
        theorem="Theorem 9",
        elite=elite,
        theta=versions[0],
        unique_processors=tuple(
            p for p in processors if versions[0][p] in elite
        ),
    )


def decide_selection(system: System) -> SelectionDecision:
    """Decide the selection problem for ``system``.

    Dispatches on the system's schedule class and instruction set as
    summarized in the module docstring.
    """
    if system.schedule_class is ScheduleClass.GENERAL:
        return SelectionDecision(
            possible=False,
            reason=(
                "with general schedules a selected processor can be "
                "suspended forever and the rest of the system, whose "
                "states it never changed, selects another (Theorem 1; "
                "this is the FLP impossibility in schedule form)"
            ),
            theorem="Theorem 1",
        )

    iset = system.instruction_set
    if iset is InstructionSet.Q:
        return _decide_by_labeling(system, EnvironmentModel.MULTISET, "Theorem 6")
    if iset is InstructionSet.S:
        if system.schedule_class is ScheduleClass.BOUNDED_FAIR:
            return _decide_by_labeling(system, EnvironmentModel.SET, "Section 6 (bounded-fair S)")
        # fair S: mimicry
        from .mimicry import processors_mimicking_no_other

        winners = processors_mimicking_no_other(system)
        if winners:
            return SelectionDecision(
                possible=True,
                reason=(
                    f"processor(s) {[repr(p) for p in winners]} mimic no other "
                    f"processor, so they can safely learn a unique role"
                ),
                theorem="Section 6 (fair S, mimicry)",
                unique_processors=winners,
            )
        return SelectionDecision(
            possible=False,
            reason=(
                "every processor mimics some other processor: whatever it "
                "observes is consistent with a subsystem in which another "
                "processor would wrongly select itself"
            ),
            theorem="Section 6 (fair S, mimicry)",
        )
    # L and L2
    return _decide_locking(system)


def decide_family_selection(family: Family) -> SelectionDecision:
    """Theorem 7: decide selection for a family of systems in Q."""
    elite = family.elite()
    if elite is not None:
        return SelectionDecision(
            possible=True,
            reason=(
                f"ELITE={sorted(map(repr, elite))} hits exactly one processor "
                f"label per family member"
            ),
            theorem="Theorem 7",
            elite=elite,
        )
    return SelectionDecision(
        possible=False,
        reason=(
            "no label set hits exactly one processor per member; some "
            "member makes every processor similar to another (Theorem 2)"
        ),
        theorem="Theorem 7",
    )
