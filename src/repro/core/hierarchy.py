"""The model-power hierarchy (paper, Sections 6 and 9).

The paper's conclusion orders the models by the selection problems they
can solve:

    L  is strictly more powerful than  Q,
    Q  is strictly more powerful than  bounded-fair S,
    bounded-fair S  is strictly more powerful than  fair S.

The *qualitative* content is in how the similarity rules differ:

* L vs Q -- processors that give the same name to the same variable can
  tell themselves apart (a lock race has exactly one winner);
* Q vs bounded-fair S -- processors can eventually learn the number of
  neighbors of each variable (a ``peek`` returns a sub-value multiset,
  whereas a ``read`` hides multiplicity);
* bounded-fair S vs fair S -- with a bound, silence is informative; under
  plain fairness a processor can never rule out that part of the system
  has not executed yet (mimicry).

This module evaluates one network+state under every model and reports the
selection decision per model, which is how the benchmarks regenerate the
paper's hierarchy table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..exceptions import WitnessRecordError
from .names import NodeId, State
from .network import Network
from .selection import SelectionDecision, decide_selection
from .system import InstructionSet, ScheduleClass, System

#: Model axis used throughout benchmarks: (label, instruction set, schedule).
MODEL_AXIS: Tuple[Tuple[str, InstructionSet, ScheduleClass], ...] = (
    ("fair-S", InstructionSet.S, ScheduleClass.FAIR),
    ("bounded-fair-S", InstructionSet.S, ScheduleClass.BOUNDED_FAIR),
    ("Q", InstructionSet.Q, ScheduleClass.FAIR),
    ("L", InstructionSet.L, ScheduleClass.FAIR),
    ("L2", InstructionSet.L2, ScheduleClass.FAIR),
)

#: The paper's claimed strict order, weakest first (L2 at least as strong as L).
POWER_ORDER: Tuple[str, ...] = ("fair-S", "bounded-fair-S", "Q", "L", "L2")


@dataclass(frozen=True)
class ModelReport:
    """Selection decisions for one network+state across all models."""

    description: str
    decisions: Mapping[str, SelectionDecision]

    def solvable_models(self) -> Tuple[str, ...]:
        return tuple(m for m in POWER_ORDER if self.decisions[m].possible)

    def respects_power_order(self) -> bool:
        """Monotonicity: if a weaker model solves selection, so must every
        stronger one.  (The hierarchy claims exactly this, plus strictness
        witnessed by *some* system per adjacent pair.)"""
        solved_weaker = False
        for model in POWER_ORDER:
            possible = self.decisions[model].possible
            if solved_weaker and not possible:
                return False
            solved_weaker = solved_weaker or possible
        return True


def selection_across_models(
    network: Network,
    state: Optional[Mapping[NodeId, State]] = None,
    description: str = "",
) -> ModelReport:
    """Decide selection for the same network+state under every model."""
    decisions: Dict[str, SelectionDecision] = {}
    for label, iset, sched in MODEL_AXIS:
        system = System(network, state, iset, sched)
        decisions[label] = decide_selection(system)
    return ModelReport(description or repr(network), decisions)


@dataclass(frozen=True)
class SeparationWitness:
    """A system separating two adjacent models in the hierarchy.

    ``weaker`` cannot solve selection on this system; ``stronger`` can.
    """

    weaker: str
    stronger: str
    report: ModelReport

    @property
    def valid(self) -> bool:
        return (
            not self.report.decisions[self.weaker].possible
            and self.report.decisions[self.stronger].possible
        )


def verify_separation(
    weaker: str,
    stronger: str,
    network: Network,
    state: Optional[Mapping[NodeId, State]] = None,
    description: str = "",
) -> SeparationWitness:
    """Package and check a claimed separation witness."""
    report = selection_across_models(network, state, description)
    return SeparationWitness(weaker, stronger, report)


# ----------------------------------------------------------------------
# Witness schemas: separations at every size
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WitnessSchema:
    """A separation witness as a function of ``n``.

    The fixed witnesses in :mod:`repro.topologies.witnesses` separate
    adjacent models at *one* size each; a schema names a symbolic family
    (:data:`repro.core.families.PARAMETRIC_FAMILIES`) every member of
    which is a witness, so the separation is a parameterized statement:
    ``instantiate(n)`` rebuilds and re-verifies the size-``n`` witness
    on demand.
    """

    weaker: str
    stronger: str
    family: str
    description: str
    min_size: int = 0  # 0: inherit the family's own min_size

    def first_size(self) -> int:
        from .families import parametric_family

        fam = parametric_family(self.family)
        return max(self.min_size, fam.min_size)

    def instantiate(self, n: int) -> SeparationWitness:
        """The size-``n`` witness, freshly re-verified."""
        from .families import parametric_family

        fam = parametric_family(self.family)
        system = fam.instantiate(n)
        return verify_separation(
            self.weaker,
            self.stronger,
            system.network,
            system.initial_state,
            f"{self.description} (n={n})",
        )

    def holds_at(self, n: int) -> bool:
        return self.instantiate(n).valid


#: Schemas known to hold at every admissible size (asserted by the
#: hypothesis suite; the parametric CLI re-verifies sampled sizes).
#: The unmarked ring is deliberately absent: L cannot select on any
#: unmarked ring (relabel versions stay rotation-symmetric), so stars
#: are the all-sizes Q/L separator.
WITNESS_SCHEMAS: Tuple[WitnessSchema, ...] = (
    WitnessSchema(
        weaker="Q",
        stronger="L",
        family="star",
        description="n-leaf star: peeking leaves stay mutually similar "
        "under Q, the hub lock race has one winner under L",
    ),
)


def witness_schema(weaker: str, stronger: str) -> WitnessSchema:
    """Look up the schema separating an adjacent model pair."""
    for schema in WITNESS_SCHEMAS:
        if schema.weaker == weaker and schema.stronger == stronger:
            return schema
    pairs = sorted((s.weaker, s.stronger) for s in WITNESS_SCHEMAS)
    raise WitnessRecordError(
        f"no witness schema separates {weaker!r} from {stronger!r}; "
        f"known pairs: {pairs}"
    )


# ----------------------------------------------------------------------
# Witness records: store round-trip with canonical-form keys
# ----------------------------------------------------------------------


def _encoded_form(network: Network, state) -> bytes:
    from .encoding import encode_value
    from .quotient import canonical_form

    system = System(network, state, InstructionSet.Q, ScheduleClass.FAIR)
    return encode_value(canonical_form(system))


def _legacy_form_repr(network: Network, state) -> str:
    from .quotient import canonical_form

    system = System(network, state, InstructionSet.Q, ScheduleClass.FAIR)
    return repr(canonical_form(system))


def _form_matches(recorded: str, network: Network, state) -> bool:
    """Does a recorded canonical-form key match this network+state?

    Three generations of keys are accepted (the same fallback ladder as
    the witness engine's wire format): ``"b:" + hex`` tagged byte
    encodings (current), bare even-length hex (the first byte-encoded
    release), and legacy ``repr`` strings (anything else).
    """
    if recorded.startswith("b:"):
        try:
            key = bytes.fromhex(recorded[2:])
        except ValueError:
            return False
        return key == _encoded_form(network, state)
    if len(recorded) % 2 == 0 and recorded:
        try:
            key = bytes.fromhex(recorded)
        except ValueError:
            key = None
        if key is not None:
            return key == _encoded_form(network, state)
    return recorded == _legacy_form_repr(network, state)


def separation_witness_to_json(
    witness: SeparationWitness,
    network: Optional[Network] = None,
    state: Optional[Mapping[NodeId, State]] = None,
) -> Dict[str, object]:
    """Serialize a witness for the content store.

    With ``network`` given, the record carries a ``"b:"``-tagged
    canonical-form key so a later reader can check the record still
    describes the same system up to isomorphism.
    """
    doc: Dict[str, object] = {
        "weaker": witness.weaker,
        "stronger": witness.stronger,
        "description": witness.report.description,
        "decisions": {
            model: witness.report.decisions[model].possible
            for model in POWER_ORDER
        },
    }
    if network is not None:
        doc["form"] = "b:" + _encoded_form(network, state).hex()
    return doc


def separation_witness_from_json(
    doc: Mapping[str, object],
    network: Optional[Network] = None,
    state: Optional[Mapping[NodeId, State]] = None,
) -> SeparationWitness:
    """Rebuild a witness record; re-verify it when the system is given.

    Without a system, the recorded decisions are trusted (marked with
    reason ``"recorded"``).  With one, selection is re-decided under
    every model and the record's decisions *and* canonical-form key --
    current, bare-hex, or legacy ``repr`` -- must match, else
    :class:`repro.exceptions.WitnessRecordError`.
    """
    try:
        weaker = str(doc["weaker"])
        stronger = str(doc["stronger"])
        recorded = {m: bool(doc["decisions"][m]) for m in POWER_ORDER}  # type: ignore[index]
    except (KeyError, TypeError) as exc:
        raise WitnessRecordError(
            f"malformed separation witness record: missing {exc}"
        ) from None
    description = str(doc.get("description", ""))

    if network is None:
        decisions = {
            model: SelectionDecision(
                possible=recorded[model],
                reason="recorded",
                theorem="",
            )
            for model in POWER_ORDER
        }
        return SeparationWitness(
            weaker, stronger, ModelReport(description, decisions)
        )

    form_key = doc.get("form")
    if form_key is not None and not _form_matches(str(form_key), network, state):
        raise WitnessRecordError(
            "separation witness record does not describe this system: "
            "canonical-form key mismatch"
        )
    report = selection_across_models(network, state, description)
    rederived = {m: report.decisions[m].possible for m in POWER_ORDER}
    if rederived != recorded:
        diffs = sorted(m for m in POWER_ORDER if rederived[m] != recorded[m])
        raise WitnessRecordError(
            f"separation witness record disagrees with re-verification "
            f"on models {diffs}"
        )
    return SeparationWitness(weaker, stronger, report)
