"""The model-power hierarchy (paper, Sections 6 and 9).

The paper's conclusion orders the models by the selection problems they
can solve:

    L  is strictly more powerful than  Q,
    Q  is strictly more powerful than  bounded-fair S,
    bounded-fair S  is strictly more powerful than  fair S.

The *qualitative* content is in how the similarity rules differ:

* L vs Q -- processors that give the same name to the same variable can
  tell themselves apart (a lock race has exactly one winner);
* Q vs bounded-fair S -- processors can eventually learn the number of
  neighbors of each variable (a ``peek`` returns a sub-value multiset,
  whereas a ``read`` hides multiplicity);
* bounded-fair S vs fair S -- with a bound, silence is informative; under
  plain fairness a processor can never rule out that part of the system
  has not executed yet (mimicry).

This module evaluates one network+state under every model and reports the
selection decision per model, which is how the benchmarks regenerate the
paper's hierarchy table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from .names import NodeId, State
from .network import Network
from .selection import SelectionDecision, decide_selection
from .system import InstructionSet, ScheduleClass, System

#: Model axis used throughout benchmarks: (label, instruction set, schedule).
MODEL_AXIS: Tuple[Tuple[str, InstructionSet, ScheduleClass], ...] = (
    ("fair-S", InstructionSet.S, ScheduleClass.FAIR),
    ("bounded-fair-S", InstructionSet.S, ScheduleClass.BOUNDED_FAIR),
    ("Q", InstructionSet.Q, ScheduleClass.FAIR),
    ("L", InstructionSet.L, ScheduleClass.FAIR),
    ("L2", InstructionSet.L2, ScheduleClass.FAIR),
)

#: The paper's claimed strict order, weakest first (L2 at least as strong as L).
POWER_ORDER: Tuple[str, ...] = ("fair-S", "bounded-fair-S", "Q", "L", "L2")


@dataclass(frozen=True)
class ModelReport:
    """Selection decisions for one network+state across all models."""

    description: str
    decisions: Mapping[str, SelectionDecision]

    def solvable_models(self) -> Tuple[str, ...]:
        return tuple(m for m in POWER_ORDER if self.decisions[m].possible)

    def respects_power_order(self) -> bool:
        """Monotonicity: if a weaker model solves selection, so must every
        stronger one.  (The hierarchy claims exactly this, plus strictness
        witnessed by *some* system per adjacent pair.)"""
        solved_weaker = False
        for model in POWER_ORDER:
            possible = self.decisions[model].possible
            if solved_weaker and not possible:
                return False
            solved_weaker = solved_weaker or possible
        return True


def selection_across_models(
    network: Network,
    state: Optional[Mapping[NodeId, State]] = None,
    description: str = "",
) -> ModelReport:
    """Decide selection for the same network+state under every model."""
    decisions: Dict[str, SelectionDecision] = {}
    for label, iset, sched in MODEL_AXIS:
        system = System(network, state, iset, sched)
        decisions[label] = decide_selection(system)
    return ModelReport(description or repr(network), decisions)


@dataclass(frozen=True)
class SeparationWitness:
    """A system separating two adjacent models in the hierarchy.

    ``weaker`` cannot solve selection on this system; ``stronger`` can.
    """

    weaker: str
    stronger: str
    report: ModelReport

    @property
    def valid(self) -> bool:
        return (
            not self.report.decisions[self.weaker].possible
            and self.report.decisions[self.stronger].possible
        )


def verify_separation(
    weaker: str,
    stronger: str,
    network: Network,
    state: Optional[Mapping[NodeId, State]] = None,
    description: str = "",
) -> SeparationWitness:
    """Package and check a claimed separation witness."""
    report = selection_across_models(network, state, description)
    return SeparationWitness(weaker, stronger, report)
