"""Families of systems and the ELITE construction (paper, Section 5).

A *family* is a set of systems sharing the instruction set, schedule
types, and NAMES; members differ in topology and initial states.  A
*homogeneous* family fixes the topology too, so members differ only in
initial states.  One program runs on every member (processors cannot tell
which member they inhabit), so a *selection algorithm for a family* must
select exactly one processor in whichever member it finds itself.

The similarity labeling of a family is the similarity labeling of the
disjoint **union** of its members; restricting it to a member gives that
member's *version* labeling, with labels canonically comparable across
members.  Theorem 7: a family in Q has a selection algorithm iff there is
a label set ELITE such that each member has exactly one processor labeled
in ELITE.

This module also enumerates the **relabel family** ``H`` of an L system:
the homogeneous family of all initial states reachable by executing the
``relabel`` locking protocol (each variable hands out lock-order counts
0..deg-1 to its edges), which is how Theorem 9 reduces selection in L to
family selection in Q.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations, product
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from ..exceptions import FamilyError, SelectionError
from .labeling import Labeling
from .names import NodeId
from .refinement import compute_similarity_labeling
from .system import InstructionSet, System, union_of_systems


class Family:
    """An immutable family of systems over common NAMES and model."""

    def __init__(self, systems: Sequence[System]) -> None:
        systems = tuple(systems)
        if not systems:
            raise FamilyError("a family needs at least one member")
        first = systems[0]
        for s in systems[1:]:
            if set(s.names) != set(first.names):
                raise FamilyError("family members must share NAMES")
            # Compare by equality, not identity: parametric generators
            # build each member independently, so equal-but-distinct
            # instruction-set/schedule objects must be accepted.
            if s.instruction_set != first.instruction_set:
                raise FamilyError("family members must share the instruction set")
            if s.schedule_class != first.schedule_class:
                raise FamilyError("family members must share the schedule class")
        self._systems = systems

    @property
    def members(self) -> Tuple[System, ...]:
        return self._systems

    def __len__(self) -> int:
        return len(self._systems)

    @property
    def is_homogeneous(self) -> bool:
        """Same topology everywhere (members differ only in state_0)."""
        first_net = self._systems[0].network
        return all(s.network == first_net for s in self._systems[1:])

    # ------------------------------------------------------------------

    def union_system(self) -> System:
        """The (unconnected) union system whose labeling defines the
        family's similarity labeling."""
        return union_of_systems(self._systems)

    def similarity_labeling(self, include_state: bool = True) -> Labeling:
        """Similarity labeling of the union system.

        Nodes of member ``i`` appear as ``(i, node)``.
        """
        union = self.union_system()
        return compute_similarity_labeling(union, include_state=include_state).labeling

    def member_labelings(self, include_state: bool = True) -> Tuple[Labeling, ...]:
        """Each member's *version*: the union labeling restricted to the
        member and renamed back to the member's own node ids.

        Labels are shared across versions (they come from one union
        labeling), so ``version[p] in elite`` is meaningful family-wide.
        """
        union_labeling = self.similarity_labeling(include_state)
        versions = []
        for idx, member in enumerate(self._systems):
            restricted = union_labeling.restrict(
                [(idx, node) for node in member.nodes]
            )
            versions.append(restricted.relabel_nodes(lambda tagged: tagged[1]))
        return tuple(versions)

    # ------------------------------------------------------------------
    # Theorem 7
    # ------------------------------------------------------------------

    def elite(self) -> Optional[FrozenSet[Hashable]]:
        """A set ELITE of processor labels with exactly one occurrence per
        member, or None if none exists (Theorem 7's criterion).

        Solved exactly (exact cover) rather than greedily, so that the
        decision is complete for arbitrary families -- the greedy loop of
        Theorem 9 is additionally available as
        :func:`elite_by_theorem9_greedy` and is guaranteed to work under
        that theorem's hypothesis.
        """
        # Imported lazily: repro.algorithms packages the runnable programs,
        # which themselves import this module.
        from ..algorithms.exact_cover import exact_one_per_group

        versions = self.member_labelings()
        groups: Dict[int, Dict[Hashable, int]] = {}
        for idx, (member, version) in enumerate(zip(self._systems, versions)):
            counts: Dict[Hashable, int] = {}
            for p in member.processors:
                counts[version[p]] = counts.get(version[p], 0) + 1
            groups[idx] = counts
        return exact_one_per_group(groups)

    def has_selection_algorithm(self) -> bool:
        """Theorem 7: decide family selection for instruction set Q."""
        return self.elite() is not None


def elite_by_theorem9_greedy(
    versions: Sequence[Labeling],
    processors: Sequence[NodeId],
) -> FrozenSet[Hashable]:
    """The greedy ELITE construction from the proof of Theorem 9.

    ``versions`` are (deduplicated) similarity labelings of the members of
    a homogeneous family, over the common processor set ``processors``.
    Repeatedly pick a version none of whose processor labels is in ELITE,
    pick one of its uniquely labeled processors, and add that label.

    Raises:
        SelectionError: if some pending version has no uniquely labeled
            processor -- then (Theorem 3 via Theorem 2) the family has no
            selection algorithm.
    """
    elite: set = set()
    unique_versions: List[Labeling] = []
    seen_partitions: List[Labeling] = []
    for v in versions:
        if not any(v.same_partition(w) and all(v[p] == w[p] for p in processors)
                   for w in seen_partitions):
            seen_partitions.append(v)
            unique_versions.append(v)

    while True:
        pending = [
            v
            for v in unique_versions
            if all(v[p] not in elite for p in processors)
        ]
        if not pending:
            break
        psi = pending[0]
        uniquely = [
            p
            for p in processors
            if sum(1 for q in processors if psi[q] == psi[p]) == 1
        ]
        if not uniquely:
            raise SelectionError(
                "a version labels every processor non-uniquely; "
                "no selection algorithm exists for this family"
            )
        p = sorted(uniquely, key=repr)[0]
        elite.add(psi[p])
    return frozenset(elite)


def single_mark_family(
    network,
    processors: Optional[Sequence[NodeId]] = None,
    mark_state: Hashable = 1,
    instruction_set: InstructionSet = InstructionSet.Q,
    schedule_class=None,
) -> Family:
    """The homogeneous family of single-processor markings of a network.

    One member per processor in ``processors`` (default: all of them),
    with that processor's initial state set to ``mark_state`` and every
    other node blank.  All members share the *same* ``network`` object, so
    batch analyses (:func:`repro.perf.batch_similarity`) reuse one
    incidence cache across the whole family; this is also the standard
    workload of the refinement microbenchmarks ("the n-ring family").
    """
    from .system import ScheduleClass

    if schedule_class is None:
        schedule_class = ScheduleClass.FAIR
    chosen = tuple(processors) if processors is not None else network.processors
    if not chosen:
        raise FamilyError("a single-mark family needs at least one processor")
    if len(set(chosen)) != len(chosen):
        dupes = sorted(
            {repr(p) for p in chosen if sum(1 for q in chosen if q == p) > 1}
        )
        raise FamilyError(
            f"single-mark processors must be distinct; duplicated: {dupes}"
        )
    unknown = [p for p in chosen if p not in set(network.processors)]
    if unknown:
        raise FamilyError(f"not processors of this network: {unknown!r}")
    members = [
        System(network, {p: mark_state}, instruction_set, schedule_class)
        for p in chosen
    ]
    return Family(members)


# ----------------------------------------------------------------------
# The relabel family H of an L system
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RelabeledState:
    """Processor state after executing ``relabel`` (Section 5).

    The processor keeps its original initial state plus, for each name, the
    count it read when it locked that name's variable (its position in the
    variable's lock order).
    """

    original: Hashable
    counts: Tuple[Tuple[Hashable, int], ...]  # sorted (name, count) pairs

    def count_for(self, name: Hashable) -> int:
        for n, c in self.counts:
            if n == name:
                return c
        raise KeyError(name)


def relabel_family(system: System) -> Family:
    """Enumerate ``H``: every system that could be produced by executing
    ``relabel`` on ``system``.

    ``relabel`` makes each processor lock each of its named variables,
    read the lock count, increment it, and unlock.  Per variable, the
    edges incident to it receive the distinct counts ``0..deg-1`` in lock
    order; because a processor unlocks each variable before touching the
    next, *every* combination of per-variable edge orders is reachable
    under some fair schedule.  ``H`` is therefore the product of the
    per-variable edge permutations, deduplicated by resulting state.

    Variables end in a common state (their final count ``deg``), so
    members of ``H`` differ only in processor states: a homogeneous
    family, as required by Theorem 9.
    """
    if not system.instruction_set.has_locks:
        raise FamilyError("relabel requires a locking instruction set (L or L2)")
    net = system.network
    if not net.processors:
        raise FamilyError(
            "the relabel family of a processor-free network is empty; "
            "relabel needs at least one processor"
        )
    per_variable_orders: List[List[Tuple[Tuple[NodeId, Hashable], ...]]] = []
    variables = list(net.variables)
    for v in variables:
        edges = net.neighbors_of_variable(v)
        per_variable_orders.append([tuple(p) for p in permutations(edges)])

    members: List[System] = []
    seen_states: set = set()
    for combo in product(*per_variable_orders):
        # combo[i] is the lock order of edges at variables[i]
        counts: Dict[Tuple[NodeId, Hashable], int] = {}
        for v_idx, order in enumerate(combo):
            for position, (proc, name) in enumerate(order):
                counts[(proc, name)] = position
        member = _member_from_counts(system, counts)
        key = tuple(sorted(member.initial_state.items(), key=lambda kv: repr(kv[0])))
        if key in seen_states:
            continue
        seen_states.add(key)
        members.append(member)
    return Family(members)


# ----------------------------------------------------------------------
# Symbolic topology families (parametric verification substrate)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TopologyFamily:
    """A symbolic topology family: one object, any size on demand.

    Where :class:`Family` is a *finite tuple* of concrete systems, a
    ``TopologyFamily`` is the *function* ``n -> system`` behind
    statements like "every unmarked ring" or "DP-n for all n": the
    parametric layer (:mod:`repro.analysis.parametric`) instantiates it
    at increasing sizes until the orbit/class structure stabilizes and
    then reasons about all larger members at once.

    The description is purely declarative (a frozen record of topology
    kind, model, marking, and admissible sizes) so family identity can
    be fingerprinted via :func:`repro.core.encoding.encode_value` and
    carried verbatim in JSON reports.

    Attributes:
        name: registry key (``"ring"``, ``"dp"``, ``"marked-ring"``...).
        description: one-line human description.
        topology: scenario topology kind: ``"ring"``, ``"star"`` or
            ``"dining"``.
        model: instruction set the members run.
        min_size: smallest admissible ``n``.
        step: admissible sizes are ``min_size, min_size+step, ...``
            (DP' needs even tables, so its step is 2).
        period: number of consecutive admissible sizes that may differ
            structurally before the pattern repeats -- a marked ring
            alternates with the parity of ``n`` (even rings have a
            singleton antipode class), so its period is 2; fully
            symmetric families have period 1.  Cutoff detection
            compares size ``n`` with ``n + period * step``.
        alternating: dining only -- alternate fork orientation (DP').
        marked: mark the first processor (initial state 1, rest blank).
        program: scenario program the members run under exploration.
    """

    name: str
    description: str
    topology: str
    model: InstructionSet = InstructionSet.Q
    min_size: int = 2
    step: int = 1
    period: int = 1
    alternating: bool = False
    marked: bool = False
    program: str = "random"

    def admissible(self, n: int) -> bool:
        """Whether ``n`` is a size this family defines a member for."""
        return n >= self.min_size and (n - self.min_size) % self.step == 0

    def sizes(self, count: int, start: Optional[int] = None) -> Tuple[int, ...]:
        """The first ``count`` admissible sizes from ``start`` upward."""
        base = self.min_size if start is None else start
        if not self.admissible(base):
            raise FamilyError(
                f"family {self.name!r} has no member of size {base}; "
                f"sizes are {self.min_size}, {self.min_size + self.step}, ..."
            )
        return tuple(base + i * self.step for i in range(count))

    def next_size(self, n: int) -> int:
        """The admissible size after ``n``."""
        return n + self.step

    def network(self, n: int):
        """The size-``n`` network (raises ``FamilyError`` off-family)."""
        from ..exceptions import NetworkError
        from ..topologies import dining_network, ring, star

        if not self.admissible(n):
            raise FamilyError(
                f"family {self.name!r} has no member of size {n}; "
                f"sizes are {self.min_size}, {self.min_size + self.step}, ..."
            )
        try:
            if self.topology == "ring":
                return ring(n)
            if self.topology == "star":
                return star(n)
            if self.topology == "dining":
                return dining_network(n, alternating=self.alternating)
        except NetworkError as exc:
            raise FamilyError(
                f"family {self.name!r} cannot build size {n}: {exc}"
            ) from exc
        raise FamilyError(f"unknown family topology {self.topology!r}")

    def instantiate(self, n: int) -> System:
        """The size-``n`` member system."""
        from .system import ScheduleClass

        net = self.network(n)
        state = {net.processors[0]: 1} if self.marked else None
        return System(net, state, self.model, ScheduleClass.FAIR)

    def family(self, count: int, start: Optional[int] = None) -> Family:
        """A concrete :class:`Family` of the first ``count`` members."""
        return Family([self.instantiate(n) for n in self.sizes(count, start)])

    def scenario(self, n: int) -> Dict[str, object]:
        """The :mod:`repro.obs.scenarios` spec of the size-``n`` member."""
        net = self.network(n)  # validates n
        spec: Dict[str, object] = {
            "topology": self.topology,
            "size": n,
            "program": self.program,
        }
        if self.topology == "dining":
            if self.alternating:
                spec["alternating"] = True
        else:
            spec["model"] = self.model.value
        if self.marked:
            spec["marks"] = [str(net.processors[0])]
        return spec


#: The registry of symbolic families the parametric layer verifies.
PARAMETRIC_FAMILIES: Dict[str, TopologyFamily] = {
    f.name: f
    for f in (
        TopologyFamily(
            name="ring",
            description="unmarked n-ring, model Q (Theorem 4 substrate)",
            topology="ring",
        ),
        TopologyFamily(
            name="marked-ring",
            description="n-ring with one marked processor (period 2: even "
            "rings have a singleton antipode class)",
            topology="ring",
            period=2,
            marked=True,
            min_size=3,
        ),
        TopologyFamily(
            name="star",
            description="star with n leaves, model Q (all leaves similar)",
            topology="star",
        ),
        TopologyFamily(
            name="marked-star",
            description="star with n leaves, one leaf marked",
            topology="star",
            marked=True,
        ),
        TopologyFamily(
            name="dp",
            description="uniform dining ring DP-n, left-first philosophers",
            topology="dining",
            model=InstructionSet.L,
            program="left-first",
        ),
        TopologyFamily(
            name="dp-prime",
            description="alternating dining ring DP'-n (even n), "
            "left-first philosophers",
            topology="dining",
            model=InstructionSet.L,
            program="left-first",
            alternating=True,
            step=2,
        ),
    )
}


def parametric_family(name: str) -> TopologyFamily:
    """Look up a symbolic family by registry name."""
    try:
        return PARAMETRIC_FAMILIES[name]
    except KeyError:
        raise FamilyError(
            f"unknown parametric family {name!r}; pick from "
            f"{sorted(PARAMETRIC_FAMILIES)}"
        ) from None


def _member_from_counts(
    system: System, counts: Dict[Tuple[NodeId, Hashable], int]
) -> System:
    """Build the post-relabel system for one assignment of edge counts."""
    net = system.network
    new_state: Dict[NodeId, Hashable] = {}
    for p in net.processors:
        pairs = tuple(
            sorted(((name, counts[(p, name)]) for name in net.names), key=repr)
        )
        new_state[p] = RelabeledState(system.state0(p), pairs)
    for v in net.variables:
        new_state[v] = ("relabeled", system.state0(v), net.degree(v))
    return System(net, new_state, InstructionSet.Q, system.schedule_class)


def relabel_family_extended(system: System) -> Family:
    """The relabel family for *extended locking* (L2, Section 6).

    With an indivisible multi-variable lock, ``relabel`` locks all of a
    processor's named variables at once, so the per-variable lock orders
    are all restrictions of one total order of processors.  (A processor
    giving one variable several names reads consecutive counts, in NAMES
    order.)  The family is therefore indexed by total orders of the
    processor set -- much smaller than the free product of L's version.
    """
    if system.instruction_set != InstructionSet.L2:
        raise FamilyError("extended relabel applies to instruction set L2")
    net = system.network
    if not net.processors:
        raise FamilyError(
            "the extended relabel family of a processor-free network is "
            "empty; relabel needs at least one processor"
        )
    members: List[System] = []
    seen_states: set = set()
    for order in permutations(net.processors):
        next_count: Dict[NodeId, int] = {v: 0 for v in net.variables}
        counts: Dict[Tuple[NodeId, Hashable], int] = {}
        for proc in order:
            for name in net.names:  # NAMES order within the atomic lock
                v = net.n_nbr(proc, name)
                counts[(proc, name)] = next_count[v]
                next_count[v] += 1
        member = _member_from_counts(system, counts)
        key = tuple(sorted(member.initial_state.items(), key=lambda kv: repr(kv[0])))
        if key in seen_states:
            continue
        seen_states.add(key)
        members.append(member)
    return Family(members)
