"""Labelings of system nodes (paper, Section 3).

A *labeling* assigns a label to every node of a system.  The paper works
with three kinds:

* a **supersimilarity labeling**: nodes with the same label are similar;
* a **subsimilarity labeling**: similar nodes have the same label;
* a **similarity labeling**: both at once -- unique up to isomorphism.

:class:`Labeling` is a thin immutable wrapper around a ``node -> label``
mapping with the partition algebra needed by the refinement algorithms
(refines / coarsens / blocks / restriction / canonical renaming).
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Tuple

from ..exceptions import LabelingError
from .names import CanonicalLabel, NodeId

Label = Hashable


class Labeling:
    """An immutable assignment of labels to nodes."""

    def __init__(self, assignment: Mapping[NodeId, Label]) -> None:
        if not assignment:
            raise LabelingError("a labeling must cover at least one node")
        self._assignment: Dict[NodeId, Label] = dict(assignment)

    # ------------------------------------------------------------------

    def __getitem__(self, node: NodeId) -> Label:
        try:
            return self._assignment[node]
        except KeyError:
            raise LabelingError(f"node {node!r} is not labeled") from None

    def __contains__(self, node: NodeId) -> bool:
        return node in self._assignment

    def __iter__(self):
        return iter(self._assignment)

    def __len__(self) -> int:
        return len(self._assignment)

    def items(self):
        return self._assignment.items()

    @cached_property
    def nodes(self) -> Tuple[NodeId, ...]:
        return tuple(sorted(self._assignment, key=repr))

    @cached_property
    def labels(self) -> FrozenSet[Label]:
        """All labels in use."""
        return frozenset(self._assignment.values())

    # ------------------------------------------------------------------
    # partition view
    # ------------------------------------------------------------------

    @cached_property
    def blocks(self) -> Tuple[FrozenSet[NodeId], ...]:
        """The partition induced by the labeling, deterministically ordered."""
        by_label: Dict[Label, set] = {}
        for node, label in self._assignment.items():
            by_label.setdefault(label, set()).add(node)
        return tuple(
            frozenset(block)
            for block in sorted(
                by_label.values(), key=lambda b: min(repr(n) for n in b)
            )
        )

    def block_of(self, node: NodeId) -> FrozenSet[NodeId]:
        """All nodes sharing ``node``'s label."""
        label = self[node]
        return frozenset(n for n, l in self._assignment.items() if l == label)

    def class_size(self, label: Label) -> int:
        return sum(1 for l in self._assignment.values() if l == label)

    @cached_property
    def uniquely_labeled_nodes(self) -> Tuple[NodeId, ...]:
        """Nodes whose label is shared with no other node."""
        counts: Dict[Label, int] = {}
        for label in self._assignment.values():
            counts[label] = counts.get(label, 0) + 1
        return tuple(
            node for node in self.nodes if counts[self._assignment[node]] == 1
        )

    def every_node_is_paired(self, nodes: Optional[Iterable[NodeId]] = None) -> bool:
        """True if every node (of ``nodes``, default all) shares its label.

        With ``nodes`` = the processors of a system, this is exactly the
        hypothesis of Theorem 3: a supersimilarity labeling in which every
        processor has the same label as some other processor rules out a
        selection algorithm.
        """
        pool = list(nodes) if nodes is not None else list(self.nodes)
        counts: Dict[Label, int] = {}
        for node in pool:
            label = self[node]
            counts[label] = counts.get(label, 0) + 1
        return all(counts[self[node]] >= 2 for node in pool)

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------

    def refines(self, other: "Labeling") -> bool:
        """True if every block of ``self`` lies inside a block of ``other``.

        ``theta.refines(psi)`` means ``psi`` is a coarsening: whenever
        ``self`` distinguishes two nodes, so might ``other``, but never
        the reverse.  A labeling is a *subsimilarity* labeling iff the
        similarity labeling refines it, and a *supersimilarity* labeling
        iff it refines the similarity labeling.
        """
        if set(self._assignment) != set(other._assignment):
            raise LabelingError("labelings cover different node sets")
        rep: Dict[Label, Label] = {}
        for node, label in self._assignment.items():
            other_label = other[node]
            if label in rep:
                if rep[label] != other_label:
                    return False
            else:
                rep[label] = other_label
        return True

    def same_partition(self, other: "Labeling") -> bool:
        """True if both labelings induce the same partition of nodes."""
        return self.refines(other) and other.refines(self)

    def meet(self, other: "Labeling") -> "Labeling":
        """The coarsest common refinement (pairwise label product)."""
        if set(self._assignment) != set(other._assignment):
            raise LabelingError("labelings cover different node sets")
        return Labeling(
            {n: (self._assignment[n], other[n]) for n in self._assignment}
        )

    def restrict(self, nodes: Iterable[NodeId]) -> "Labeling":
        """The labeling restricted to a subset of nodes.

        Used to read a family member's labeling off the union system's
        labeling (Section 5).
        """
        nodes = list(nodes)
        missing = [n for n in nodes if n not in self._assignment]
        if missing:
            raise LabelingError(f"nodes not labeled: {missing!r}")
        return Labeling({n: self._assignment[n] for n in nodes})

    def relabel_nodes(self, rename) -> "Labeling":
        """A copy with node ids passed through callable ``rename``."""
        return Labeling({rename(n): l for n, l in self._assignment.items()})

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def trivial_subsimilarity(nodes: Iterable[NodeId], label: Label = 0) -> "Labeling":
        """All nodes share one label -- the paper's trivial subsimilarity
        labeling, the starting point of Algorithm 1."""
        return Labeling({n: label for n in nodes})

    @staticmethod
    def trivial_supersimilarity(nodes: Iterable[NodeId]) -> "Labeling":
        """Every node uniquely labeled -- trivially supersimilar."""
        return Labeling({n: ("unique", n) for n in nodes})

    @staticmethod
    def from_blocks(blocks: Iterable[Iterable[NodeId]]) -> "Labeling":
        assignment: Dict[NodeId, Label] = {}
        for i, block in enumerate(blocks):
            for node in block:
                if node in assignment:
                    raise LabelingError(f"node {node!r} appears in two blocks")
                assignment[node] = i
        return Labeling(assignment)

    def canonical(self, kind_of) -> "Labeling":
        """Rename labels to :class:`CanonicalLabel` values.

        ``kind_of(node)`` must return ``"P"`` or ``"V"``.  Classes are
        numbered in order of their smallest member's ``repr`` so that the
        renaming is deterministic.  Note: canonical *identity across
        systems* is provided by the refinement algorithms themselves (they
        derive labels from refinement history); this method only provides
        deterministic names within one labeling.
        """
        order: Dict[Label, NodeId] = {}
        for node in self.nodes:
            label = self._assignment[node]
            if label not in order or repr(node) < repr(order[label]):
                order[label] = node
        numbering: Dict[str, int] = {"P": 0, "V": 0}
        renamed: Dict[Label, CanonicalLabel] = {}
        for label, _witness in sorted(order.items(), key=lambda kv: repr(kv[1])):
            witness_kind = kind_of(_witness)
            renamed[label] = CanonicalLabel(witness_kind, numbering[witness_kind])
            numbering[witness_kind] += 1
        return Labeling({n: renamed[l] for n, l in self._assignment.items()})

    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Labeling):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._assignment.items(), key=lambda kv: repr(kv))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Labeling({len(self)} nodes, {len(self.labels)} labels)"


def join(a: "Labeling", b: "Labeling") -> "Labeling":
    """The finest common coarsening of two labelings.

    Blocks are merged transitively whenever they share a node's label in
    either labeling (union-find over the disjoint label spaces).  Dual to
    :meth:`Labeling.meet`.  Theory hook: labelings satisfying Theorem 4's
    environment condition are closed under join, which is exactly why a
    *coarsest* one (the similarity labeling) exists; the property tests
    check that closure on random systems.
    """
    if set(a.nodes) != set(b.nodes):
        raise LabelingError("labelings cover different node sets")
    parent: Dict[Hashable, Hashable] = {}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x, y):
        rx, ry = find(x), find(y)
        if rx != ry:
            parent[rx] = ry

    for node in a.nodes:
        ka, kb = ("A", a[node]), ("B", b[node])
        parent.setdefault(ka, ka)
        parent.setdefault(kb, kb)
        union(ka, kb)
    return Labeling({node: find(("A", a[node])) for node in a.nodes})
