"""Graph-theoretic symmetry and its relation to similarity (Section 7).

The paper contrasts the *graph-theoretic* definition of symmetry (orbits
of the automorphism group) with *similarity* (the semantic relation).
Theorem 10: in instruction set Q, symmetric nodes are similar -- Q cannot
break symmetry.  Theorem 11: in a distributed, symmetric system in L, an
equivalence class of j symmetric processors with j *prime* consists of
mutually similar processors -- the key step in proving DP (no symmetric
distributed deterministic solution to the five Dining Philosophers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from .automorphism import (
    automorphism_orbits,
    find_transitive_generator,
    orbit_labeling,
    permutation_order,
)
from .environment import satisfies_locking_condition
from .labeling import Labeling
from .names import NodeId
from .similarity import similarity_labeling
from .system import System


def is_prime(n: int) -> bool:
    """Primality by trial division (orbit sizes are tiny)."""
    if n < 2:
        return False
    d = 2
    while d * d <= n:
        if n % d == 0:
            return False
        d += 1
    return True


def symmetry_classes(system: System, ignore_state: bool = False) -> Tuple[FrozenSet[NodeId], ...]:
    """Equivalence classes of nodes under graph-theoretic symmetry."""
    return automorphism_orbits(system, ignore_state)


def processor_symmetry_classes(
    system: System, ignore_state: bool = False
) -> Tuple[FrozenSet[NodeId], ...]:
    proc_set = set(system.processors)
    return tuple(
        frozenset(c & proc_set)
        for c in symmetry_classes(system, ignore_state)
        if c & proc_set
    )


def is_symmetric_system(system: System, ignore_state: bool = False) -> bool:
    """Symmetric in the sense of [LR80]/Section 7: for any pair of
    processors there is an automorphism mapping one to the other."""
    classes = processor_symmetry_classes(system, ignore_state)
    return len(classes) == 1


def symmetric_implies_similar(system: System) -> bool:
    """Theorem 10 check for a concrete system in Q.

    Returns True iff the orbit partition refines the similarity labeling,
    i.e. every pair of symmetric nodes is similar.  Theorem 10 asserts
    this always holds for systems in Q; the function exists so tests and
    benchmarks can *verify* it on arbitrary systems.
    """
    orbits = orbit_labeling(system)
    theta = similarity_labeling(system)
    return orbits.refines(theta)


@dataclass(frozen=True)
class PrimeSymmetryReport:
    """Outcome of applying Theorem 11 to one symmetric processor class.

    Attributes:
        orbit: the class C of symmetric processors.
        size: j = |C|.
        prime: whether j is prime.
        applies: True when the theorem's hypotheses hold (distributed
            system, symmetric class, prime size) -- in that case all
            processors of C are similar even in L.
        generator_order: the order of the transitive generator sigma found
            (equals j when ``applies``); None when not searched/found.
        processors_similar_in_q: whether C is contained in one similarity
            class of the Q labeling (must be True when ``applies``).
    """

    orbit: FrozenSet[NodeId]
    size: int
    prime: bool
    applies: bool
    generator_order: Optional[int]
    processors_similar_in_q: bool


def analyze_prime_symmetry(system: System, ignore_state: bool = False) -> Tuple[PrimeSymmetryReport, ...]:
    """Apply Theorem 11's analysis to every symmetric processor class.

    For each class C of symmetric processors: if the system is distributed
    and |C| is prime, find the transitive generator sigma of order |C|
    whose cycle classes form the supersimilarity labeling used in the
    proof, and confirm that C lies inside one Q-similarity class.
    """
    theta = similarity_labeling(system)
    distributed = system.network.is_distributed
    reports = []
    for orbit in processor_symmetry_classes(system, ignore_state):
        j = len(orbit)
        prime = is_prime(j)
        members = sorted(orbit, key=repr)
        similar_in_q = len({theta[p] for p in members}) == 1
        generator_order: Optional[int] = None
        applies = False
        if distributed and prime and j > 1:
            sigma = find_transitive_generator(system, orbit, ignore_state)
            if sigma is not None:
                generator_order = permutation_order(sigma)
                applies = True
        reports.append(
            PrimeSymmetryReport(
                orbit=frozenset(orbit),
                size=j,
                prime=prime,
                applies=applies,
                generator_order=generator_order,
                processors_similar_in_q=similar_in_q,
            )
        )
    return tuple(reports)


def cycle_labeling(perm: Dict[NodeId, NodeId]) -> Labeling:
    """The partition of nodes into cycles of a permutation.

    In Theorem 11's proof the cycles of the generator sigma define a
    supersimilarity labeling; exposing it lets tests check the proof's
    intermediate object directly (cycle sizes divide ord(sigma), and for
    prime order each class has size 1 or j).
    """
    seen: set = set()
    blocks = []
    for start in sorted(perm, key=repr):
        if start in seen:
            continue
        cycle = [start]
        seen.add(start)
        node = perm[start]
        while node != start:
            cycle.append(node)
            seen.add(node)
            node = perm[node]
        blocks.append(cycle)
    return Labeling.from_blocks(blocks)


def can_break_symmetry(system: System) -> bool:
    """Section 8: a system *breaks symmetry* when graph-symmetric nodes
    are not all similar.

    Systems in Q can never break symmetry (Theorem 10).  Systems in L can:
    two same-name neighbors of one variable may be symmetric yet
    dissimilar, because locking distinguishes them.  For the L test we use
    Theorem 8's criterion: symmetric processors that violate the locking
    condition are separated by a lock race.
    """
    from .system import InstructionSet

    orbits = orbit_labeling(system)
    if system.instruction_set is InstructionSet.Q:
        return False  # Theorem 10
    if system.instruction_set is InstructionSet.S:
        return False  # S is weaker than Q; it cannot break symmetry either
    # L / L2: symmetry is broken iff some orbit violates the locking
    # condition (two symmetric processors sharing a variable name), since
    # then they are symmetric but provably dissimilar.
    return not satisfies_locking_condition(system.network, orbits)


@dataclass(frozen=True)
class SymmetryGapReport:
    """How graph-theoretic symmetry and similarity differ on one system.

    Theorem 10 gives one inclusion (symmetric => similar in Q); the
    converse fails, and that failure is the paper's motivation: "none
    [of the graph-theoretic definitions] completely captures the
    fundamental notion" of behavioral indistinguishability.

    Attributes:
        orbit_count: node classes under graph symmetry.
        similarity_count: node classes under Q-similarity.
        merged_but_not_symmetric: node pairs that are similar yet lie in
            different orbits -- behaviorally indistinguishable nodes the
            syntactic definition wrongly separates.
    """

    orbit_count: int
    similarity_count: int
    merged_but_not_symmetric: Tuple[Tuple[NodeId, NodeId], ...]

    @property
    def gap(self) -> int:
        return self.orbit_count - self.similarity_count

    @property
    def converse_of_theorem10_fails(self) -> bool:
        return bool(self.merged_but_not_symmetric)


def symmetry_gap(system: System, ignore_state: bool = False) -> SymmetryGapReport:
    """Compare orbits with the similarity labeling (both directions).

    The canonical witness for a nonempty gap is the disjoint union of two
    anonymous rings of different sizes: no automorphism maps a 3-ring
    processor to a 6-ring processor (the components have different
    sizes), yet every processor is similar to every other -- no program
    can count its own ring in Q, so behaviorally they coincide.
    """
    from .automorphism import orbit_labeling
    from .similarity import similarity_labeling

    orbits = orbit_labeling(system, ignore_state)
    theta = similarity_labeling(system)
    merged = []
    for block in theta.blocks:
        members = sorted(block, key=repr)
        anchor = members[0]
        for other in members[1:]:
            if orbits[anchor] != orbits[other]:
                merged.append((anchor, other))
    return SymmetryGapReport(
        orbit_count=len(orbits.labels),
        similarity_count=len(theta.labels),
        merged_but_not_symmetric=tuple(merged),
    )
