"""Persistent content-addressed decision store (:mod:`repro.store`).

One shared disk directory behind every in-memory cache: selection
decisions, similarity labelings, and orbit canonical keys computed by
any process become available to every other process — CLI runs, pool
workers, the :mod:`repro.serve` front end, and CI — keyed by canonical
byte encodings so addresses are hash-seed and interpreter independent.
"""

from .content import ContentStore, StoreError, StoreStats
from .gc import GCReport, NamespaceUsage, check, collect, enforce_cap, usage

#: Store namespaces used across the codebase (one place, no typos).
NS_DECISIONS = "decisions"
NS_SIMILARITY = "similarity"
NS_ORBITS = "orbits"

__all__ = [
    "ContentStore",
    "GCReport",
    "NamespaceUsage",
    "StoreError",
    "StoreStats",
    "check",
    "collect",
    "enforce_cap",
    "usage",
    "NS_DECISIONS",
    "NS_SIMILARITY",
    "NS_ORBITS",
]
