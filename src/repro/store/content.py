"""Content-addressed on-disk store: the persistent layer behind every cache.

The analysis engines memoize aggressively in memory — selection
decisions per canonical form (:class:`~repro.analysis.witness_engine
.DecisionCache`), similarity labelings per system fingerprint
(:class:`~repro.perf.batch.SimilarityCache`), and orbit canonical keys
per exploration state — but every process starts cold.  The
:class:`ContentStore` makes those memos durable and *shared*: one
directory holds every ``(namespace, key bytes) -> JSON document``
mapping ever computed, addressable from any process (CLI runs, pool
workers, the serving layer, CI) at the cost of one small file read.

Design points:

* **Content addressing** -- an entry's path is derived from the SHA-256
  of its key bytes (``root/<namespace>/<aa>/<digest>.json``), so two
  processes that compute the same key — under any ``PYTHONHASHSEED``,
  on any host — address the same file.  Keys are expected to be
  canonical byte encodings (:func:`repro.core.encoding.encode_value`),
  which makes the addressing scheme independent of repr formatting and
  dict iteration order by construction.
* **Write-behind** -- :meth:`put` stages entries in memory;
  :meth:`flush` (called automatically every ``flush_every`` puts, by
  :meth:`close`, and by the context manager) performs the disk writes.
  Engines call ``put`` on their hot path without paying per-entry I/O.
* **Merge on flush** -- a namespace may register a merge function
  (``merge(existing_value, new_value) -> value``); flushing an entry
  whose file already exists folds the two documents together instead of
  blindly overwriting, so concurrent writers grow a shared entry (e.g.
  the decision list of one canonical-form bucket) instead of clobbering
  each other.  A lost race costs a recompute later, never correctness.
* **Atomicity** -- every write lands via temp-file + :func:`os.replace`
  in the same directory, so readers only ever observe complete files.
* **Quarantine, not crashes** -- a corrupt or truncated entry (invalid
  JSON, wrong shape, key echo mismatch) is moved aside into
  ``root/quarantine/`` and reported as a miss; one bad file never takes
  down a sweep, a server, or CI.
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Callable, Dict, Iterator, Optional, Tuple

from ..exceptions import ReproError


class StoreError(ReproError):
    """The store root is unusable (not a directory, not writable)."""


@dataclass
class StoreStats:
    """Counters of one :class:`ContentStore` handle (not cross-process)."""

    gets: int = 0
    hits: int = 0
    misses: int = 0
    puts: int = 0
    writes: int = 0
    merges: int = 0
    quarantined: int = 0
    evicted: int = 0

    @property
    def hit_rate(self) -> Optional[float]:
        return self.hits / self.gets if self.gets else None

    def to_json(self) -> dict:
        doc = dict(self.__dict__)
        rate = self.hit_rate
        doc["hit_rate"] = round(rate, 4) if rate is not None else None
        return doc


class ContentStore:
    """A content-addressed ``(namespace, key bytes) -> dict`` disk store.

    Values are JSON documents (dicts of JSON scalars/containers); keys
    are arbitrary ``bytes`` — canonically-encoded forms, fingerprints,
    state keys.  One store directory is safely shared by any number of
    concurrent readers and writers; see the module docstring for the
    guarantees.
    """

    def __init__(
        self,
        root: str,
        flush_every: int = 128,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = os.path.abspath(root)
        self.flush_every = max(1, int(flush_every))
        self.max_bytes = int(max_bytes) if max_bytes is not None else None
        if self.max_bytes is not None and self.max_bytes < 1:
            raise StoreError(f"max_bytes must be >= 1, got {max_bytes}")
        #: Optional :class:`~repro.obs.events.EventHub`; when set, the
        #: garbage collector reports evictions as ``StoreEvicted`` events.
        self.hub = None
        self.stats = StoreStats()
        self._pending: Dict[Tuple[str, str], Tuple[bytes, dict]] = {}
        self._mergers: Dict[str, Callable[[dict, dict], dict]] = {}
        try:
            os.makedirs(self.root, exist_ok=True)
        except OSError as exc:
            raise StoreError(f"cannot create store root {self.root}: {exc}") from None
        if not os.path.isdir(self.root):
            raise StoreError(f"store root {self.root} is not a directory")

    # -- addressing ----------------------------------------------------

    @staticmethod
    def address(key: bytes) -> str:
        """The content address (hex digest) of a key."""
        return sha256(key).hexdigest()

    def _path(self, namespace: str, digest: str) -> str:
        return os.path.join(self.root, namespace, digest[:2], digest + ".json")

    # -- merge registration --------------------------------------------

    def register_merge(
        self, namespace: str, merge: Callable[[dict, dict], dict]
    ) -> None:
        """Fold-together function for concurrent writes in ``namespace``."""
        self._mergers[namespace] = merge

    # -- read path -----------------------------------------------------

    def get(self, namespace: str, key: bytes) -> Optional[dict]:
        """The stored value for ``key``, or None (miss or quarantined)."""
        digest = self.address(key)
        self.stats.gets += 1
        staged = self._pending.get((namespace, digest))
        if staged is not None:
            self.stats.hits += 1
            # A copy, never the staged dict itself: handing out the
            # pending entry by reference would let caller mutation
            # silently rewrite what later flushes to disk.
            return copy.deepcopy(staged[1])
        value = self._read(namespace, digest, key)
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    def _read(self, namespace: str, digest: str, key: bytes) -> Optional[dict]:
        path = self._path(namespace, digest)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            self._quarantine(namespace, digest, path)
            return None
        # The key echo catches truncated rewrites and foreign files that
        # happen to parse: a mismatched echo is corruption, not a value.
        if (
            not isinstance(doc, dict)
            or doc.get("key") != key.hex()
            or "value" not in doc
            or not isinstance(doc["value"], dict)
        ):
            self._quarantine(namespace, digest, path)
            return None
        return doc["value"]

    def _quarantine(self, namespace: str, digest: str, path: str) -> None:
        """Move a corrupt entry aside; never raise from the read path."""
        pen = os.path.join(self.root, "quarantine")
        try:
            os.makedirs(pen, exist_ok=True)
            os.replace(path, os.path.join(pen, f"{namespace}-{digest}.corrupt"))
        except OSError:
            try:
                os.remove(path)
            except OSError:
                pass
        self.stats.quarantined += 1

    # -- write path ----------------------------------------------------

    def put(self, namespace: str, key: bytes, value: dict) -> None:
        """Stage ``value`` for ``key`` (write-behind; see :meth:`flush`)."""
        self.stats.puts += 1
        self._pending[(namespace, self.address(key))] = (key, dict(value))
        if len(self._pending) >= self.flush_every:
            self.flush()

    def flush(self) -> int:
        """Write every staged entry to disk; returns entries written.

        A mid-loop write failure (disk full, root gone read-only)
        re-stages the unwritten remainder — including the entry whose
        write failed — before propagating, so no staged entry is ever
        silently dropped; a later flush (or another root) can retry.
        With :attr:`max_bytes` set, a successful flush ends by evicting
        oldest entries until the store fits the cap again.
        """
        written = 0
        pending, self._pending = self._pending, {}
        items = sorted(pending.items())
        try:
            for (namespace, digest), (key, value) in items:
                merge = self._mergers.get(namespace)
                if merge is not None:
                    existing = self._read(namespace, digest, key)
                    if existing is not None:
                        value = merge(existing, value)
                        self.stats.merges += 1
                self._write(namespace, digest, key, value)
                written += 1
        except BaseException:
            remainder = dict(items[written:])
            remainder.update(self._pending)  # puts staged mid-merge win
            self._pending = remainder
            raise
        if self.max_bytes is not None and written:
            from .gc import enforce_cap

            enforce_cap(self)
        return written

    def _write(self, namespace: str, digest: str, key: bytes, value: dict) -> None:
        path = self._path(namespace, digest)
        folder = os.path.dirname(path)
        os.makedirs(folder, exist_ok=True)
        doc = {"key": key.hex(), "namespace": namespace, "value": value}
        fd, tmp = tempfile.mkstemp(prefix=digest + ".", suffix=".tmp", dir=folder)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    # -- inspection ----------------------------------------------------

    def entries(self, namespace: str) -> Iterator[Tuple[bytes, dict]]:
        """Every durable ``(key, value)`` of a namespace, address order.

        Walks the disk (staged-but-unflushed entries are not included);
        corrupt files are quarantined and skipped, like on :meth:`get`.
        """
        base = os.path.join(self.root, namespace)
        if not os.path.isdir(base):
            return
        for shard in sorted(os.listdir(base)):
            folder = os.path.join(base, shard)
            if not os.path.isdir(folder):
                continue
            for name in sorted(os.listdir(folder)):
                if not name.endswith(".json"):
                    continue
                digest = name[: -len(".json")]
                path = os.path.join(folder, name)
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        doc = json.load(fh)
                    key = bytes.fromhex(doc["key"])
                except (json.JSONDecodeError, UnicodeDecodeError, OSError,
                        KeyError, TypeError, ValueError):
                    self._quarantine(namespace, digest, path)
                    continue
                if self.address(key) != digest or not isinstance(
                    doc.get("value"), dict
                ):
                    self._quarantine(namespace, digest, path)
                    continue
                yield key, doc["value"]

    def count(self, namespace: str) -> int:
        """Number of durable entries in a namespace."""
        return sum(1 for _ in self.entries(namespace))

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "ContentStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
