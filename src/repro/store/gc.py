"""Garbage collection for the content-addressed store.

A long-lived store grows without bound: every decision, similarity
summary, and orbit map ever computed stays on disk forever.  This
module is the lifecycle half of :mod:`repro.store`:

* :func:`usage` — per-namespace entry counts and byte sizes, the
  accounting every policy decision starts from;
* :func:`collect` — LRU-ish eviction by file mtime down to a
  configurable byte cap, followed by compaction: stale temp files are
  swept, surviving entries are atomically rewritten in canonical form
  (temp-file + ``os.replace``, mtime preserved so the LRU clock keeps
  ticking), corrupt survivors are quarantined, and emptied shard /
  namespace directories are removed.  Concurrent readers only ever see
  complete files — an evicted entry becomes a miss, never a crash or
  partial JSON;
* :func:`check` — integrity walk: reads every durable entry through the
  store's validating iterator and reports anything quarantined;
* :func:`enforce_cap` — the hook :meth:`ContentStore.flush` calls when
  the store was built with ``max_bytes``, so a capped store polices
  itself on every flush.

``python -m repro store-gc`` exposes all of this on the command line.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .content import ContentStore

#: Directory names under the store root that are not entry namespaces.
_RESERVED = ("quarantine",)


@dataclass
class NamespaceUsage:
    """Entry count and byte size of one namespace."""

    entries: int = 0
    bytes: int = 0

    def to_json(self) -> dict:
        return {"entries": self.entries, "bytes": self.bytes}


@dataclass
class GCReport:
    """What one :func:`collect` run did (or, dry-run, would have done)."""

    root: str
    cap_bytes: Optional[int]
    dry_run: bool
    before: Dict[str, NamespaceUsage] = field(default_factory=dict)
    after: Dict[str, NamespaceUsage] = field(default_factory=dict)
    evicted_entries: int = 0
    evicted_bytes: int = 0
    evicted_by_namespace: Dict[str, int] = field(default_factory=dict)
    rewritten: int = 0
    quarantined: int = 0
    removed_tmp: int = 0
    removed_dirs: int = 0
    elapsed_s: float = 0.0

    @property
    def total_bytes_before(self) -> int:
        return sum(u.bytes for u in self.before.values())

    @property
    def total_bytes_after(self) -> int:
        return sum(u.bytes for u in self.after.values())

    @property
    def under_cap(self) -> bool:
        return self.cap_bytes is None or self.total_bytes_after <= self.cap_bytes

    def to_json(self) -> dict:
        return {
            "root": self.root,
            "cap_bytes": self.cap_bytes,
            "dry_run": self.dry_run,
            "before": {ns: u.to_json() for ns, u in sorted(self.before.items())},
            "after": {ns: u.to_json() for ns, u in sorted(self.after.items())},
            "evicted_entries": self.evicted_entries,
            "evicted_bytes": self.evicted_bytes,
            "evicted_by_namespace": dict(sorted(self.evicted_by_namespace.items())),
            "rewritten": self.rewritten,
            "quarantined": self.quarantined,
            "removed_tmp": self.removed_tmp,
            "removed_dirs": self.removed_dirs,
            "under_cap": self.under_cap,
            "elapsed_s": round(self.elapsed_s, 4),
        }

    def describe(self) -> str:
        cap = f"{self.cap_bytes}B cap" if self.cap_bytes is not None else "no cap"
        verb = "would evict" if self.dry_run else "evicted"
        lines = [
            f"store-gc {self.root} ({cap}): "
            f"{self.total_bytes_before}B -> {self.total_bytes_after}B, "
            f"{verb} {self.evicted_entries} entr"
            f"{'y' if self.evicted_entries == 1 else 'ies'} "
            f"({self.evicted_bytes}B), rewrote {self.rewritten}, "
            f"quarantined {self.quarantined}, swept {self.removed_tmp} tmp / "
            f"{self.removed_dirs} empty dir(s)"
        ]
        for ns in sorted(set(self.before) | set(self.after)):
            b = self.before.get(ns, NamespaceUsage())
            a = self.after.get(ns, NamespaceUsage())
            lines.append(
                f"  {ns}: {b.entries} entries / {b.bytes}B -> "
                f"{a.entries} entries / {a.bytes}B"
            )
        return "\n".join(lines)


def _as_store(store_or_root) -> ContentStore:
    if isinstance(store_or_root, ContentStore):
        return store_or_root
    return ContentStore(str(store_or_root))


def _namespaces(root: str) -> List[str]:
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return []
    return [
        name
        for name in names
        if name not in _RESERVED and os.path.isdir(os.path.join(root, name))
    ]


def _entry_files(root: str) -> Iterator[Tuple[str, str, int, float]]:
    """Every durable entry file: ``(namespace, path, size, mtime)``.

    Files that vanish mid-scan (a concurrent GC or writer) are skipped,
    never raised on.
    """
    for namespace in _namespaces(root):
        base = os.path.join(root, namespace)
        for shard in sorted(os.listdir(base)):
            folder = os.path.join(base, shard)
            if not os.path.isdir(folder):
                continue
            for name in sorted(os.listdir(folder)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(folder, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                yield namespace, path, stat.st_size, stat.st_mtime


def usage(store_or_root) -> Dict[str, NamespaceUsage]:
    """Per-namespace entry counts and byte sizes of a store root."""
    store = _as_store(store_or_root)
    counts: Dict[str, NamespaceUsage] = {}
    for namespace, _path, size, _mtime in _entry_files(store.root):
        bucket = counts.setdefault(namespace, NamespaceUsage())
        bucket.entries += 1
        bucket.bytes += size
    return counts


def _sweep_tmp(folder: str) -> int:
    """Remove leftover ``*.tmp`` files (a crashed writer's litter)."""
    removed = 0
    try:
        names = os.listdir(folder)
    except OSError:
        return 0
    for name in names:
        if name.endswith(".tmp"):
            try:
                os.remove(os.path.join(folder, name))
                removed += 1
            except OSError:
                pass
    return removed


def _rewrite_entry(store: ContentStore, namespace: str, path: str) -> Optional[bool]:
    """Validate one entry; atomically rewrite it in canonical form.

    Returns True when the file was rewritten, False when it was already
    canonical, and None when it was corrupt (quarantined).  Readers
    racing the rewrite see either the old or the new complete file —
    ``os.replace`` is the only mutation — and the mtime is preserved so
    a rewrite never refreshes an entry's LRU age.
    """
    digest = os.path.basename(path)[: -len(".json")]
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
        doc = json.loads(raw.decode("utf-8"))
        key = bytes.fromhex(doc["key"])
    except OSError:
        return False  # vanished or unreadable mid-walk: not ours to judge
    except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError,
            ValueError):
        store._quarantine(namespace, digest, path)
        return None
    if store.address(key) != digest or not isinstance(doc.get("value"), dict):
        store._quarantine(namespace, digest, path)
        return None
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    if canonical == raw:
        return False
    folder = os.path.dirname(path)
    try:
        stat = os.stat(path)
        fd, tmp = tempfile.mkstemp(prefix=digest + ".", suffix=".tmp", dir=folder)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(canonical)
            os.utime(tmp, (stat.st_atime, stat.st_mtime))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return False
    return True


def collect(
    store_or_root,
    max_bytes: Optional[int] = None,
    hub=None,
    dry_run: bool = False,
) -> GCReport:
    """One garbage-collection pass: evict down to the cap, then compact.

    Args:
        store_or_root: a :class:`ContentStore` handle or a root path.
        max_bytes: byte cap for the whole store; ``None`` skips eviction
            (the pass still compacts).  Eviction removes whole entries,
            oldest file mtime first (ties broken by path), until the
            durable total fits the cap.
        hub: optional :class:`~repro.obs.events.EventHub`; one
            ``StoreEvicted`` event is emitted per namespace that lost
            entries.  Defaults to the store handle's own :attr:`hub`.
        dry_run: report what eviction would do without touching disk
            (compaction is skipped too).

    Returns:
        A :class:`GCReport`; the store handle's ``stats.evicted`` and
        ``stats.quarantined`` counters are bumped accordingly.
    """
    store = _as_store(store_or_root)
    if hub is None:
        hub = store.hub
    t0 = time.perf_counter()
    report = GCReport(root=store.root, cap_bytes=max_bytes, dry_run=dry_run)
    files = list(_entry_files(store.root))
    for namespace, _path, size, _mtime in files:
        bucket = report.before.setdefault(namespace, NamespaceUsage())
        bucket.entries += 1
        bucket.bytes += size

    survivors = files
    total = sum(size for _ns, _path, size, _mtime in files)
    if max_bytes is not None and total > max_bytes:
        by_age = sorted(files, key=lambda item: (item[3], item[1]))
        evicted: List[Tuple[str, str, int, float]] = []
        while total > max_bytes and by_age:
            namespace, path, size, mtime = by_age.pop(0)
            if not dry_run:
                try:
                    os.remove(path)
                except FileNotFoundError:
                    continue  # a racing GC got there first; no credit
                except OSError:
                    continue
            evicted.append((namespace, path, size, mtime))
            total -= size
            report.evicted_entries += 1
            report.evicted_bytes += size
            report.evicted_by_namespace[namespace] = (
                report.evicted_by_namespace.get(namespace, 0) + 1
            )
        survivors = by_age
        if not dry_run:
            store.stats.evicted += report.evicted_entries

    if not dry_run:
        quarantined_before = store.stats.quarantined
        folders = sorted(
            {os.path.dirname(path) for _ns, path, _size, _mtime in files}
        )
        for folder in folders:
            report.removed_tmp += _sweep_tmp(folder)
        for namespace, path, _size, _mtime in survivors:
            outcome = _rewrite_entry(store, namespace, path)
            if outcome:
                report.rewritten += 1
        report.quarantined = store.stats.quarantined - quarantined_before
        for folder in folders:
            try:
                os.rmdir(folder)
                report.removed_dirs += 1
            except OSError:
                pass  # not empty, or already gone
        for namespace in _namespaces(store.root):
            try:
                os.rmdir(os.path.join(store.root, namespace))
                report.removed_dirs += 1
            except OSError:
                pass

    for namespace, _path, size, _mtime in _entry_files(store.root):
        bucket = report.after.setdefault(namespace, NamespaceUsage())
        bucket.entries += 1
        bucket.bytes += size
    if dry_run:
        # Disk untouched: project the post-eviction shape instead.
        report.after = {}
        for namespace, _path, size, _mtime in survivors:
            bucket = report.after.setdefault(namespace, NamespaceUsage())
            bucket.entries += 1
            bucket.bytes += size

    report.elapsed_s = time.perf_counter() - t0
    if hub is not None and getattr(hub, "active", False):
        from ..obs.events import StoreEvicted

        for namespace in sorted(report.evicted_by_namespace):
            after = report.after.get(namespace, NamespaceUsage())
            hub.emit(
                StoreEvicted(
                    namespace=namespace,
                    evicted=report.evicted_by_namespace[namespace],
                    freed_bytes=sum(
                        size
                        for ns, _path, size, _mtime in files
                        if ns == namespace
                    )
                    - after.bytes,
                    remaining_entries=after.entries,
                    remaining_bytes=after.bytes,
                )
            )
    return report


def enforce_cap(store: ContentStore) -> Optional[GCReport]:
    """Evict the store back under its own ``max_bytes``, if it has one
    and is over it.  Called by :meth:`ContentStore.flush`; cheap when
    the store fits (one directory walk, no writes)."""
    if store.max_bytes is None:
        return None
    total = sum(size for _ns, _path, size, _mtime in _entry_files(store.root))
    if total <= store.max_bytes:
        return None
    return collect(store, max_bytes=store.max_bytes, hub=store.hub)


def check(store_or_root) -> dict:
    """Integrity walk: read every durable entry, quarantining corruption.

    Returns a report document; ``ok`` is True when nothing new was
    quarantined by the walk.  ``quarantine_backlog`` counts files
    already sitting in ``root/quarantine`` from earlier incidents.
    """
    store = _as_store(store_or_root)
    quarantined_before = store.stats.quarantined
    namespaces: Dict[str, dict] = {}
    for namespace in _namespaces(store.root):
        entries = sum(1 for _key, _value in store.entries(namespace))
        size = sum(
            size
            for ns, _path, size, _mtime in _entry_files(store.root)
            if ns == namespace
        )
        namespaces[namespace] = {"entries": entries, "bytes": size}
    quarantined = store.stats.quarantined - quarantined_before
    pen = os.path.join(store.root, "quarantine")
    backlog = len(os.listdir(pen)) if os.path.isdir(pen) else 0
    return {
        "root": store.root,
        "ok": quarantined == 0,
        "namespaces": namespaces,
        "total_bytes": sum(doc["bytes"] for doc in namespaces.values()),
        "quarantined_now": quarantined,
        "quarantine_backlog": backlog,
    }
