"""Chang-Roberts leader election on a unidirectional ring (baseline).

The classic deterministic ring election *with unique identifiers*: each
processor sends its id clockwise; a processor forwards ids larger than
its own, swallows smaller ones, and becomes the leader when its own id
returns.

In this paper's vocabulary the ids are simply *asymmetric initial
states*: the similarity labeling of an id-ring gives every processor a
unique label, so selection is trivially decidable -- the interest is in
the concrete algorithm as a baseline.  Contrast with the anonymous ring,
where every processor is similar (Theorem 2: no deterministic algorithm)
and only the randomized Itai-Rodeh protocol
(:mod:`repro.randomized.itai_rodeh`) elects a leader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..exceptions import ExecutionError
from ..messaging.mp_runtime import MPExecutor, MPProgram
from ..messaging.mp_system import unidirectional_ring


class ChangRobertsProgram(MPProgram):
    """State: (my_id, leader_flag, done).  Port ``prev`` in, ``next`` out."""

    def on_start(self, state0, out_ports=()):
        my_id = state0
        return (my_id, False), [("next", my_id)]

    def on_message(self, state, port, payload):
        my_id, leader = state
        if leader:
            return state, []
        if payload == my_id:
            return (my_id, True), []  # my id went all the way around
        if payload > my_id:
            return state, [("next", payload)]
        return state, []  # swallow smaller ids

    def is_selected(self, state) -> bool:
        return bool(state[1])


@dataclass(frozen=True)
class ChangRobertsResult:
    leader_id: Hashable
    leader: Hashable
    messages: int
    deliveries: int


def run_chang_roberts(ids: Sequence[int], seed: int = 0) -> ChangRobertsResult:
    """Elect a leader on a ring whose processor ``i`` holds ``ids[i]``.

    Returns the winner (the max id, provably) and message counts --
    O(n log n) on average over random id placements, O(n^2) worst case,
    the numbers the message-count benchmark reproduces.
    """
    if len(set(ids)) != len(ids):
        raise ExecutionError("Chang-Roberts requires unique identifiers")
    mp = unidirectional_ring(len(ids), states=dict(enumerate(ids)))
    executor = MPExecutor(mp, ChangRobertsProgram(), seed=seed)
    if not executor.run_to_quiescence():
        raise ExecutionError("election did not quiesce")
    winners = executor.selected()
    if len(winners) != 1:
        raise ExecutionError(f"expected one leader, got {winners!r}")
    leader = winners[0]
    return ChangRobertsResult(
        leader_id=executor.local[leader][0],
        leader=leader,
        messages=executor.stats.sends,
        deliveries=executor.stats.deliveries,
    )
