"""Chang-Roberts leader election on a unidirectional ring (baseline).

The classic deterministic ring election *with unique identifiers*: each
processor sends its id clockwise; a processor forwards ids larger than
its own, swallows smaller ones, and becomes the leader when its own id
returns.

In this paper's vocabulary the ids are simply *asymmetric initial
states*: the similarity labeling of an id-ring gives every processor a
unique label, so selection is trivially decidable -- the interest is in
the concrete algorithm as a baseline.  Contrast with the anonymous ring,
where every processor is similar (Theorem 2: no deterministic algorithm)
and only the randomized Itai-Rodeh protocol
(:mod:`repro.randomized.itai_rodeh`) elects a leader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence, Tuple

from ..exceptions import ExecutionError
from ..messaging.mp_faults import ChannelFaults, FaultPlan, drive_mp
from ..messaging.mp_runtime import MPExecutor, MPProgram
from ..messaging.mp_system import unidirectional_ring


class ChangRobertsProgram(MPProgram):
    """State: (my_id, leader_flag, done).  Port ``prev`` in, ``next`` out."""

    def on_start(self, state0, out_ports=()):
        my_id = state0
        return (my_id, False), [("next", my_id)]

    def on_message(self, state, port, payload):
        my_id, leader = state
        if leader:
            return state, []
        if payload == my_id:
            return (my_id, True), []  # my id went all the way around
        if payload > my_id:
            return state, [("next", payload)]
        return state, []  # swallow smaller ids

    def is_selected(self, state) -> bool:
        return bool(state[1])


@dataclass(frozen=True)
class ChangRobertsResult:
    leader_id: Hashable
    leader: Hashable
    messages: int
    deliveries: int


def run_chang_roberts(ids: Sequence[int], seed: int = 0) -> ChangRobertsResult:
    """Elect a leader on a ring whose processor ``i`` holds ``ids[i]``.

    Returns the winner (the max id, provably) and message counts --
    O(n log n) on average over random id placements, O(n^2) worst case,
    the numbers the message-count benchmark reproduces.
    """
    if len(set(ids)) != len(ids):
        raise ExecutionError("Chang-Roberts requires unique identifiers")
    mp = unidirectional_ring(len(ids), states=dict(enumerate(ids)))
    executor = MPExecutor(mp, ChangRobertsProgram(), seed=seed)
    if not executor.run_to_quiescence():
        raise ExecutionError("election did not quiesce")
    winners = executor.selected()
    if len(winners) != 1:
        raise ExecutionError(f"expected one leader, got {winners!r}")
    leader = winners[0]
    return ChangRobertsResult(
        leader_id=executor.local[leader][0],
        leader=leader,
        messages=executor.stats.sends,
        deliveries=executor.stats.deliveries,
    )


# ----------------------------------------------------------------------
# the election under fair-lossy channels
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LossyElectionResult:
    """Outcome of one election attempt over lossy channels.

    Attributes:
        elected: exactly one leader emerged and it holds the max id.
        leaders: the selected processors (empty when the election died,
            which is the expected outcome without retransmission).
        leader_id: the winner's id, or None.
        deliveries: messages delivered.
        drops: messages lost by the channel policy.
        retransmissions: stubborn resends attempted (0 when disabled).
        quiescent: the network drained (a dead election drains; a
            stubborn one is stopped by the leader predicate instead).
    """

    elected: bool
    leaders: Tuple[Hashable, ...]
    leader_id: Optional[Hashable]
    deliveries: int
    drops: int
    retransmissions: int
    quiescent: bool


def run_chang_roberts_lossy(
    ids: Sequence[int],
    drop: float = 0.2,
    seed: int = 0,
    fault_seed: Optional[int] = None,
    stubborn: bool = True,
    max_deliveries: int = 200_000,
) -> LossyElectionResult:
    """One election attempt on a ring with fair-lossy channels.

    Every channel drops each send with probability ``drop``.  With
    ``stubborn`` retransmission the election still terminates with
    exactly one leader (the max id: duplication is harmless because
    forwarding and the leader test are idempotent, and stubborn resends
    recover every loss on a fair-lossy channel).  Without it, a single
    dropped copy of the max id silently kills the election: the network
    drains with no leader.
    """
    if len(set(ids)) != len(ids):
        raise ExecutionError("Chang-Roberts requires unique identifiers")
    mp = unidirectional_ring(len(ids), states=dict(enumerate(ids)))
    plan = FaultPlan(
        default=ChannelFaults(drop=drop),
        seed=seed if fault_seed is None else fault_seed,
    )
    executor = MPExecutor(mp, ChangRobertsProgram(), seed=seed, faults=plan)
    drive_mp(
        executor,
        max_deliveries=max_deliveries,
        stubborn=stubborn,
        stop=lambda ex: bool(ex.selected()),
    )
    leaders = executor.selected()
    leader_id = executor.local[leaders[0]][0] if len(leaders) == 1 else None
    return LossyElectionResult(
        elected=len(leaders) == 1 and leader_id == max(ids),
        leaders=leaders,
        leader_id=leader_id,
        deliveries=executor.stats.deliveries,
        drops=executor.stats.drops,
        retransmissions=executor.stats.retransmissions,
        quiescent=executor.idle,
    )


def find_failing_election_seed(
    ids: Sequence[int],
    drop: float = 0.2,
    max_seed: int = 200,
) -> Optional[Tuple[int, LossyElectionResult]]:
    """The first seed whose unprotected lossy election elects nobody.

    Scans seeds in order, running the election *without* retransmission;
    returns ``(seed, result)`` for the first failure, or None if every
    seed up to ``max_seed`` happened to elect (pick a larger ``drop``).
    This is the concrete witness that loss breaks the bare algorithm --
    the paired experiment shows stubborn retransmission repairs it.
    """
    for seed in range(max_seed):
        result = run_chang_roberts_lossy(ids, drop=drop, seed=seed, stubborn=False)
        if not result.elected:
            return seed, result
    return None
