"""Baseline algorithms: deterministic DP', Chandy-Misra, Chang-Roberts."""

from .chandy_misra import (
    ChandyMisraDiningProgram,
    CMState,
    TO_LEFT_USER,
    TO_RIGHT_USER,
    oriented_dining_system,
    orientation_is_acyclic,
)
from .chandy_misra_mp import (
    HygienicDiningProgram,
    HygienicReport,
    hygienic_ring,
    run_hygienic,
)
from .chang_roberts import ChangRobertsProgram, ChangRobertsResult, run_chang_roberts
from .dp_deterministic import (
    DiningRunReport,
    DPState,
    LeftFirstDiningProgram,
    MultiLockDiningProgram,
    run_dining,
)

__all__ = [
    "CMState",
    "ChandyMisraDiningProgram",
    "ChangRobertsProgram",
    "ChangRobertsResult",
    "DPState",
    "DiningRunReport",
    "HygienicDiningProgram",
    "HygienicReport",
    "LeftFirstDiningProgram",
    "MultiLockDiningProgram",
    "TO_LEFT_USER",
    "TO_RIGHT_USER",
    "hygienic_ring",
    "orientation_is_acyclic",
    "oriented_dining_system",
    "run_chang_roberts",
    "run_dining",
    "run_hygienic",
]
