"""Chandy-Misra-style dining via encapsulated asymmetry [CM84] (Section 8).

"A method is proposed in [CM84] for designing systems by explicitly
encapsulating the necessary asymmetry.  There, processors all execute the
same program and have no explicit labels...  the initial state is
carefully designed...  equivalent to an acyclic directed graph covering
the system, giving an ordering for any two neighboring processors."

We implement the essence on the dining table: every *fork variable*
initially points at one of its two users (a priority token).  A
philosopher eats when both adjacent forks point at it, and after eating
flips both forks away.  Only the priority holder ever writes a fork, so
plain reads/writes (instruction set S!) suffice -- the asymmetry lives
entirely in the initial variable states, exactly the paper's point: the
program is symmetric and deterministic, and it still solves the
five-philosopher table that DP proves unsolvable for symmetric *initial
states*.

The initial orientation must be acyclic (as a priority relation); on a
ring that means not all tokens point the same way around.  With a cyclic
orientation the protocol livelocks -- the test suite demonstrates both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.system import InstructionSet, ScheduleClass, System
from ..exceptions import SystemError_
from ..runtime.actions import Action, Internal, Read, Write
from ..runtime.program import LocalState, Program
from ..topologies.builders import ring

#: Fork token values: which named side currently has priority.  The fork
#: between two philosophers is the "left" fork of one and the "right"
#: fork of the other (uniform ring orientation), so pointing "to-left-
#: user" vs "to-right-user" is expressible without identities.
TO_LEFT_USER = "to-left-user"
TO_RIGHT_USER = "to-right-user"


def oriented_dining_system(
    n: int,
    orientation: Optional[Sequence[str]] = None,
) -> System:
    """An ``n``-philosopher table with fork-priority initial states.

    Args:
        n: number of philosophers (uniform ring, Figure 4 shape).
        orientation: per-fork initial token (``TO_LEFT_USER`` /
            ``TO_RIGHT_USER``).  The default gives fork 0 to its
            *right*-user and every other fork to its *left*-user, the
            classic acyclic pattern (philosopher 0 has priority on both
            its forks).
    """
    net = ring(n, prefix="phil")
    if orientation is None:
        orientation = [TO_RIGHT_USER] + [TO_LEFT_USER] * (n - 1)
    orientation = list(orientation)
    if len(orientation) != n:
        raise SystemError_(f"need {n} fork orientations, got {len(orientation)}")
    state = {f"v{i}": orientation[i] for i in range(n)}
    return System(net, state, InstructionSet.S, ScheduleClass.FAIR)


def orientation_is_acyclic(orientation: Sequence[str]) -> bool:
    """Acyclic on a ring = not all tokens point the same way around.

    Fork ``i`` sits between philosopher ``i`` (its left-user... the
    processor calling it ``left``) and philosopher ``i-1`` (its
    right-user).  Priority edges all clockwise or all counter-clockwise
    form the only cycles on a ring.
    """
    values = set(orientation)
    return len(values) > 1


THINK = "think"
CHECK_LEFT = "check-left"
CHECK_RIGHT = "check-right"
EAT = "eat"
FLIP_LEFT = "flip-left"
FLIP_RIGHT = "flip-right"


@dataclass(frozen=True)
class CMState:
    stage: str
    counter: int = 0
    meals: int = 0


class ChandyMisraDiningProgram(Program):
    """Wait until both forks point at me; eat; flip both away.

    "Point at me" translates per side: my ``left`` fork points at me when
    it reads ``TO_LEFT_USER`` (I am the one calling it left), my ``right``
    fork when it reads ``TO_RIGHT_USER``.
    """

    def __init__(self, think_steps: int = 1, eat_steps: int = 1, meal_cap: int = 1000) -> None:
        self.think_steps = max(1, think_steps)
        self.eat_steps = max(1, eat_steps)
        self.meal_cap = meal_cap

    def initial_state(self, state0) -> LocalState:
        return CMState(stage=THINK)

    def next_action(self, state: CMState) -> Action:
        if state.stage == THINK:
            return Internal("think")
        if state.stage == CHECK_LEFT:
            return Read("left")
        if state.stage == CHECK_RIGHT:
            return Read("right")
        if state.stage == EAT:
            return Internal("eat")
        if state.stage == FLIP_LEFT:
            return Write("left", TO_RIGHT_USER)  # give it to my neighbor
        return Write("right", TO_LEFT_USER)  # FLIP_RIGHT: likewise

    def transition(self, state: CMState, action: Action, result) -> LocalState:
        if state.stage == THINK:
            nxt = state.counter + 1
            if nxt >= self.think_steps:
                return CMState(CHECK_LEFT, 0, state.meals)
            return CMState(THINK, nxt, state.meals)
        if state.stage == CHECK_LEFT:
            if result == TO_LEFT_USER:
                return CMState(CHECK_RIGHT, 0, state.meals)
            return CMState(CHECK_LEFT, 0, state.meals)  # poll again
        if state.stage == CHECK_RIGHT:
            if result == TO_RIGHT_USER:
                return CMState(EAT, 0, state.meals)
            return CMState(CHECK_LEFT, 0, state.meals)  # re-check from start
        if state.stage == EAT:
            nxt = state.counter + 1
            if nxt >= self.eat_steps:
                return CMState(FLIP_LEFT, 0, min(state.meals + 1, self.meal_cap))
            return CMState(EAT, nxt, state.meals)
        if state.stage == FLIP_LEFT:
            return CMState(FLIP_RIGHT, 0, state.meals)
        return CMState(THINK, 0, state.meals)

    @staticmethod
    def is_eating(state: CMState) -> bool:
        return isinstance(state, CMState) and state.stage == EAT

    @staticmethod
    def meals(state: CMState) -> int:
        return state.meals if isinstance(state, CMState) else 0
