"""Deterministic symmetric dining-philosophers programs (Section 7).

The *left-first* program: every philosopher thinks, then spin-locks its
``left`` fork, then its ``right`` fork, eats, and releases both.  One
anonymous deterministic program -- maximally symmetric.

* On **Figure 4** (five philosophers, uniform orientation) every fork is
  one philosopher's ``left`` and another's ``right``: the left-acquisition
  round is conflict-free, all five philosophers grab a fork, and everyone
  then waits on a fork held as somebody's *first* fork -- deadlock.  That
  is DP in action: no symmetric distributed deterministic program can
  work, and this one visibly does not.
* On **Figure 5** (six philosophers, alternating orientation) every fork
  is either a *left fork* (both users call it ``left``) or a *right fork*
  (both call it ``right``).  Only left forks are acquired first, so every
  wait chain ends at a philosopher holding both forks, i.e. an eater that
  will finish and release -- no deadlock.  The alternating *naming*
  encodes an acquisition order without breaking the symmetry of program
  or initial state: this is DP'.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.names import NodeId
from ..core.system import System
from ..runtime.actions import Action, Internal, Lock, MultiLock, Unlock
from ..runtime.executor import Executor
from ..runtime.program import LocalState, Program
from ..runtime.scheduler import Scheduler

THINK = "think"
WAIT_LEFT = "wait-left"
WAIT_RIGHT = "wait-right"
WAIT_BOTH = "wait-both"
EAT = "eat"
RELEASE_RIGHT = "release-right"
RELEASE_LEFT = "release-left"


@dataclass(frozen=True)
class DPState:
    """A philosopher's local state: a stage and a stage-local counter."""

    stage: str
    counter: int = 0
    meals: int = 0  # saturating meal counter (bounded for cycle detection)


class LeftFirstDiningProgram(Program):
    """Think / lock left / lock right / eat / release / repeat.

    Args:
        think_steps: internal steps spent thinking between meals.
        eat_steps: internal steps spent eating.
        meal_cap: meals are counted up to this bound (keeps the local
            state space finite so executions still cycle).
    """

    def __init__(self, think_steps: int = 1, eat_steps: int = 1, meal_cap: int = 1000) -> None:
        self.think_steps = max(1, think_steps)
        self.eat_steps = max(1, eat_steps)
        self.meal_cap = meal_cap

    def initial_state(self, state0) -> LocalState:
        return DPState(stage=THINK, counter=0)

    def next_action(self, state: DPState) -> Action:
        if state.stage == THINK:
            return Internal("think")
        if state.stage == WAIT_LEFT:
            return Lock("left")
        if state.stage == WAIT_RIGHT:
            return Lock("right")
        if state.stage == EAT:
            return Internal("eat")
        if state.stage == RELEASE_RIGHT:
            return Unlock("right")
        return Unlock("left")

    def transition(self, state: DPState, action: Action, result) -> LocalState:
        if state.stage == THINK:
            nxt = state.counter + 1
            if nxt >= self.think_steps:
                return DPState(WAIT_LEFT, 0, state.meals)
            return DPState(THINK, nxt, state.meals)
        if state.stage == WAIT_LEFT:
            if result:
                return DPState(WAIT_RIGHT, 0, state.meals)
            return state  # spin
        if state.stage == WAIT_RIGHT:
            if result:
                return DPState(EAT, 0, state.meals)
            return state  # spin -- hold-and-wait; deadlocks on Figure 4
        if state.stage == EAT:
            nxt = state.counter + 1
            if nxt >= self.eat_steps:
                meals = min(state.meals + 1, self.meal_cap)
                return DPState(RELEASE_RIGHT, 0, meals)
            return DPState(EAT, nxt, state.meals)
        if state.stage == RELEASE_RIGHT:
            return DPState(RELEASE_LEFT, 0, state.meals)
        return DPState(THINK, 0, state.meals)

    # ------------------------------------------------------------------

    @staticmethod
    def is_eating(state: DPState) -> bool:
        return isinstance(state, DPState) and state.stage == EAT

    @staticmethod
    def meals(state: DPState) -> int:
        return state.meals if isinstance(state, DPState) else 0


class MultiLockDiningProgram(Program):
    """Think / multi-lock both forks indivisibly / eat / release.

    The Section-6 extended-locking (L2) answer to DP: acquisition is
    all-or-nothing, so hold-and-wait — the ingredient of Figure 4's
    deadlock — is impossible, and even the uniformly oriented ring makes
    progress.  Also the canonical :class:`MultiLock` workload for the
    replay-determinism suite: every meal exercises one multi-lock
    acquisition and two unlocks.
    """

    def __init__(self, think_steps: int = 1, eat_steps: int = 1, meal_cap: int = 1000) -> None:
        self.think_steps = max(1, think_steps)
        self.eat_steps = max(1, eat_steps)
        self.meal_cap = meal_cap

    def initial_state(self, state0) -> LocalState:
        return DPState(stage=THINK, counter=0)

    def next_action(self, state: DPState) -> Action:
        if state.stage == THINK:
            return Internal("think")
        if state.stage == WAIT_BOTH:
            return MultiLock(("left", "right"))
        if state.stage == EAT:
            return Internal("eat")
        if state.stage == RELEASE_RIGHT:
            return Unlock("right")
        return Unlock("left")

    def transition(self, state: DPState, action: Action, result) -> LocalState:
        if state.stage == THINK:
            nxt = state.counter + 1
            if nxt >= self.think_steps:
                return DPState(WAIT_BOTH, 0, state.meals)
            return DPState(THINK, nxt, state.meals)
        if state.stage == WAIT_BOTH:
            if result:
                return DPState(EAT, 0, state.meals)
            return state  # spin; nothing is held, so no deadlock
        if state.stage == EAT:
            nxt = state.counter + 1
            if nxt >= self.eat_steps:
                meals = min(state.meals + 1, self.meal_cap)
                return DPState(RELEASE_RIGHT, 0, meals)
            return DPState(EAT, nxt, state.meals)
        if state.stage == RELEASE_RIGHT:
            return DPState(RELEASE_LEFT, 0, state.meals)
        return DPState(THINK, 0, state.meals)

    is_eating = staticmethod(LeftFirstDiningProgram.is_eating)
    meals = staticmethod(LeftFirstDiningProgram.meals)


@dataclass(frozen=True)
class DiningRunReport:
    """Outcome of a dining run.

    Attributes:
        steps: steps executed.
        meals: meals per philosopher at the end.
        safety_ok: no two adjacent philosophers were ever eating at once.
        deadlocked: the run reached a configuration where no philosopher
            can ever eat again (everyone waiting, no lock will be freed).
    """

    steps: int
    meals: dict
    safety_ok: bool
    deadlocked: bool

    @property
    def everyone_ate(self) -> bool:
        return all(m > 0 for m in self.meals.values())


def run_dining(
    system: System,
    program: Program,
    scheduler: Scheduler,
    steps: int,
    adjacent: Tuple[Tuple[NodeId, NodeId], ...],
    is_eating=LeftFirstDiningProgram.is_eating,
    meals_of=LeftFirstDiningProgram.meals,
) -> DiningRunReport:
    """Run a dining program, checking the eating-exclusion invariant.

    Deadlock is detected as: every philosopher is in a lock-waiting stage
    and an entire extra sweep of steps changes no local state.
    """
    executor = Executor(system, program, scheduler)
    safety_ok = True
    for _ in range(steps):
        executor.step()
        for a, b in adjacent:
            if is_eating(executor.local[a]) and is_eating(executor.local[b]):
                safety_ok = False
    # Deadlock probe: run one more full sweep; if no local state changes
    # and nobody eats, the configuration is stuck.
    before = dict(executor.local)
    executor.run(4 * len(system.processors))
    deadlocked = executor.local == before and not any(
        is_eating(s) for s in executor.local.values()
    )
    meals = {p: meals_of(executor.local[p]) for p in system.processors}
    return DiningRunReport(
        steps=steps, meals=meals, safety_ok=safety_ok, deadlocked=deadlocked
    )
