"""The hygienic dining philosophers of Chandy and Misra [CM84], full
dynamic version, over asynchronous message passing.

Section 8 cites [CM84] as the method of *encapsulating asymmetry*: all
processors run one program, and the only asymmetry is the initial
state -- "equivalent to an acyclic directed graph covering the system,
giving an ordering for any two neighboring processors".  Here that graph
is the classic fork/clean/dirty machinery:

* every fork is either held (clean or dirty) by one neighbor or in
  flight; each edge also carries one *request token*;
* a hungry philosopher holding the request token for a missing fork
  sends the token (= requests the fork);
* a philosopher holding a **dirty** fork must yield it when requested
  (cleaning it in transit); a **clean** fork is kept until used;
* eating dirties both forks; deferred requests are then serviced.

Clean-before-use priority keeps the precedence graph acyclic forever if
it starts acyclic, which gives starvation freedom under *every* fair
delivery order.  Starting it cyclic (all forks pointing the same way
around) forfeits the guarantee: because all initial forks are dirty,
random delivery still usually feeds everyone, but the proof is gone and
an adversarial delivery order may starve -- the tests pin the guaranteed
case and the invariant; the static-token variant in
:mod:`repro.baselines.chandy_misra` shows the cyclic failure observably.

Philosophers here are perpetually hungry (the adversarial case for
fairness) and eating is instantaneous (one delivery step), so fork
exclusion reduces to the per-edge invariant "one fork per edge", which
the runtime's message semantics preserve by construction and the test
suite checks explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..core.names import NodeId
from ..exceptions import SystemError_
from ..messaging.mp_runtime import MPExecutor, MPProgram
from ..messaging.mp_system import MPSystem, bidirectional_ring

#: port names on the bidirectional ring: messages from the left neighbor
#: arrive on ``ccw``; sends to the left go out on ``ccw``; symmetric for
#: ``cw``/right (see mp_system.bidirectional_ring's wiring).
FROM_LEFT = "ccw"
FROM_RIGHT = "cw"
TO_LEFT = "ccw"
TO_RIGHT = "cw"

REQ = "request-token"
FORK = "fork"


@dataclass(frozen=True)
class Side:
    """One edge's view: do I hold the fork / is it dirty / do I hold the
    request token?"""

    fork: bool
    dirty: bool
    token: bool


@dataclass(frozen=True)
class CMState:
    left: Side
    right: Side
    meals: int = 0

    def side(self, which: str) -> Side:
        return self.left if which == "left" else self.right

    def with_side(self, which: str, side: Side) -> "CMState":
        if which == "left":
            return replace(self, left=side)
        return replace(self, right=side)


def _out_port(which: str) -> str:
    return TO_LEFT if which == "left" else TO_RIGHT


def _side_of_port(port: str) -> str:
    return "left" if port == FROM_LEFT else "right"


class HygienicDiningProgram(MPProgram):
    """[CM84]'s protocol; initial fork placement comes from ``state0``.

    ``state0`` must be a pair ``(left_has_fork, right_has_fork)``; the
    edge's other end holds the request token, and all initial forks are
    dirty (the paper's initialization, which lets the initial acyclic
    priority dissolve immediately into fair turn-taking).
    """

    def on_start(self, state0, out_ports=()):
        try:
            left_fork, right_fork = state0
        except (TypeError, ValueError):
            raise SystemError_(
                f"hygienic dining needs (left_has_fork, right_has_fork) "
                f"initial states, got {state0!r}"
            ) from None
        state = CMState(
            left=Side(fork=left_fork, dirty=left_fork, token=not left_fork),
            right=Side(fork=right_fork, dirty=right_fork, token=not right_fork),
        )
        state, sends = self._request_missing(state)
        return state, sends

    # ------------------------------------------------------------------

    def _request_missing(self, state: CMState) -> Tuple[CMState, List]:
        """R1: hungry + token + no fork => send the request token."""
        sends = []
        for which in ("left", "right"):
            side = state.side(which)
            if side.token and not side.fork:
                sends.append((_out_port(which), REQ))
                state = state.with_side(which, replace(side, token=False))
        return state, sends

    def _maybe_eat(self, state: CMState) -> Tuple[CMState, List]:
        """Eat when both forks are held; dirty them, service requests."""
        if not (state.left.fork and state.right.fork):
            return state, []
        state = replace(
            state,
            left=replace(state.left, dirty=True),
            right=replace(state.right, dirty=True),
            meals=state.meals + 1,
        )
        sends: List = []
        # R2: deferred requests are serviced now that the forks are dirty.
        for which in ("left", "right"):
            side = state.side(which)
            if side.token and side.fork and side.dirty:
                sends.append((_out_port(which), FORK))
                state = state.with_side(
                    which, Side(fork=False, dirty=False, token=True)
                )
        more_state, more = self._request_missing(state)
        return more_state, sends + more

    def on_message(self, state: CMState, port, payload):
        which = _side_of_port(port)
        side = state.side(which)
        if payload == REQ:
            state = state.with_side(which, replace(side, token=True))
            side = state.side(which)
            if side.fork and side.dirty:
                # R2: yield the dirty fork (cleaned in transit)...
                state = state.with_side(
                    which, Side(fork=False, dirty=False, token=True)
                )
                sends = [(_out_port(which), FORK)]
                # ...and immediately ask for it back (we are hungry).
                state, more = self._request_missing(state)
                return state, sends + more
            return state, []  # clean fork (or no fork): defer
        if payload == FORK:
            state = state.with_side(which, replace(side, fork=True, dirty=False))
            return self._maybe_eat(state)
        return state, []

    @staticmethod
    def meals(state: CMState) -> int:
        return state.meals if isinstance(state, CMState) else 0


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------


def hygienic_ring(n: int, acyclic: bool = True) -> MPSystem:
    """A dining ring with [CM84] initial fork placement.

    ``acyclic=True``: every fork starts at its lower-indexed user
    (philosopher 0 holds both, philosopher n-1 none) -- the acyclic
    precedence graph.  ``acyclic=False``: every philosopher holds exactly
    its left fork -- the rotationally symmetric, cyclic initialization
    the theorem forbids.
    """
    if n < 2:
        raise SystemError_("a dining ring needs >= 2 philosophers")
    states: Dict[int, Tuple[bool, bool]] = {}
    for i in range(n):
        if acyclic:
            left_fork = i < (i - 1) % n  # I am the lower end of my left edge
            right_fork = i < (i + 1) % n
        else:
            left_fork, right_fork = True, False
        states[i] = (left_fork, right_fork)
    return bidirectional_ring(n, states=states)


@dataclass(frozen=True)
class HygienicReport:
    meals: Dict[NodeId, int]
    deliveries: int
    fork_invariant_ok: bool

    @property
    def everyone_ate(self) -> bool:
        return all(m > 0 for m in self.meals.values())

    @property
    def total_meals(self) -> int:
        return sum(self.meals.values())


def run_hygienic(n: int, deliveries: int, acyclic: bool = True, seed: int = 0) -> HygienicReport:
    """Run the protocol for a delivery budget; check the fork invariant.

    The invariant: on each edge, (forks held by the two ends) + (forks in
    flight on the edge's two channels) == 1.
    """
    mp = hygienic_ring(n, acyclic)
    program = HygienicDiningProgram()
    executor = MPExecutor(mp, program, seed=seed)
    ok = True
    for _ in range(deliveries):
        if not executor.deliver_one():
            break
        ok = ok and _fork_invariant(executor, n)
    meals = {p: HygienicDiningProgram.meals(executor.local[p]) for p in mp.processors}
    return HygienicReport(
        meals=meals, deliveries=executor.stats.deliveries, fork_invariant_ok=ok
    )


def _fork_invariant(executor: MPExecutor, n: int) -> bool:
    for i in range(n):
        right = f"p{(i + 1) % n}"
        me = f"p{i}"
        held = 0
        state_me = executor.local[me]
        state_right = executor.local[right]
        if isinstance(state_me, CMState) and state_me.right.fork:
            held += 1
        if isinstance(state_right, CMState) and state_right.left.fork:
            held += 1
        in_flight = 0
        for channel, queue in executor.queues.items():
            if {channel.sender, channel.receiver} == {me, right}:
                in_flight += sum(1 for m in queue if m == FORK)
        if held + in_flight != 1:
            return False
    return True
