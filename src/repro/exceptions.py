"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class NetworkError(ReproError):
    """The bipartite network specification is malformed.

    Raised when a processor lacks an n-neighbor for some name, when an edge
    connects two nodes of the same kind, or when node identifiers collide.
    """


class SystemError_(ReproError):
    """A system specification is inconsistent (bad initial state, etc.).

    Named with a trailing underscore to avoid shadowing the built-in
    ``SystemError``.
    """


class ScheduleError(ReproError):
    """A schedule violates its declared class (e.g. not k-bounded fair)."""


class ExecutionError(ReproError):
    """The simulator was asked to perform an illegal step.

    Examples: unlocking a variable that the processor has not locked, or
    executing a Q instruction in a system declared with instruction set S.
    """


class ProgramError(ReproError):
    """A program violated the deterministic anonymous-program contract."""


class LabelingError(ReproError):
    """A labeling is malformed or fails a required labeling property."""


class SelectionError(ReproError):
    """Raised when a selection algorithm is requested for a system that
    provably has none (Theorems 1-3, 7, 9)."""


class FamilyError(ReproError):
    """A family of systems is malformed (mismatched NAMES, instruction
    sets, or topologies where homogeneity is required)."""


class WitnessSearchError(ReproError):
    """The witness-sweep engine was misconfigured (unknown model labels,
    or a checkpoint recorded for a different sweep specification)."""


class WitnessRecordError(ReproError):
    """A recorded separation witness fails re-verification: its stored
    decisions or canonical-form key no longer match the system it
    claims to describe."""


class ParametricError(ReproError):
    """The parametric verification layer was misconfigured (unknown
    family or property names, bad size ranges) or failed to certify
    (no stabilization within the size budget)."""


class ExploreError(ReproError):
    """The schedule-space explorer was misconfigured (bad specification,
    unknown invariant or probe names, or a checkpoint recorded for a
    different exploration)."""


class ServeError(ReproError):
    """The analysis service received a malformed request or was
    misconfigured (unknown op, bad spec payload, bad front-end state)."""
