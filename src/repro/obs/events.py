"""Typed structured events — the vocabulary of the observability layer.

Every interesting runtime occurrence is one immutable event object:

* :class:`StepExecuted` — the executor performed one atomic step;
* :class:`CrashManifested` — a configured crash took effect in a
  :class:`~repro.runtime.faults.CrashScheduler`;
* :class:`MessageDelivered` — the message-passing simulator delivered
  one message;
* :class:`MessageDropped` / :class:`MessageDuplicated` — a per-channel
  fault policy lost or duplicated a send in the message-passing
  simulator;
* :class:`ProcessorCrashedMP` — a crash-stop fault took effect in the
  message-passing simulator (pending deliveries to the processor were
  discarded);
* :class:`RefinementRound` / :class:`RefinementCompleted` — progress of
  a partition-refinement engine;
* :class:`ConfigSampled` — a digest of the whole-system configuration,
  taken at a sampled step boundary (the anchor of deterministic replay);
* :class:`WitnessSearchProgress` / :class:`WitnessFound` — shard
  completions and final (deterministically ordered) witnesses of the
  separation-witness sweep engine.

Events carry *live* payloads (the actual :class:`StepRecord`, the actual
payload object); :meth:`Event.to_json` flattens them to JSON scalars for
the JSONL sink, using ``repr`` for arbitrary hashables — reprs of the
tuples/dataclasses used as local states are deterministic across
interpreter runs, which is what makes the serialized stream comparable
under different ``PYTHONHASHSEED`` values.

This module deliberately imports nothing from the rest of the package,
so any layer (runtime, messaging, core.refinement) can emit events
without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Mapping, Optional


@dataclass(frozen=True)
class Event:
    """Base class of all structured events."""

    kind: ClassVar[str] = "event"

    def to_json(self) -> Dict[str, Any]:
        """A JSON-scalar dict for line-oriented serialization."""
        return {"kind": self.kind}


@dataclass(frozen=True)
class StepExecuted(Event):
    """One executed step of the shared-variable executor.

    ``record`` is the live :class:`~repro.runtime.executor.StepRecord`
    (action and result are real objects, not reprs).  A record with
    ``noop=True`` is a scheduled slot wasted on an already-halted
    processor: no instruction ran and no state changed.
    """

    kind: ClassVar[str] = "step"

    record: Any

    def to_json(self) -> Dict[str, Any]:
        r = self.record
        return {
            "kind": self.kind,
            "i": r.index,
            "p": str(r.processor),
            "a": type(r.action).__name__,
            "action": repr(r.action),
            "r": repr(r.result),
            "noop": bool(r.noop),
        }


@dataclass(frozen=True)
class CrashManifested(Event):
    """A configured crash took effect.

    Attributes:
        processor: who crashed.
        crash_step: the configured crash step.
        observed_step: the step index at which the scheduler first had to
            route around the crashed processor.
    """

    kind: ClassVar[str] = "crash"

    processor: Any
    crash_step: int
    observed_step: int

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "p": str(self.processor),
            "crash_step": self.crash_step,
            "observed_step": self.observed_step,
        }


@dataclass(frozen=True)
class MessageDelivered(Event):
    """One delivery step of the message-passing simulator."""

    kind: ClassVar[str] = "delivery"

    index: int
    sender: Any
    receiver: Any
    port: str
    payload: Any

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "i": self.index,
            "from": str(self.sender),
            "to": str(self.receiver),
            "port": str(self.port),
            "payload": repr(self.payload),
        }


@dataclass(frozen=True)
class MessageDropped(Event):
    """A channel fault policy lost one send.

    ``index`` is the delivery-step clock at the moment of the send (the
    number of deliveries performed so far), not a delivery index of its
    own: drops never consume a delivery step.
    """

    kind: ClassVar[str] = "drop"

    index: int
    sender: Any
    receiver: Any
    port: str
    payload: Any

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "i": self.index,
            "from": str(self.sender),
            "to": str(self.receiver),
            "port": str(self.port),
            "payload": repr(self.payload),
        }


@dataclass(frozen=True)
class MessageDuplicated(Event):
    """A channel fault policy duplicated one send (two copies enqueued)."""

    kind: ClassVar[str] = "dup"

    index: int
    sender: Any
    receiver: Any
    port: str
    payload: Any

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "i": self.index,
            "from": str(self.sender),
            "to": str(self.receiver),
            "port": str(self.port),
            "payload": repr(self.payload),
        }


@dataclass(frozen=True)
class ProcessorCrashedMP(Event):
    """A crash-stop fault took effect in the message-passing simulator.

    Attributes:
        processor: who crashed.
        crash_index: the configured crash point on the delivery clock.
        observed_index: the delivery-step count when the executor first
            routed around the crash (>= ``crash_index``).
        discarded: pending deliveries to the processor that were thrown
            away when the crash manifested.
    """

    kind: ClassVar[str] = "mp-crash"

    processor: Any
    crash_index: int
    observed_index: int
    discarded: int = 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "p": str(self.processor),
            "crash_index": self.crash_index,
            "observed_index": self.observed_index,
            "discarded": self.discarded,
        }


@dataclass(frozen=True)
class RefinementRound(Event):
    """One global round of a refinement engine (literal/signature style)."""

    kind: ClassVar[str] = "refinement-round"

    engine: str
    round_index: int
    classes: int

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "engine": self.engine,
            "round": self.round_index,
            "classes": self.classes,
        }


@dataclass(frozen=True)
class RefinementCompleted(Event):
    """A refinement engine reached its fixpoint."""

    kind: ClassVar[str] = "refinement"

    engine: str
    rounds: int
    splits: int
    classes: int
    elapsed: float

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "engine": self.engine,
            "rounds": self.rounds,
            "splits": self.splits,
            "classes": self.classes,
            "elapsed": self.elapsed,
        }


@dataclass(frozen=True)
class ConfigSampled(Event):
    """A configuration digest at a sampled step boundary.

    Attributes:
        step: how many steps had executed when the sample was taken.
        digest: stable digest of the whole configuration.
        node_digests: per-node state digests (``str(node) -> digest``),
            the evidence replay uses to point at the first divergent node.
    """

    kind: ClassVar[str] = "config"

    step: int
    digest: str
    node_digests: Mapping[str, str]

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "step": self.step,
            "digest": self.digest,
            "nodes": dict(self.node_digests),
        }


@dataclass(frozen=True)
class WitnessSearchProgress(Event):
    """One shard of a separation-witness sweep completed.

    Attributes:
        shard: compact shard key, ``"<procs>x<names>:<prefix>"``.
        enumerated: candidates enumerated in the shard.
        novel: candidates that survived the shard's isomorphism dedup.
        witnesses: separation witnesses the shard collected.
        cache_hits / cache_misses: decision-cache traffic of the shard.
        resumed: True when the shard was loaded from a checkpoint rather
            than executed.
    """

    kind: ClassVar[str] = "witness-shard"

    shard: str
    enumerated: int
    novel: int
    witnesses: int
    cache_hits: int
    cache_misses: int
    resumed: bool = False

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "shard": self.shard,
            "enumerated": self.enumerated,
            "novel": self.novel,
            "witnesses": self.witnesses,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "resumed": self.resumed,
        }


@dataclass(frozen=True)
class WitnessFound(Event):
    """One separation witness of the merged (deterministic) sweep output.

    Emitted after the sorted merge, so ``index`` is the witness's
    position in the final list -- identical across worker counts and
    ``PYTHONHASHSEED`` values.
    """

    kind: ClassVar[str] = "witness"

    index: int
    weaker: str
    stronger: str
    description: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "i": self.index,
            "weaker": self.weaker,
            "stronger": self.stronger,
            "description": self.description,
        }


@dataclass(frozen=True)
class ExplorationProgress(Event):
    """One shard of a bounded schedule-space exploration completed.

    Attributes:
        shard: the shard's root schedule prefix, joined with ``,`` (the
            trunk shard is ``""``).
        visited: states the shard checked (discovered and verified).
        expanded: states whose successor set was enumerated.
        transitions: successor executions performed.
        violation: True when the shard found an invariant violation,
            deadlock or livelock.
        resumed: True when the shard was loaded from a checkpoint rather
            than executed.
    """

    kind: ClassVar[str] = "explore-shard"

    shard: str
    visited: int
    expanded: int
    transitions: int
    violation: bool = False
    resumed: bool = False

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "shard": self.shard,
            "visited": self.visited,
            "expanded": self.expanded,
            "transitions": self.transitions,
            "violation": self.violation,
            "resumed": self.resumed,
        }


@dataclass(frozen=True)
class InvariantViolated(Event):
    """The merged (deterministic) verdict of an exploration that failed.

    Emitted after the plan-order merge, so the reported counterexample is
    identical across worker counts and ``PYTHONHASHSEED`` values.

    Attributes:
        violation_kind: ``"deadlock"``, ``"livelock"`` or ``"invariant"``.
        invariant: the violated invariant's registry name (empty for the
            built-in deadlock/livelock checks).
        depth: length of the counterexample schedule prefix.
        schedule: the counterexample prefix, joined with ``,``.
        detail: human-readable description of the violated condition.
    """

    kind: ClassVar[str] = "invariant-violated"

    violation_kind: str
    invariant: str
    depth: int
    schedule: str
    detail: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "violation": self.violation_kind,
            "invariant": self.invariant,
            "depth": self.depth,
            "schedule": self.schedule,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ServeWave(Event):
    """One coalesced wave of the analysis service completed.

    Attributes:
        op: the operation kind (``"similarity"``, ``"witness"``,
            ``"explore"``).
        requests: requests coalesced into the wave.
        jobs: distinct jobs actually executed (identical requests share).
        elapsed_ms: wall-clock time of the wave, in milliseconds.
    """

    kind: ClassVar[str] = "serve-wave"

    op: str
    requests: int
    jobs: int
    elapsed_ms: float

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "op": self.op,
            "requests": self.requests,
            "jobs": self.jobs,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }


@dataclass(frozen=True)
class StoreEvicted(Event):
    """The store garbage collector evicted entries from one namespace.

    Attributes:
        namespace: the namespace that lost entries.
        evicted: entries removed from it by this GC pass.
        freed_bytes: bytes the namespace shrank by.
        remaining_entries / remaining_bytes: what survives on disk.
    """

    kind: ClassVar[str] = "store-evicted"

    namespace: str
    evicted: int
    freed_bytes: int
    remaining_entries: int
    remaining_bytes: int

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "namespace": self.namespace,
            "evicted": self.evicted,
            "freed_bytes": self.freed_bytes,
            "remaining_entries": self.remaining_entries,
            "remaining_bytes": self.remaining_bytes,
        }


@dataclass(frozen=True)
class ServeDegraded(Event):
    """The analysis service detached an unwritable store at runtime.

    From this point the service answers from memory only; reads and
    writes to the store stop, and ``/v1/stats`` reports
    ``"store": "degraded"``.
    """

    kind: ClassVar[str] = "serve-degraded"

    reason: str

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, "reason": self.reason}


class EventHub:
    """A tiny synchronous dispatcher: attach sinks, emit events.

    The executor (and friends) hold one hub each; emission is guarded by
    :attr:`active` so an un-observed run pays a single attribute check
    per step.
    """

    __slots__ = ("_sinks",)

    def __init__(self) -> None:
        self._sinks: List[Any] = []

    @property
    def active(self) -> bool:
        return bool(self._sinks)

    @property
    def sinks(self) -> tuple:
        return tuple(self._sinks)

    def attach(self, sink) -> Any:
        """Attach ``sink`` (anything with ``on_event``); returns it."""
        self._sinks.append(sink)
        return sink

    def detach(self, sink) -> None:
        self._sinks.remove(sink)

    def emit(self, event: Event) -> None:
        for sink in self._sinks:
            sink.on_event(event)

    def close(self) -> None:
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
