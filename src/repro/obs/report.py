"""Human-readable views of recorded traces.

These mirror the live-run tools (:func:`repro.runtime.recording.census`,
:func:`~repro.runtime.recording.render_timeline`) but operate on a
parsed :class:`~repro.obs.trace_io.Trace` — no re-execution needed, so
they work on any trace file, including one recorded on another machine.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..runtime.recording import StepCensus
from .trace_io import Trace

#: one display letter per action kind (timeline lanes)
_ACTION_LETTERS: Dict[str, str] = {
    "Internal": "i",
    "Read": "r",
    "Write": "w",
    "Peek": "p",
    "Post": "s",
    "Lock": "L",
    "Unlock": "u",
    "MultiLock": "M",
    "Halt": "H",
}


def trace_census(trace: Trace) -> StepCensus:
    """A :class:`~repro.runtime.recording.StepCensus` over a trace.

    Processor keys are the recorded ``str(processor)`` ids.  As with the
    live census, no-op slots count toward ``steps`` and ``noop_steps``
    but not toward the per-processor / per-action aggregates.
    """
    per_proc: Dict[str, int] = {}
    per_action: Dict[str, int] = {}
    total = 0
    noops = 0
    for doc in trace.steps:
        total += 1
        if doc.get("noop"):
            noops += 1
            continue
        per_proc[doc["p"]] = per_proc.get(doc["p"], 0) + 1
        per_action[doc["a"]] = per_action.get(doc["a"], 0) + 1
    return StepCensus(
        steps=total,
        per_processor=per_proc,
        per_action_type=per_action,
        noop_steps=noops,
    )


def trace_timeline(trace: Trace, width: Optional[int] = None) -> str:
    """One lane per processor; one action-kind letter per own step.

    Real steps render as the action's letter (``L`` lock, ``u`` unlock,
    ``M`` multi-lock, ``r``/``w`` read/write, ``p``/``s`` peek/post,
    ``i`` internal, ``H`` halt); wasted no-op slots render as ``.``.
    A trace with no steps renders as the empty string.
    """
    lanes: Dict[str, list] = {}
    order = []
    for doc in trace.steps:
        p = doc["p"]
        if p not in lanes:
            lanes[p] = []
            order.append(p)
        if doc.get("noop"):
            lanes[p].append(".")
        else:
            lanes[p].append(_ACTION_LETTERS.get(doc["a"], "?"))
    if not lanes:
        return ""
    name_width = max(len(p) for p in order)
    lines = []
    for p in sorted(order):
        chars = "".join(lanes[p])
        if width is not None:
            chars = chars[:width]
        lines.append(f"{p.ljust(name_width)}  {chars}")
    return "\n".join(lines)


def mp_trace_report(trace: Trace) -> str:
    """A text report for a message-passing trace (deliveries + faults)."""
    sc = trace.scenario
    events = trace.mp_events
    deliveries = [d for d in events if d["kind"] == "delivery"]
    drops = [d for d in events if d["kind"] == "drop"]
    dups = [d for d in events if d["kind"] == "dup"]
    crashes = [d for d in events if d["kind"] == "mp-crash"]
    lines = []
    lines.append("mp trace report")
    lines.append("=" * 40)
    if sc:
        bits = [
            f"topology={sc.get('topology')}",
            f"size={sc.get('size')}",
            f"program={sc.get('program')}",
            f"scheduler={sc.get('scheduler')}",
        ]
        if sc.get("stubborn"):
            bits.append("stubborn=yes")
        if sc.get("faults"):
            bits.append("faults=yes")
        lines.append("scenario: " + " ".join(bits))
    lines.append(
        f"deliveries: {len(deliveries)}, drops: {len(drops)}, "
        f"duplicates: {len(dups)}, samples: {len(trace.samples)}"
    )
    if trace.end is not None:
        lines.append(f"final digest: {trace.end.get('digest')}")
    if crashes:
        crashed = ", ".join(f"{d['p']}@{d['crash_index']}" for d in crashes)
        lines.append(f"crashed: {crashed}")
    per_receiver: Dict[str, int] = {}
    for d in deliveries:
        per_receiver[d["to"]] = per_receiver.get(d["to"], 0) + 1
    if per_receiver:
        lines.append("")
        lines.append("per-receiver deliveries:")
        for p in sorted(per_receiver):
            lines.append(f"  {p}: {per_receiver[p]}")
    return "\n".join(lines)


def trace_report(trace: Trace, width: Optional[int] = 72) -> str:
    """A multi-section text report for a trace file.

    Message-passing traces get their own rendering (deliveries and
    channel faults instead of step lanes).
    """
    sc = trace.scenario
    if sc.get("kind") == "mp":
        return mp_trace_report(trace)
    census = trace_census(trace)
    lines = []
    lines.append("trace report")
    lines.append("=" * 40)
    if sc:
        bits = [f"topology={sc.get('topology')}", f"size={sc.get('size')}"]
        if sc.get("topology") != "dining":
            bits.append(f"model={sc.get('model')}")
        bits.append(f"program={sc.get('program')}")
        bits.append(f"scheduler={sc.get('scheduler')}")
        lines.append("scenario: " + " ".join(bits))
    lines.append(
        f"steps: {census.steps} ({census.noop_steps} no-op), "
        f"samples: {len(trace.samples)}"
    )
    if trace.end is not None:
        lines.append(f"final digest: {trace.end.get('digest')}")
    if trace.crashes:
        crashed = ", ".join(
            f"{doc['p']}@{doc['crash_step']}" for doc in trace.crashes
        )
        lines.append(f"crashes: {crashed}")
    if census.per_action_type:
        actions = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(census.per_action_type.items())
        )
        lines.append(f"actions: {actions}")
    if census.per_processor:
        lines.append("")
        lines.append("per-processor steps:")
        for p in sorted(census.per_processor):
            lines.append(f"  {p}: {census.per_processor[p]}")
    timeline = trace_timeline(trace, width=width)
    if timeline:
        lines.append("")
        lines.append("timeline (letters = action kinds, . = no-op slot):")
        lines.extend("  " + lane for lane in timeline.splitlines())
    return "\n".join(lines)
