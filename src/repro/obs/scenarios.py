"""Named, JSON-serializable run scenarios for tracing and replay.

Deterministic replay needs to *rebuild* a run, not merely re-read it:
the system, the program, and the scheduler must all be reconstructible
from data that fits in a trace header.  A **scenario spec** is that
data — a plain JSON dict naming a topology builder, a program, a
scheduler, and their seeds::

    {"topology": "ring", "size": 6, "model": "Q",
     "program": "random", "program_seed": 3,
     "scheduler": "random", "sched_seed": 1,
     "marks": ["p0"], "crash_at": {"p2": 40}}

:func:`build_scenario` turns a spec into live objects;
:func:`record_scenario` runs it and streams the trace to JSONL.  The
spec is normalized (defaults filled in) before being written to the
header, so a recorded trace is self-contained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..baselines.dp_deterministic import (
    LeftFirstDiningProgram,
    MultiLockDiningProgram,
)
from ..core.system import InstructionSet, ScheduleClass, System
from ..exceptions import ReproError
from ..io import system_to_dict
from ..runtime.executor import Executor
from ..runtime.faults import CrashScheduler
from ..runtime.program import (
    IdleProgram,
    Program,
    RandomProgramL,
    RandomProgramQ,
    RandomProgramS,
)
from ..runtime.scheduler import (
    KBoundedFairScheduler,
    RandomFairScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from ..topologies import (
    alternating_ring,
    complete_bipartite,
    dining_system,
    path,
    ring,
    star,
    torus_grid,
)
from .trace_io import TraceWriter


class ScenarioError(ReproError):
    """The scenario spec is malformed or names unknown components."""


_TOPOLOGIES = {
    "ring": lambda n: ring(n),
    "alternating-ring": lambda n: alternating_ring(n),
    "path": lambda n: path(n),
    "star": lambda n: star(n),
    "complete": lambda n: complete_bipartite(n, 2),
    "grid": lambda n: torus_grid(n, n),
}

_MODELS = {
    "S": InstructionSet.S,
    "Q": InstructionSet.Q,
    "L": InstructionSet.L,
    "L2": InstructionSet.L2,
}

_RANDOM_PROGRAMS = {
    InstructionSet.S: RandomProgramS,
    InstructionSet.Q: RandomProgramQ,
    InstructionSet.L: RandomProgramL,
    InstructionSet.L2: RandomProgramL,  # L programs are legal under L2
}

_DEFAULTS = {
    "topology": "ring",
    "size": 5,
    "alternating": False,
    "model": "Q",
    "marks": [],
    "program": "random",
    "program_seed": 0,
    "scheduler": "round-robin",
    "sched_seed": 0,
    "k": None,
    "crash_at": {},
}


@dataclass
class ScenarioBundle:
    """A scenario spec made live."""

    spec: Dict[str, Any]
    system: System
    program: Program
    scheduler: Scheduler
    base_scheduler: Scheduler
    crash_at: Dict[Any, int]


def normalize_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Fill defaults; reject unknown keys (typos must not pass silently)."""
    unknown = set(spec) - set(_DEFAULTS)
    if unknown:
        raise ScenarioError(
            f"unknown scenario keys {sorted(unknown)}; "
            f"valid keys are {sorted(_DEFAULTS)}"
        )
    doc = dict(_DEFAULTS)
    doc.update(spec)
    doc["marks"] = list(doc["marks"])
    doc["crash_at"] = {str(p): int(t) for p, t in dict(doc["crash_at"]).items()}
    return doc


def _build_system(doc: Dict[str, Any]) -> System:
    topology = doc["topology"]
    size = int(doc["size"])
    if topology == "dining":
        # lock-based dining programs dictate their instruction set
        if doc["program"] == "both-forks":
            iset = InstructionSet.L2
        elif doc["program"] == "left-first":
            iset = InstructionSet.L
        else:
            iset = _MODELS.get(doc["model"], InstructionSet.L)
        return dining_system(size, alternating=bool(doc["alternating"]), instruction_set=iset)
    try:
        net = _TOPOLOGIES[topology](size)
    except KeyError:
        raise ScenarioError(
            f"unknown topology {topology!r}; pick from "
            f"{sorted(_TOPOLOGIES) + ['dining']}"
        ) from None
    try:
        iset = _MODELS[doc["model"]]
    except KeyError:
        raise ScenarioError(
            f"unknown model {doc['model']!r}; pick from {sorted(_MODELS)}"
        ) from None
    state = {mark: 1 for mark in doc["marks"]}
    return System(net, state, iset, ScheduleClass.FAIR)


def _build_program(doc: Dict[str, Any], system: System) -> Program:
    name = doc["program"]
    seed = int(doc["program_seed"])
    if name == "random":
        return _RANDOM_PROGRAMS[system.instruction_set](system.names, seed=seed)
    if name == "idle":
        return IdleProgram()
    if name == "left-first":
        return LeftFirstDiningProgram()
    if name == "both-forks":
        return MultiLockDiningProgram()
    raise ScenarioError(
        f"unknown program {name!r}; pick from "
        f"['random', 'idle', 'left-first', 'both-forks']"
    )


def _build_base_scheduler(doc: Dict[str, Any], system: System) -> Scheduler:
    name = doc["scheduler"]
    procs = system.processors
    if name == "round-robin":
        return RoundRobinScheduler(procs)
    if name == "random":
        return RandomFairScheduler(procs, seed=int(doc["sched_seed"]))
    if name == "k-bounded":
        k = doc["k"]
        return KBoundedFairScheduler(
            procs, k=None if k is None else int(k), seed=int(doc["sched_seed"])
        )
    raise ScenarioError(
        f"unknown scheduler {name!r}; pick from "
        f"['round-robin', 'random', 'k-bounded']"
    )


def build_scenario(spec: Dict[str, Any], sink=None) -> ScenarioBundle:
    """Build (system, program, scheduler) from a scenario spec.

    ``sink`` is attached to the :class:`CrashScheduler` (when crashes are
    configured) so crash manifestations reach the trace.
    """
    doc = normalize_spec(spec)
    system = _build_system(doc)
    program = _build_program(doc, system)
    base = _build_base_scheduler(doc, system)
    by_str = {str(p): p for p in system.processors}
    try:
        crash_at = {by_str[p]: t for p, t in doc["crash_at"].items()}
    except KeyError as exc:
        raise ScenarioError(f"crash_at names unknown processor {exc}") from None
    scheduler: Scheduler = base
    if crash_at:
        scheduler = CrashScheduler(base, crash_at, system.processors, sink=sink)
    return ScenarioBundle(
        spec=doc,
        system=system,
        program=program,
        scheduler=scheduler,
        base_scheduler=base,
        crash_at=crash_at,
    )


def record_scenario(
    spec: Dict[str, Any],
    steps: int,
    path: str,
    sample_every: Optional[int] = None,
) -> Dict[str, Any]:
    """Run a scenario for ``steps`` steps, streaming the trace to ``path``.

    Returns a summary dict: steps, samples, final digest, output path.
    """
    with open(path, "w", encoding="utf-8") as handle:
        writer = TraceWriter(handle)
        bundle = build_scenario(spec, sink=writer)
        doc = bundle.spec
        if sample_every is None:
            sample_every = max(1, len(bundle.system.processors))
        executor = Executor(
            bundle.system, bundle.program, bundle.scheduler, sink=writer
        )
        writer.write_header(doc, system_to_dict(bundle.system), steps, sample_every)
        writer.sample(executor)
        samples = 1
        for i in range(steps):
            executor.step()
            if (i + 1) % sample_every == 0:
                writer.sample(executor)
                samples += 1
        digest = writer.write_end(executor)
    return {
        "path": path,
        "steps": steps,
        "samples": samples,
        "sample_every": sample_every,
        "final_digest": digest,
        "lines": writer.lines_written,
    }
