"""Named, JSON-serializable run scenarios for tracing and replay.

Deterministic replay needs to *rebuild* a run, not merely re-read it:
the system, the program, and the scheduler must all be reconstructible
from data that fits in a trace header.  A **scenario spec** is that
data — a plain JSON dict naming a topology builder, a program, a
scheduler, and their seeds::

    {"topology": "ring", "size": 6, "model": "Q",
     "program": "random", "program_seed": 3,
     "scheduler": "random", "sched_seed": 1,
     "marks": ["p0"], "crash_at": {"p2": 40}}

:func:`build_scenario` turns a spec into live objects;
:func:`record_scenario` runs it and streams the trace to JSONL.  The
spec is normalized (defaults filled in) before being written to the
header, so a recorded trace is self-contained.

Message-passing runs are scenarios too, marked by ``"kind": "mp"``::

    {"kind": "mp", "topology": "ring", "size": 5,
     "program": "chang-roberts", "ids": [3, 1, 4, 0, 2],
     "scheduler": "random", "sched_seed": 1, "stubborn": true,
     "faults": {"default": {"drop": 0.2, "duplicate": 0.1,
                            "delay": 0.1, "max_delay": 4},
                "crash_at": {"p2": 30}, "seed": 7}}

:func:`build_mp_scenario` / :func:`record_mp_scenario` are the MP
counterparts; :func:`repro.obs.replay.replay_trace` dispatches on the
``kind`` field, so one CLI replays either flavor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..baselines.chang_roberts import ChangRobertsProgram
from ..baselines.dp_deterministic import (
    LeftFirstDiningProgram,
    MultiLockDiningProgram,
)
from ..core.system import InstructionSet, ScheduleClass, System
from ..exceptions import NetworkError, ReproError, SystemError_
from ..io import mp_system_to_dict, system_to_dict
from ..messaging.mp_faults import FaultPlan
from ..messaging.mp_runtime import FloodProgram, MPExecutor, MPProgram
from ..messaging.mp_scheduler import (
    DeliveryScheduler,
    FifoDeliveryScheduler,
    RandomDeliveryScheduler,
)
from ..messaging.mp_system import (
    MPSystem,
    bidirectional_ring,
    unidirectional_chain,
    unidirectional_ring,
)
from ..runtime.executor import Executor
from ..runtime.faults import CrashScheduler
from ..runtime.program import (
    IdleProgram,
    Program,
    RandomProgramL,
    RandomProgramQ,
    RandomProgramS,
)
from ..runtime.scheduler import (
    KBoundedFairScheduler,
    RandomFairScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from ..topologies import (
    alternating_ring,
    complete_bipartite,
    dining_system,
    figure1_network,
    figure2_network,
    figure3_network,
    path,
    ring,
    star,
    torus_grid,
)
from .trace_io import TraceWriter


class ScenarioError(ReproError):
    """The scenario spec is malformed or names unknown components."""


_TOPOLOGIES = {
    "ring": lambda n: ring(n),
    "alternating-ring": lambda n: alternating_ring(n),
    "path": lambda n: path(n),
    "star": lambda n: star(n),
    "complete": lambda n: complete_bipartite(n, 2),
    "grid": lambda n: torus_grid(n, n),
    # The paper's fixed example systems; ``size`` is ignored.  Figure 3's
    # distinguished processor is expressed as usual via ``marks: ["z"]``.
    "figure1": lambda n: figure1_network(),
    "figure2": lambda n: figure2_network(),
    "figure3": lambda n: figure3_network(),
}

_MODELS = {
    "S": InstructionSet.S,
    "Q": InstructionSet.Q,
    "L": InstructionSet.L,
    "L2": InstructionSet.L2,
}

_RANDOM_PROGRAMS = {
    InstructionSet.S: RandomProgramS,
    InstructionSet.Q: RandomProgramQ,
    InstructionSet.L: RandomProgramL,
    InstructionSet.L2: RandomProgramL,  # L programs are legal under L2
}

_DEFAULTS = {
    "topology": "ring",
    "size": 5,
    "alternating": False,
    "model": "Q",
    "marks": [],
    "program": "random",
    "program_seed": 0,
    "scheduler": "round-robin",
    "sched_seed": 0,
    "k": None,
    "crash_at": {},
}


@dataclass
class ScenarioBundle:
    """A scenario spec made live."""

    spec: Dict[str, Any]
    system: System
    program: Program
    scheduler: Scheduler
    base_scheduler: Scheduler
    crash_at: Dict[Any, int]


def normalize_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Fill defaults; reject unknown keys (typos must not pass silently)."""
    unknown = set(spec) - set(_DEFAULTS)
    if unknown:
        raise ScenarioError(
            f"unknown scenario keys {sorted(unknown)}; "
            f"valid keys are {sorted(_DEFAULTS)}"
        )
    doc = dict(_DEFAULTS)
    doc.update(spec)
    doc["marks"] = list(doc["marks"])
    doc["crash_at"] = {str(p): int(t) for p, t in dict(doc["crash_at"]).items()}
    return doc


def _build_system(doc: Dict[str, Any]) -> System:
    topology = doc["topology"]
    size = int(doc["size"])
    if topology == "dining":
        # lock-based dining programs dictate their instruction set
        if doc["program"] == "both-forks":
            iset = InstructionSet.L2
        elif doc["program"] == "left-first":
            iset = InstructionSet.L
        else:
            iset = _MODELS.get(doc["model"], InstructionSet.L)
        try:
            return dining_system(
                size, alternating=bool(doc["alternating"]), instruction_set=iset
            )
        except NetworkError as exc:
            raise ScenarioError(
                f"cannot build dining table of size {size}: {exc}"
            ) from exc
    if topology not in _TOPOLOGIES:
        raise ScenarioError(
            f"unknown topology {topology!r}; pick from "
            f"{sorted(_TOPOLOGIES) + ['dining']}"
        )
    try:
        net = _TOPOLOGIES[topology](size)
    except NetworkError as exc:
        raise ScenarioError(
            f"cannot build {topology!r} topology of size {size}: {exc}"
        ) from exc
    try:
        iset = _MODELS[doc["model"]]
    except KeyError:
        raise ScenarioError(
            f"unknown model {doc['model']!r}; pick from {sorted(_MODELS)}"
        ) from None
    state = {mark: 1 for mark in doc["marks"]}
    try:
        return System(net, state, iset, ScheduleClass.FAIR)
    except SystemError_ as exc:
        raise ScenarioError(f"bad scenario initial state: {exc}") from exc


def _build_program(doc: Dict[str, Any], system: System) -> Program:
    name = doc["program"]
    seed = int(doc["program_seed"])
    if name == "random":
        return _RANDOM_PROGRAMS[system.instruction_set](system.names, seed=seed)
    if name == "idle":
        return IdleProgram()
    if name == "left-first":
        return LeftFirstDiningProgram()
    if name == "both-forks":
        return MultiLockDiningProgram()
    raise ScenarioError(
        f"unknown program {name!r}; pick from "
        f"['random', 'idle', 'left-first', 'both-forks']"
    )


def _build_base_scheduler(doc: Dict[str, Any], system: System) -> Scheduler:
    name = doc["scheduler"]
    procs = system.processors
    if name == "round-robin":
        return RoundRobinScheduler(procs)
    if name == "random":
        return RandomFairScheduler(procs, seed=int(doc["sched_seed"]))
    if name == "k-bounded":
        k = doc["k"]
        return KBoundedFairScheduler(
            procs, k=None if k is None else int(k), seed=int(doc["sched_seed"])
        )
    raise ScenarioError(
        f"unknown scheduler {name!r}; pick from "
        f"['round-robin', 'random', 'k-bounded']"
    )


def build_scenario(spec: Dict[str, Any], sink=None) -> ScenarioBundle:
    """Build (system, program, scheduler) from a scenario spec.

    ``sink`` is attached to the :class:`CrashScheduler` (when crashes are
    configured) so crash manifestations reach the trace.
    """
    doc = normalize_spec(spec)
    system = _build_system(doc)
    program = _build_program(doc, system)
    base = _build_base_scheduler(doc, system)
    by_str = {str(p): p for p in system.processors}
    try:
        crash_at = {by_str[p]: t for p, t in doc["crash_at"].items()}
    except KeyError as exc:
        raise ScenarioError(f"crash_at names unknown processor {exc}") from None
    scheduler: Scheduler = base
    if crash_at:
        scheduler = CrashScheduler(base, crash_at, system.processors, sink=sink)
    return ScenarioBundle(
        spec=doc,
        system=system,
        program=program,
        scheduler=scheduler,
        base_scheduler=base,
        crash_at=crash_at,
    )


def record_scenario(
    spec: Dict[str, Any],
    steps: int,
    path: str,
    sample_every: Optional[int] = None,
) -> Dict[str, Any]:
    """Run a scenario for ``steps`` steps, streaming the trace to ``path``.

    Returns a summary dict: steps, samples, final digest, output path.
    """
    with open(path, "w", encoding="utf-8") as handle:
        writer = TraceWriter(handle)
        bundle = build_scenario(spec, sink=writer)
        doc = bundle.spec
        if sample_every is None:
            sample_every = max(1, len(bundle.system.processors))
        executor = Executor(
            bundle.system, bundle.program, bundle.scheduler, sink=writer
        )
        writer.write_header(doc, system_to_dict(bundle.system), steps, sample_every)
        writer.sample(executor)
        samples = 1
        for i in range(steps):
            executor.step()
            if (i + 1) % sample_every == 0:
                writer.sample(executor)
                samples += 1
        digest = writer.write_end(executor)
    return {
        "path": path,
        "steps": steps,
        "samples": samples,
        "sample_every": sample_every,
        "final_digest": digest,
        "lines": writer.lines_written,
    }


# ----------------------------------------------------------------------
# message-passing scenarios ("kind": "mp")
# ----------------------------------------------------------------------

_MP_TOPOLOGIES = {
    "ring": unidirectional_ring,
    "bi-ring": bidirectional_ring,
    "chain": unidirectional_chain,
}

_MP_DEFAULTS = {
    "kind": "mp",
    "topology": "ring",
    "size": 5,
    "program": "flood",
    "ids": None,
    "scheduler": "random",
    "sched_seed": 0,
    "stubborn": False,
    "faults": None,
}


@dataclass
class MPScenarioBundle:
    """A message-passing scenario spec made live.

    Executors are minted per run (:meth:`make_executor`) because each
    carries mutable queues and RNGs; the bundle itself is reusable.
    """

    spec: Dict[str, Any]
    mp: MPSystem
    program: MPProgram
    faults: Optional[FaultPlan]

    def make_scheduler(self) -> DeliveryScheduler:
        name = self.spec["scheduler"]
        if name == "random":
            return RandomDeliveryScheduler(int(self.spec["sched_seed"]))
        if name == "fifo":
            return FifoDeliveryScheduler()
        raise ScenarioError(
            f"unknown delivery scheduler {name!r}; pick from ['random', 'fifo']"
        )

    def make_executor(self, sink=None, scheduler=None) -> MPExecutor:
        return MPExecutor(
            self.mp,
            self.program,
            sink=sink,
            scheduler=scheduler if scheduler is not None else self.make_scheduler(),
            faults=self.faults,
        )


def normalize_mp_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Fill defaults; reject unknown keys (typos must not pass silently)."""
    unknown = set(spec) - set(_MP_DEFAULTS)
    if unknown:
        raise ScenarioError(
            f"unknown mp scenario keys {sorted(unknown)}; "
            f"valid keys are {sorted(_MP_DEFAULTS)}"
        )
    doc = dict(_MP_DEFAULTS)
    doc.update(spec)
    if doc["kind"] != "mp":
        raise ScenarioError(f'mp scenario kind must be "mp", got {doc["kind"]!r}')
    size = int(doc["size"])
    if doc["ids"] is None:
        doc["ids"] = list(range(size))
    doc["ids"] = [int(i) for i in doc["ids"]]
    if len(doc["ids"]) != size:
        raise ScenarioError(
            f"ids must have one entry per processor: got {len(doc['ids'])} "
            f"for size {size}"
        )
    doc["stubborn"] = bool(doc["stubborn"])
    if doc["faults"] is not None:
        # round-trip through FaultPlan so the header carries a complete,
        # defaulted manifest (and malformed docs fail here, not mid-run)
        doc["faults"] = FaultPlan.from_json(doc["faults"]).to_json()
    return doc


def build_mp_scenario(spec: Dict[str, Any]) -> MPScenarioBundle:
    """Build (system, program, fault plan) from an MP scenario spec."""
    doc = normalize_mp_spec(spec)
    try:
        builder = _MP_TOPOLOGIES[doc["topology"]]
    except KeyError:
        raise ScenarioError(
            f"unknown mp topology {doc['topology']!r}; "
            f"pick from {sorted(_MP_TOPOLOGIES)}"
        ) from None
    mp = builder(int(doc["size"]), states=dict(enumerate(doc["ids"])))
    name = doc["program"]
    if name == "flood":
        program: MPProgram = FloodProgram()
    elif name == "chang-roberts":
        if doc["topology"] != "ring":
            raise ScenarioError(
                "chang-roberts needs the unidirectional ring topology"
            )
        if len(set(doc["ids"])) != len(doc["ids"]):
            raise ScenarioError("chang-roberts requires unique ids")
        program = ChangRobertsProgram()
    else:
        raise ScenarioError(
            f"unknown mp program {name!r}; pick from ['flood', 'chang-roberts']"
        )
    faults = None if doc["faults"] is None else FaultPlan.from_json(doc["faults"])
    if faults is not None:
        ghosts = set(faults.crash_at) - {str(p) for p in mp.processors}
        if ghosts:
            raise ScenarioError(
                f"faults.crash_at names unknown processors {sorted(ghosts)}"
            )
    bundle = MPScenarioBundle(spec=doc, mp=mp, program=program, faults=faults)
    bundle.make_scheduler()  # validate the scheduler name eagerly
    return bundle


def record_mp_scenario(
    spec: Dict[str, Any],
    deliveries: int,
    path: str,
    sample_every: Optional[int] = None,
    max_idle_rounds: int = 25,
) -> Dict[str, Any]:
    """Run an MP scenario for up to ``deliveries`` deliveries; trace it.

    The header is written *before* the executor exists because on-start
    sends already route through the fault plan — their drop/dup events
    belong in the stream.  With ``stubborn`` in the spec, an idle network
    retransmits (bounded by ``max_idle_rounds``) exactly as
    :func:`repro.messaging.mp_faults.drive_mp` would, so replay can
    reproduce the retransmission points from the spec alone.
    """
    with open(path, "w", encoding="utf-8") as handle:
        writer = TraceWriter(handle)
        bundle = build_mp_scenario(spec)
        doc = bundle.spec
        if sample_every is None:
            sample_every = max(1, len(bundle.mp.processors))
        writer.write_header(doc, mp_system_to_dict(bundle.mp), deliveries, sample_every)
        executor = bundle.make_executor(sink=writer)
        writer.sample(executor)
        samples = 1
        idle_rounds = 0
        while executor.stats.deliveries < deliveries:
            if executor.deliver_one():
                idle_rounds = 0
                if executor.stats.deliveries % sample_every == 0:
                    writer.sample(executor)
                    samples += 1
                continue
            if not doc["stubborn"] or idle_rounds >= max_idle_rounds:
                break
            executor.retransmit()
            idle_rounds += 1
        digest = writer.write_end(executor)
    return {
        "path": path,
        "deliveries": executor.stats.deliveries,
        "samples": samples,
        "sample_every": sample_every,
        "final_digest": digest,
        "lines": writer.lines_written,
        "selected": [str(p) for p in executor.selected()],
        "drops": executor.stats.drops,
        "duplicates": executor.stats.duplicates,
        "crashed": [str(p) for p in executor.crashed()],
    }
