"""Deterministic replay: re-run a recorded trace and verify agreement.

:func:`replay_trace` rebuilds the run from the trace header's scenario
spec and re-executes it, checking, at every step, that the replay
scheduled the same processor, issued the same action, and observed the
same result as the recording — and, at every sampled boundary, that the
whole-configuration digest matches.  On a digest mismatch it diffs the
per-node digests and names the first divergent node, which is the
debugging handle: *which* state went wrong, not just *that* something
did.

Two modes:

* ``"schedule"`` (default) — drive the replay with a
  :class:`~repro.runtime.scheduler.ReplayScheduler` over the recorded
  schedule.  This replays faithfully even if the original scheduler was
  randomized or crash-wrapped: crashes in this codebase are purely
  schedule-level (a crashed processor simply stops appearing), so the
  recorded schedule already embeds their effect.
* ``"scheduler"`` — rebuild the original seeded scheduler stack
  (including the :class:`~repro.runtime.faults.CrashScheduler` wrapper)
  and let *it* choose.  This additionally verifies that the scheduler
  itself is deterministic: any drift shows up as a schedule divergence.

Either way, agreement at every sampled digest plus agreement on every
step document means the replayed execution is the recorded execution.

Counterexample traces written by the schedule-space explorer
(``"kind": "explore"``, see :mod:`repro.analysis.explore`) replay
through :func:`replay_explore_trace`: the recorded schedule is an
explicit choice sequence, so only ``"schedule"`` mode applies, and the
replay additionally re-establishes — via
:func:`repro.analysis.explore.verify_counterexample` — that the final
configuration really violates what the explorer claimed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..messaging.mp_scheduler import DeliveryReplayError, ReplayDeliveryScheduler
from ..runtime.executor import Executor
from ..runtime.scheduler import ReplayScheduler
from .events import StepExecuted
from .scenarios import build_mp_scenario, build_scenario
from .trace_io import (
    Trace,
    TraceError,
    config_digest,
    digest_matches,
    load_trace,
    node_digests,
)

_REPLAY_MODES = ("schedule", "scheduler")


@dataclass(frozen=True)
class Divergence:
    """The first point where the replay disagreed with the recording.

    Attributes:
        step: the step index (for config divergences, the sampled step).
        reason: one of ``"schedule"``, ``"action"``, ``"result"``,
            ``"noop"``, ``"config"``, ``"end"``.
        expected: what the trace recorded.
        actual: what the replay produced.
        node: for config divergences, the first node (in system order)
            whose state digest differs; None otherwise.
        node_expected: recorded digest of that node's state.
        node_actual: replayed digest of that node's state.
    """

    step: int
    reason: str
    expected: Any
    actual: Any
    node: Optional[str] = None
    node_expected: Optional[str] = None
    node_actual: Optional[str] = None

    def describe(self) -> str:
        msg = (
            f"step {self.step}: {self.reason} divergence — "
            f"recorded {self.expected!r}, replayed {self.actual!r}"
        )
        if self.node is not None:
            msg += (
                f"; first divergent node {self.node} "
                f"({self.node_expected} -> {self.node_actual})"
            )
        return msg


@dataclass
class ReplayReport:
    """Outcome of a replay run."""

    ok: bool
    mode: str
    steps_replayed: int
    samples_checked: int
    divergence: Optional[Divergence] = None
    final_digest: Optional[str] = None
    scenario: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        if self.ok:
            return (
                f"replay ok ({self.mode} mode): {self.steps_replayed} steps, "
                f"{self.samples_checked} samples agree, "
                f"final digest {self.final_digest}"
            )
        assert self.divergence is not None
        return f"replay FAILED ({self.mode} mode): {self.divergence.describe()}"


class _LastStep:
    """A one-slot sink capturing the most recent step event."""

    def __init__(self) -> None:
        self.doc: Optional[Dict[str, Any]] = None

    def on_event(self, event) -> None:
        if isinstance(event, StepExecuted):
            self.doc = event.to_json()


def _first_node_diff(executor, recorded_nodes: Dict[str, str]):
    """The first node (in system order) whose replayed state no longer
    matches its recorded digest (current or legacy scheme)."""
    actual = node_digests(executor)
    for node in executor.system.nodes:
        key = str(node)
        if not digest_matches(recorded_nodes.get(key), executor.node_state(node)):
            return key, recorded_nodes.get(key), actual.get(key)
    return None, None, None


def _step_divergence(i: int, rec: Dict[str, Any], got: Dict[str, Any]):
    for reason, key in (
        ("schedule", "p"),
        ("action", "action"),
        ("result", "r"),
        ("noop", "noop"),
    ):
        if rec.get(key) != got.get(key):
            return Divergence(i, reason, rec.get(key), got.get(key))
    return None


def replay_trace(
    trace: Union[Trace, str],
    mode: str = "schedule",
) -> ReplayReport:
    """Replay ``trace`` (a :class:`Trace` or a file path) and verify it.

    Dispatches on the scenario's ``kind``: shared-variable traces replay
    step-by-step here; message-passing traces (``"kind": "mp"``) go
    through :func:`replay_mp_trace`.
    """
    if isinstance(trace, str):
        trace = load_trace(trace)
    if mode not in _REPLAY_MODES:
        raise TraceError(f"unknown replay mode {mode!r}; pick from {_REPLAY_MODES}")
    if not trace.scenario:
        raise TraceError("trace header carries no scenario spec; cannot rebuild")
    if trace.scenario.get("kind") == "mp":
        return replay_mp_trace(trace, mode=mode)
    if trace.scenario.get("kind") == "explore":
        return replay_explore_trace(trace, mode=mode)

    bundle = build_scenario(trace.scenario)
    by_str = {str(p): p for p in bundle.system.processors}
    if mode == "schedule":
        try:
            prefix = [by_str[p] for p in trace.schedule()]
        except KeyError as exc:
            raise TraceError(f"recorded schedule names unknown processor {exc}") from None
        scheduler = ReplayScheduler(prefix)
    else:
        scheduler = bundle.scheduler
    return _replay_sv_steps(trace, bundle, scheduler, mode)


def _replay_sv_steps(trace: Trace, bundle, scheduler, mode: str) -> ReplayReport:
    """Shared-variable step replay core: re-execute and verify."""
    last = _LastStep()
    executor = Executor(bundle.system, bundle.program, scheduler, sink=last)
    samples = trace.samples_by_step()
    report = ReplayReport(
        ok=True,
        mode=mode,
        steps_replayed=0,
        samples_checked=0,
        scenario=dict(trace.scenario),
    )

    def check_sample(step: int) -> Optional[Divergence]:
        doc = samples.get(step)
        if doc is None:
            return None
        report.samples_checked += 1
        if digest_matches(doc.get("digest"), executor.configuration()):
            return None
        node, exp, act = _first_node_diff(executor, doc.get("nodes", {}))
        return Divergence(
            step, "config", doc.get("digest"), config_digest(executor),
            node=node, node_expected=exp, node_actual=act,
        )

    divergence = check_sample(0)
    if divergence is None:
        for i, rec in enumerate(trace.steps):
            executor.step()
            report.steps_replayed += 1
            divergence = _step_divergence(i, rec, last.doc or {})
            if divergence is None:
                divergence = check_sample(executor.step_count)
            if divergence is not None:
                break

    if divergence is None and trace.end is not None:
        if not digest_matches(trace.end.get("digest"), executor.configuration()):
            divergence = Divergence(
                executor.step_count,
                "end",
                trace.end.get("digest"),
                config_digest(executor),
            )

    report.final_digest = config_digest(executor)
    if divergence is not None:
        report.ok = False
        report.divergence = divergence
    return report


# ----------------------------------------------------------------------
# explorer-counterexample replay
# ----------------------------------------------------------------------


def replay_explore_trace(
    trace: Union[Trace, str],
    mode: str = "schedule",
) -> ReplayReport:
    """Replay an explorer counterexample trace and re-verify its claim.

    The trace's scenario document (``"kind": "explore"``) wraps the
    underlying run spec (``"run"``), the exploration spec, and the
    violation.  The recorded schedule is an explicit choice sequence —
    there is no original scheduler to rebuild — so only ``"schedule"``
    mode is meaningful and ``"scheduler"`` mode is rejected.

    Beyond the usual byte-level step/digest agreement, the replay calls
    :func:`repro.analysis.explore.verify_counterexample` to re-establish
    independently that the schedule really produces the recorded
    deadlock / livelock / invariant violation; a mismatch is reported as
    a ``"violation"`` divergence at the violation's depth.
    """
    if isinstance(trace, str):
        trace = load_trace(trace)
    if mode != "schedule":
        raise TraceError(
            "explore counterexamples embed an explicit schedule; only "
            "'schedule' replay mode applies"
        )
    header = trace.scenario
    run_spec = header.get("run")
    if not isinstance(run_spec, dict):
        raise TraceError("explore trace header carries no 'run' scenario spec")

    bundle = build_scenario(run_spec)
    by_str = {str(p): p for p in bundle.system.processors}
    try:
        prefix = [by_str[p] for p in trace.schedule()]
    except KeyError as exc:
        raise TraceError(f"recorded schedule names unknown processor {exc}") from None
    report = _replay_sv_steps(trace, bundle, ReplayScheduler(prefix), mode)
    report.scenario = dict(header)
    if report.ok:
        from ..analysis.explore import verify_counterexample

        mismatch = verify_counterexample(header)
        if mismatch is not None:
            violation = header.get("violation") or {}
            report.ok = False
            report.divergence = Divergence(
                step=int(violation.get("depth", len(prefix))),
                reason="violation",
                expected=violation,
                actual=mismatch,
            )
    return report


# ----------------------------------------------------------------------
# message-passing replay
# ----------------------------------------------------------------------


class _DocCapture:
    """A sink collecting MP event documents (delivery / drop / dup / crash)."""

    _KINDS = ("delivery", "drop", "dup", "mp-crash")

    def __init__(self) -> None:
        self.docs: List[Dict[str, Any]] = []

    def on_event(self, event) -> None:
        doc = event.to_json()
        if doc.get("kind") in self._KINDS:
            self.docs.append(doc)


def _mp_doc_divergence(i: int, rec: Optional[Dict[str, Any]], got: Optional[Dict[str, Any]]):
    """Name the first divergent MP event.

    ``step`` is the delivery-clock index the event carries (falling back
    to the stream position), so the message points at *which delivery*
    went wrong, not just where in the file.
    """
    source = got if got is not None else rec
    step = int(source.get("i", source.get("crash_index", i))) if source else i
    reason = "delivery" if (source or {}).get("kind") == "delivery" else "fault"
    return Divergence(step, reason, rec, got)


def replay_mp_trace(
    trace: Union[Trace, str],
    mode: str = "schedule",
) -> ReplayReport:
    """Replay a message-passing trace and verify byte-level agreement.

    The replayed run must reproduce the recording's *entire* interleaved
    event stream — every delivery in order, and every drop, duplication,
    and crash manifestation in between — plus every sampled
    configuration digest.  The first disagreement is reported as a
    :class:`Divergence` naming the delivery (or fault) where the runs
    parted ways.

    Modes mirror :func:`replay_trace`: ``"schedule"`` forces the
    recorded delivery sequence through a
    :class:`~repro.messaging.mp_scheduler.ReplayDeliveryScheduler`
    (faults still come from the seeded plan, whose coins are a function
    of the delivery schedule); ``"scheduler"`` rebuilds the seeded
    delivery scheduler and additionally verifies it is deterministic.
    """
    if isinstance(trace, str):
        trace = load_trace(trace)
    if mode not in _REPLAY_MODES:
        raise TraceError(f"unknown replay mode {mode!r}; pick from {_REPLAY_MODES}")
    scenario = trace.scenario
    if scenario.get("kind") != "mp":
        raise TraceError("not a message-passing trace (scenario kind != 'mp')")

    bundle = build_mp_scenario(scenario)
    recorded = trace.mp_events
    recorded_deliveries = [d for d in recorded if d["kind"] == "delivery"]
    if mode == "schedule":
        scheduler = ReplayDeliveryScheduler(
            [(d["to"], d["port"]) for d in recorded_deliveries]
        )
    else:
        scheduler = bundle.make_scheduler()

    capture = _DocCapture()
    executor = bundle.make_executor(sink=capture, scheduler=scheduler)
    samples = trace.samples_by_step()
    report = ReplayReport(
        ok=True,
        mode=mode,
        steps_replayed=0,
        samples_checked=0,
        scenario=dict(scenario),
    )

    cursor = 0

    def check_docs() -> Optional[Divergence]:
        """Compare newly captured events against the recorded stream."""
        nonlocal cursor
        while cursor < len(capture.docs):
            rec = recorded[cursor] if cursor < len(recorded) else None
            got = capture.docs[cursor]
            if rec != got:
                return _mp_doc_divergence(cursor, rec, got)
            cursor += 1
        return None

    def check_sample(step: int) -> Optional[Divergence]:
        doc = samples.get(step)
        if doc is None:
            return None
        report.samples_checked += 1
        if digest_matches(doc.get("digest"), executor.configuration()):
            return None
        node, exp, act = _first_node_diff(executor, doc.get("nodes", {}))
        return Divergence(
            step, "config", doc.get("digest"), config_digest(executor),
            node=node, node_expected=exp, node_actual=act,
        )

    # On-start sends already routed (and possibly dropped) during
    # construction; their events must open the stream identically.
    divergence = check_docs()
    if divergence is None:
        divergence = check_sample(0)

    stubborn = bool(scenario.get("stubborn"))
    idle_rounds = 0
    while divergence is None and report.steps_replayed < len(recorded_deliveries):
        try:
            delivered = executor.deliver_one()
        except DeliveryReplayError as exc:
            rec = recorded_deliveries[report.steps_replayed]
            divergence = Divergence(
                exc.index, "delivery", rec,
                {"pending": sorted(exc.pending)},
            )
            break
        if delivered:
            report.steps_replayed += 1
            idle_rounds = 0
            divergence = check_docs()
            if divergence is None:
                divergence = check_sample(executor.step_count)
            continue
        if stubborn and idle_rounds < 25:
            executor.retransmit()
            idle_rounds += 1
            divergence = check_docs()
            continue
        rec = recorded_deliveries[report.steps_replayed]
        divergence = Divergence(
            int(rec.get("i", report.steps_replayed)), "delivery", rec, None
        )

    if divergence is None and cursor < len(recorded):
        # the recording has events the replay never produced
        divergence = _mp_doc_divergence(cursor, recorded[cursor], None)

    if divergence is None and trace.end is not None:
        if not digest_matches(trace.end.get("digest"), executor.configuration()):
            divergence = Divergence(
                executor.step_count,
                "end",
                trace.end.get("digest"),
                config_digest(executor),
            )

    report.final_digest = config_digest(executor)
    if divergence is not None:
        report.ok = False
        report.divergence = divergence
    return report
