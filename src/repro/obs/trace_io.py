"""Trace files: recorded runs as JSONL, with stable configuration digests.

A *trace* is a line-oriented JSON file:

* line 1 — a ``header`` document: format version, the scenario spec that
  rebuilds the run (see :mod:`repro.obs.scenarios`), the serialized
  system (:func:`repro.io.system_to_dict`, for human inspection), the
  step budget, and the sampling stride;
* then, in step order — ``step`` events (one per executed step, carrying
  the scheduled processor, the action, its result repr, and the no-op
  flag), interleaved with ``crash`` events and ``config`` samples (a
  whole-configuration digest plus per-node state digests every
  ``sample_every`` steps, starting with the initial configuration);
* last line — an ``end`` document with the final step count and digest.

Digests are SHA-256 over the canonical byte encoding
(:func:`repro.core.encoding.encode_value`), truncated to 16 hex chars —
injective and independent of repr formatting, dict/set iteration order,
and ``PYTHONHASHSEED`` *by construction*, not by the accident that the
values recorded so far happened to have order-stable reprs.  Traces
written before this change digested ``repr(value)`` instead; replay
accepts those legacy digests too (:func:`digest_matches` compares a
recorded digest against both encodings), so old trace files keep
verifying.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.encoding import encode_value
from ..exceptions import ReproError
from .sinks import JsonlSink

TRACE_VERSION = 1


class TraceError(ReproError):
    """The trace file is malformed or incompatible."""


def stable_digest(value: Any) -> str:
    """A short hex digest of ``value``'s canonical byte encoding.

    Routed through :func:`~repro.core.encoding.encode_value`, so the
    digest is injective on the encodable value space and independent of
    repr formatting and hash-randomized iteration order — the same
    retirement of repr-keying that PR 6 applied to the analysis caches.
    """
    return hashlib.sha256(encode_value(value)).hexdigest()[:16]


def legacy_digest(value: Any) -> str:
    """The pre-encoding digest (SHA-256 of ``repr(value)``): what traces
    recorded before :func:`stable_digest` moved to canonical bytes.
    Kept only so replays of old trace files still verify."""
    return hashlib.sha256(repr(value).encode("utf-8")).hexdigest()[:16]


def digest_matches(recorded: Optional[str], value: Any) -> bool:
    """Does a digest recorded in a trace match ``value``?

    Accepts the current encoding-based digest and, failing that, the
    legacy repr-based one — replay of an old trace must not report
    divergence just because the digest scheme moved on.
    """
    if recorded is None:
        return False
    return recorded == stable_digest(value) or recorded == legacy_digest(value)


def config_digest(executor) -> str:
    """Digest of the executor's whole-system configuration."""
    return stable_digest(executor.configuration())


def node_digests(executor) -> Dict[str, str]:
    """Per-node state digests, keyed by ``str(node)``."""
    return {
        str(node): stable_digest(executor.node_state(node))
        for node in executor.system.nodes
    }


class TraceWriter(JsonlSink):
    """A :class:`JsonlSink` that also knows the trace framing.

    Attach it to an executor (``sink=writer``) and a
    :class:`~repro.runtime.faults.CrashScheduler`; call
    :meth:`write_header` first, :meth:`sample` at boundaries, and
    :meth:`write_end` when done.
    """

    def write_header(
        self,
        scenario: Dict[str, Any],
        system_doc: Dict[str, Any],
        steps: int,
        sample_every: int,
    ) -> None:
        self.write_doc(
            {
                "kind": "header",
                "version": TRACE_VERSION,
                "scenario": scenario,
                "system": system_doc,
                "steps": steps,
                "sample_every": sample_every,
            }
        )

    def sample(self, executor) -> str:
        """Write a ``config`` sample for the executor's current state."""
        digest = config_digest(executor)
        self.write_doc(
            {
                "kind": "config",
                "step": executor.step_count,
                "digest": digest,
                "nodes": node_digests(executor),
            }
        )
        return digest

    def write_end(self, executor) -> str:
        digest = config_digest(executor)
        self.write_doc(
            {"kind": "end", "steps": executor.step_count, "digest": digest}
        )
        return digest


@dataclass
class Trace:
    """A parsed trace file.

    Attributes:
        header: the header document.
        steps: the ``step`` documents, in order.
        samples: the ``config`` documents, in order (first is the initial
            configuration).
        crashes: the ``crash`` documents.
        end: the ``end`` document (None for a truncated trace).
        extras: any other event documents (deliveries, refinement stats).
    """

    header: Dict[str, Any]
    steps: List[Dict[str, Any]] = field(default_factory=list)
    samples: List[Dict[str, Any]] = field(default_factory=list)
    crashes: List[Dict[str, Any]] = field(default_factory=list)
    end: Optional[Dict[str, Any]] = None
    extras: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def scenario(self) -> Dict[str, Any]:
        return self.header.get("scenario", {})

    @property
    def sample_every(self) -> int:
        return int(self.header.get("sample_every", 0))

    def schedule(self) -> List[str]:
        """The recorded schedule as ``str(processor)`` ids."""
        return [doc["p"] for doc in self.steps]

    #: event kinds emitted by the message-passing executor, in-stream
    _MP_KINDS = ("delivery", "drop", "dup", "mp-crash")

    @property
    def mp_events(self) -> List[Dict[str, Any]]:
        """Message-passing events (deliveries and faults), in order.

        The interleaved order is significant: fault events caused by the
        sends of delivery *i* appear before the ``delivery`` document
        for *i*, and replay compares the whole stream positionally.
        """
        return [d for d in self.extras if d.get("kind") in self._MP_KINDS]

    @property
    def deliveries(self) -> List[Dict[str, Any]]:
        """Just the ``delivery`` documents, in delivery order."""
        return [d for d in self.extras if d.get("kind") == "delivery"]

    def samples_by_step(self) -> Dict[int, Dict[str, Any]]:
        return {int(doc["step"]): doc for doc in self.samples}


def parse_trace(lines) -> Trace:
    """Parse an iterable of JSONL lines into a :class:`Trace`."""
    trace: Optional[Trace] = None
    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise TraceError(f"line {lineno}: invalid JSON: {exc}") from exc
        kind = doc.get("kind")
        if trace is None:
            if kind != "header":
                raise TraceError(
                    f"line {lineno}: expected a header document, got {kind!r}"
                )
            version = doc.get("version")
            if version != TRACE_VERSION:
                raise TraceError(
                    f"unsupported trace version {version!r} "
                    f"(this reader understands {TRACE_VERSION})"
                )
            trace = Trace(header=doc)
        elif kind == "step":
            trace.steps.append(doc)
        elif kind == "config":
            trace.samples.append(doc)
        elif kind == "crash":
            trace.crashes.append(doc)
        elif kind == "end":
            trace.end = doc
        else:
            trace.extras.append(doc)
    if trace is None:
        raise TraceError("empty trace file")
    return trace


def load_trace(path: str) -> Trace:
    """Load and parse a trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_trace(handle)
