"""Pluggable event sinks: ring buffer, JSONL writer, metrics collector.

A sink is anything with ``on_event(event)`` (and optionally ``close()``).
The three provided here cover the common observation modes:

* :class:`RingBufferSink` — keep the last N events in memory, for tests
  and interactive inspection;
* :class:`JsonlSink` — append one JSON object per event to a file-like
  stream (the trace writer in :mod:`repro.obs.trace_io` builds on it);
* :class:`MetricsSink` — no event retention at all, just counters and
  timers: steps per action type and per processor, deliveries, crashes,
  refinement stats.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import Any, Deque, Dict, IO, Optional, Tuple

from .events import (
    ConfigSampled,
    CrashManifested,
    Event,
    MessageDelivered,
    MessageDropped,
    MessageDuplicated,
    ProcessorCrashedMP,
    RefinementCompleted,
    StepExecuted,
)


class EventSink:
    """Base class for sinks (subclassing is optional, duck-typing works)."""

    def on_event(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further events are undefined behavior."""


class RingBufferSink(EventSink):
    """Keep the most recent ``capacity`` events (all of them if None)."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._buffer: Deque[Event] = deque(maxlen=capacity)

    def on_event(self, event: Event) -> None:
        self._buffer.append(event)

    def events(self, kind: Optional[str] = None) -> Tuple[Event, ...]:
        """The buffered events, optionally filtered by ``kind``."""
        if kind is None:
            return tuple(self._buffer)
        return tuple(e for e in self._buffer if e.kind == kind)

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()


class JsonlSink(EventSink):
    """Write every event as one JSON line to a text stream.

    The sink does not own the stream unless ``owns`` is set (then
    ``close`` closes it).  Keys are sorted so equal event streams give
    byte-identical files — the property the hash-seed determinism tests
    rely on.
    """

    def __init__(self, stream: IO[str], owns: bool = False) -> None:
        self._stream = stream
        self._owns = owns
        self.lines_written = 0

    def write_doc(self, doc: Dict[str, Any]) -> None:
        """Write an arbitrary JSON document line (headers, footers)."""
        self._stream.write(json.dumps(doc, sort_keys=True))
        self._stream.write("\n")
        self.lines_written += 1

    def on_event(self, event: Event) -> None:
        self.write_doc(event.to_json())

    def close(self) -> None:
        if self._owns:
            self._stream.close()


class MetricsSink(EventSink):
    """Counters and timers over the event stream; retains no events.

    Attributes:
        steps: executed steps (includes no-op steps).
        noop_steps: scheduled slots wasted on halted processors.
        steps_by_action: Counter of action type names (real steps only).
        steps_by_processor: Counter of ``str(processor)`` (real steps only).
        deliveries: message deliveries seen.
        drops: message-passing sends lost by a channel fault policy.
        duplicates: message-passing sends duplicated by a fault policy.
        mp_crashes: crash-stop manifestations in the message-passing
            simulator, as ``(processor, crash_index)``.
        crashes: crash manifestations, as ``(processor, crash_step)``.
        samples: configuration samples seen.
        refinements: completed refinement runs ``(engine, rounds, splits,
            classes)``.
        timers: accumulated seconds by name (refinement engines report
            under ``refinement:<engine>``).
    """

    def __init__(self) -> None:
        self.steps = 0
        self.noop_steps = 0
        self.steps_by_action: Counter = Counter()
        self.steps_by_processor: Counter = Counter()
        self.deliveries = 0
        self.drops = 0
        self.duplicates = 0
        self.mp_crashes: list = []
        self.crashes: list = []
        self.samples = 0
        self.refinements: list = []
        self.timers: Dict[str, float] = {}

    def add_timing(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def on_event(self, event: Event) -> None:
        if isinstance(event, StepExecuted):
            self.steps += 1
            record = event.record
            if record.noop:
                self.noop_steps += 1
            else:
                self.steps_by_action[type(record.action).__name__] += 1
                self.steps_by_processor[str(record.processor)] += 1
        elif isinstance(event, MessageDelivered):
            self.deliveries += 1
        elif isinstance(event, MessageDropped):
            self.drops += 1
        elif isinstance(event, MessageDuplicated):
            self.duplicates += 1
        elif isinstance(event, ProcessorCrashedMP):
            self.mp_crashes.append((event.processor, event.crash_index))
        elif isinstance(event, CrashManifested):
            self.crashes.append((event.processor, event.crash_step))
        elif isinstance(event, ConfigSampled):
            self.samples += 1
        elif isinstance(event, RefinementCompleted):
            self.refinements.append(
                (event.engine, event.rounds, event.splits, event.classes)
            )
            self.add_timing(f"refinement:{event.engine}", event.elapsed)

    def summary(self) -> Dict[str, Any]:
        """A JSON-ready digest of everything counted so far."""
        return {
            "steps": self.steps,
            "noop_steps": self.noop_steps,
            "steps_by_action": dict(self.steps_by_action),
            "steps_by_processor": dict(self.steps_by_processor),
            "deliveries": self.deliveries,
            "drops": self.drops,
            "duplicates": self.duplicates,
            "mp_crashes": [(str(p), t) for p, t in self.mp_crashes],
            "crashes": [(str(p), t) for p, t in self.crashes],
            "samples": self.samples,
            "refinements": list(self.refinements),
            "timers": dict(self.timers),
        }
