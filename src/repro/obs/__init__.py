"""repro.obs — structured-event observability and deterministic replay.

One instrumentation layer threads through the whole codebase:

* the shared-variable :class:`~repro.runtime.executor.Executor` (and its
  recording subclass), the message-passing
  :class:`~repro.messaging.mp_runtime.MPExecutor`, the
  :class:`~repro.runtime.faults.CrashScheduler`, and the three
  refinement engines all emit typed events (:mod:`repro.obs.events`);
* events flow to pluggable sinks (:mod:`repro.obs.sinks`): in-memory
  ring buffer, JSONL file writer, metrics counters/timers;
* a recorded run serializes to a JSONL *trace* — schedule, seeds,
  per-step actions, sampled configuration digests — which
  :func:`replay_trace` reloads and re-executes, asserting digest
  agreement at every sampled step and diffing the first divergent node
  state on mismatch (:mod:`repro.obs.replay`);
* :mod:`repro.obs.report` renders a loaded trace back into the census /
  timeline / metrics views.

Only :mod:`~repro.obs.events` and :mod:`~repro.obs.sinks` are imported
eagerly (they are dependency-free, so the runtime can import them
without cycles); the trace/replay/report machinery loads on first
attribute access.
"""

from .events import (
    ConfigSampled,
    CrashManifested,
    Event,
    EventHub,
    ExplorationProgress,
    InvariantViolated,
    MessageDelivered,
    MessageDropped,
    MessageDuplicated,
    ProcessorCrashedMP,
    RefinementCompleted,
    RefinementRound,
    ServeDegraded,
    ServeWave,
    StepExecuted,
    StoreEvicted,
    WitnessFound,
    WitnessSearchProgress,
)
from .sinks import EventSink, JsonlSink, MetricsSink, RingBufferSink

_LAZY = {
    # trace serialization
    "Trace": "trace_io",
    "TraceError": "trace_io",
    "TraceWriter": "trace_io",
    "config_digest": "trace_io",
    "digest_matches": "trace_io",
    "legacy_digest": "trace_io",
    "load_trace": "trace_io",
    "node_digests": "trace_io",
    "stable_digest": "trace_io",
    # scenarios (named, JSON-serializable run specs)
    "MPScenarioBundle": "scenarios",
    "ScenarioBundle": "scenarios",
    "ScenarioError": "scenarios",
    "build_mp_scenario": "scenarios",
    "build_scenario": "scenarios",
    "record_mp_scenario": "scenarios",
    "record_scenario": "scenarios",
    # replay
    "Divergence": "replay",
    "ReplayReport": "replay",
    "replay_explore_trace": "replay",
    "replay_mp_trace": "replay",
    "replay_trace": "replay",
    # reporting
    "mp_trace_report": "report",
    "trace_census": "report",
    "trace_report": "report",
    "trace_timeline": "report",
}

__all__ = [
    "ConfigSampled",
    "CrashManifested",
    "Event",
    "EventHub",
    "EventSink",
    "ExplorationProgress",
    "InvariantViolated",
    "JsonlSink",
    "MessageDelivered",
    "MessageDropped",
    "MessageDuplicated",
    "MetricsSink",
    "ProcessorCrashedMP",
    "RefinementCompleted",
    "RefinementRound",
    "RingBufferSink",
    "ServeDegraded",
    "ServeWave",
    "StepExecuted",
    "StoreEvicted",
    "WitnessFound",
    "WitnessSearchProgress",
] + sorted(_LAZY)


def __getattr__(name):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
