"""A small asynchronous message-passing simulator.

Complements the shared-variable executor for the Section 6 models and the
message-passing baselines (Chang-Roberts).  Channels are FIFO queues; one
*step* delivers one message to its receiver (or fires a processor's
start-up).  A scheduler (here: seeded random or FIFO over channels)
resolves the nondeterminism; fairness means every sent message is
eventually delivered.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, List, Tuple

from ..core.names import NodeId, State
from ..exceptions import ExecutionError
from ..obs.events import EventHub, MessageDelivered
from .mp_system import Channel, MPSystem


class MPProgram(ABC):
    """An anonymous deterministic message-passing program.

    ``on_start`` runs once per processor before any delivery, receiving
    the node's initial state and its *local wiring* (the tuple of its
    out-port names -- local knowledge, like NAMES in the shared-variable
    model, not an identity); ``on_message`` handles one delivered
    message.  Both return the new local state plus a list of
    ``(out_port, payload)`` sends.
    """

    @abstractmethod
    def on_start(
        self, state0: State, out_ports: Tuple[str, ...] = ()
    ) -> Tuple[Hashable, List[Tuple[str, Hashable]]]:
        ...

    @abstractmethod
    def on_message(
        self, state: Hashable, port: str, payload: Hashable
    ) -> Tuple[Hashable, List[Tuple[str, Hashable]]]:
        ...

    def is_selected(self, state: Hashable) -> bool:
        return False


@dataclass
class MPExecutorStats:
    deliveries: int = 0
    sends: int = 0


class MPExecutor:
    """Run an :class:`MPProgram` on an :class:`MPSystem`."""

    def __init__(
        self, mp: MPSystem, program: MPProgram, seed: int = 0, sink=None
    ) -> None:
        self.mp = mp
        self.program = program
        self.rng = random.Random(seed)
        self.stats = MPExecutorStats()
        #: structured-event hub (:mod:`repro.obs`); one
        #: :class:`~repro.obs.events.MessageDelivered` per delivery.
        self.events = EventHub()
        if sink is not None:
            self.events.attach(sink)
        self.local: Dict[NodeId, Hashable] = {}
        self.queues: Dict[Channel, Deque[Hashable]] = {c: deque() for c in mp.channels}
        self._out_index: Dict[Tuple[NodeId, str], Channel] = {
            (c.sender, c.out_port): c for c in mp.channels
        }
        for p in mp.processors:
            out_ports = tuple(sorted(c.out_port for c in mp.out_channels(p)))
            state, sends = program.on_start(mp.state0(p), out_ports)
            self.local[p] = state
            self._send_all(p, sends)

    def _send_all(self, sender: NodeId, sends: List[Tuple[str, Hashable]]) -> None:
        for out_port, payload in sends:
            try:
                channel = self._out_index[(sender, out_port)]
            except KeyError:
                raise ExecutionError(
                    f"{sender!r} has no out-port {out_port!r}"
                ) from None
            self.queues[channel].append(payload)
            self.stats.sends += 1

    def pending_channels(self) -> List[Channel]:
        return [c for c, q in self.queues.items() if q]

    def deliver_one(self) -> bool:
        """Deliver one randomly chosen pending message; False if idle."""
        pending = self.pending_channels()
        if not pending:
            return False
        channel = self.rng.choice(pending)
        payload = self.queues[channel].popleft()
        state, sends = self.program.on_message(
            self.local[channel.receiver], channel.port, payload
        )
        self.local[channel.receiver] = state
        self._send_all(channel.receiver, sends)
        if self.events.active:
            self.events.emit(
                MessageDelivered(
                    index=self.stats.deliveries,
                    sender=channel.sender,
                    receiver=channel.receiver,
                    port=channel.port,
                    payload=payload,
                )
            )
        self.stats.deliveries += 1
        return True

    def run_to_quiescence(self, max_deliveries: int = 1_000_000) -> bool:
        """Deliver until no messages remain; False if the cap was hit."""
        for _ in range(max_deliveries):
            if not self.deliver_one():
                return True
        return not self.pending_channels()

    def selected(self) -> Tuple[NodeId, ...]:
        return tuple(
            p for p in self.mp.processors if self.program.is_selected(self.local[p])
        )
