"""A small asynchronous message-passing simulator.

Complements the shared-variable executor for the Section 6 models and the
message-passing baselines (Chang-Roberts).  Channels are FIFO queues; one
*step* delivers one message to its receiver (or fires a processor's
start-up).  A :class:`~repro.messaging.mp_scheduler.DeliveryScheduler`
resolves the nondeterminism (default: seeded random, fair with
probability 1); a :class:`~repro.messaging.mp_faults.FaultPlan` may lose,
duplicate, or delay sends and crash-stop processors.  Both are optional
and composed -- existing call sites run exactly as before.

Determinism contract: with a fixed system, program, scheduler, and fault
plan, a run is a pure function of the seeds.  Replaying the recorded
delivery schedule (:class:`~repro.messaging.mp_scheduler.ReplayDeliveryScheduler`)
with the same fault seed reproduces every drop, duplicate, delay, and
crash, because fault coins are drawn in a fixed order per routed send.
"""

from __future__ import annotations

import heapq
import random
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, List, Optional, Set, Tuple

from ..core.names import NodeId, State
from ..exceptions import ExecutionError
from ..obs.events import (
    EventHub,
    MessageDelivered,
    MessageDropped,
    MessageDuplicated,
    ProcessorCrashedMP,
)
from .mp_scheduler import DeliveryScheduler, RandomDeliveryScheduler
from .mp_system import Channel, MPSystem


class MPProgram(ABC):
    """An anonymous deterministic message-passing program.

    ``on_start`` runs once per processor before any delivery, receiving
    the node's initial state and its *local wiring* (the tuple of its
    out-port names -- local knowledge, like NAMES in the shared-variable
    model, not an identity); ``on_message`` handles one delivered
    message.  Both return the new local state plus a list of
    ``(out_port, payload)`` sends.
    """

    @abstractmethod
    def on_start(
        self, state0: State, out_ports: Tuple[str, ...] = ()
    ) -> Tuple[Hashable, List[Tuple[str, Hashable]]]:
        ...

    @abstractmethod
    def on_message(
        self, state: Hashable, port: str, payload: Hashable
    ) -> Tuple[Hashable, List[Tuple[str, Hashable]]]:
        ...

    def is_selected(self, state: Hashable) -> bool:
        return False


class FloodProgram(MPProgram):
    """Flood the maximum initial value (anonymous max-propagation).

    Local state is ``(best_value_seen, out_ports)``; any strictly larger
    received value is adopted and re-flooded.  Terminating (values only
    grow, bounded by the global maximum), idempotent under duplication,
    and visibly incomplete under unrecovered loss -- which makes it the
    scenario workhorse for the fault experiments.
    """

    def on_start(
        self, state0: State, out_ports: Tuple[str, ...] = ()
    ) -> Tuple[Hashable, List[Tuple[str, Hashable]]]:
        ports = tuple(out_ports)
        return (state0, ports), [(port, state0) for port in ports]

    def on_message(
        self, state: Hashable, port: str, payload: Hashable
    ) -> Tuple[Hashable, List[Tuple[str, Hashable]]]:
        value, ports = state
        if payload > value:
            return (payload, ports), [(p, payload) for p in ports]
        return state, []


@dataclass
class MPExecutorStats:
    """Counters for one run (reset together with the executor).

    ``sends`` counts program-emitted sends; duplicated copies and
    stubborn resends are counted separately (``duplicates``,
    ``retransmissions``).  ``discarded`` counts messages thrown away
    because their receiver crash-stopped.
    """

    deliveries: int = 0
    sends: int = 0
    drops: int = 0
    duplicates: int = 0
    delayed: int = 0
    discarded: int = 0
    retransmissions: int = 0


class MPExecutor:
    """Run an :class:`MPProgram` on an :class:`MPSystem`.

    Args:
        mp: the system.
        program: the program.
        seed: seed for the default random delivery scheduler (ignored
            when an explicit ``scheduler`` is given).
        sink: optional event sink (:mod:`repro.obs`).
        scheduler: delivery-order policy; defaults to
            :class:`~repro.messaging.mp_scheduler.RandomDeliveryScheduler`
            with ``seed``, which reproduces the historical behavior.
        faults: optional :class:`~repro.messaging.mp_faults.FaultPlan`.

    The executor is re-runnable: :meth:`reset` returns it to the
    post-``on_start`` initial configuration (including scheduler and
    fault-RNG state), so one instance can drive many runs.
    """

    def __init__(
        self,
        mp: MPSystem,
        program: MPProgram,
        seed: int = 0,
        sink=None,
        scheduler: Optional[DeliveryScheduler] = None,
        faults=None,
    ) -> None:
        self.mp = mp
        self.program = program
        self.scheduler: DeliveryScheduler = (
            scheduler if scheduler is not None else RandomDeliveryScheduler(seed)
        )
        self.faults = faults
        if faults is not None:
            ghosts = set(faults.crash_at) - set(mp.processors)
            if ghosts:
                raise ExecutionError(
                    f"crash_at names unknown processors "
                    f"{sorted(str(p) for p in ghosts)}"
                )
        #: structured-event hub (:mod:`repro.obs`); one
        #: :class:`~repro.obs.events.MessageDelivered` per delivery, plus
        #: drop / dup / mp-crash events when a fault plan is active.
        self.events = EventHub()
        if sink is not None:
            self.events.attach(sink)
        self._out_index: Dict[Tuple[NodeId, str], Channel] = {
            (c.sender, c.out_port): c for c in mp.channels
        }
        self.reset()

    # ------------------------------------------------------------------
    # lifecycle

    def reset(self) -> None:
        """Return to the initial configuration and re-run ``on_start``.

        Restores local states, queues, stats, the scheduler, and the
        fault RNG, making repeated runs of one executor instance
        byte-identical to fresh constructions.
        """
        self.stats = MPExecutorStats()
        self.scheduler.reset()
        self._fault_rng = (
            random.Random(self.faults.seed) if self.faults is not None else None
        )
        self._crashed: Set[NodeId] = set()
        self._send_seq = 0
        # Held-back (delayed) copies: a heap of (release_index, seq,
        # channel, payload); seq is unique, so heap order never compares
        # channels or payloads.
        self._delayed: List[Tuple[int, int, Channel, Hashable]] = []
        self._last_sent: Dict[Channel, Hashable] = {}
        self.local: Dict[NodeId, Hashable] = {}
        self.queues: Dict[Channel, Deque[Hashable]] = {
            c: deque() for c in self.mp.channels
        }
        self._seqs: Dict[Channel, Deque[int]] = {c: deque() for c in self.mp.channels}
        for p in self.mp.processors:
            out_ports = tuple(sorted(c.out_port for c in self.mp.out_channels(p)))
            state, sends = self.program.on_start(self.mp.state0(p), out_ports)
            self.local[p] = state
            self._send_all(p, sends)

    # ------------------------------------------------------------------
    # sending (fault routing happens here)

    def _send_all(self, sender: NodeId, sends: List[Tuple[str, Hashable]]) -> None:
        for out_port, payload in sends:
            try:
                channel = self._out_index[(sender, out_port)]
            except KeyError:
                raise ExecutionError(
                    f"{sender!r} has no out-port {out_port!r}"
                ) from None
            self.stats.sends += 1
            self._last_sent[channel] = payload
            self._route(channel, payload)

    def _route(self, channel: Channel, payload: Hashable) -> None:
        """Pass one send through the channel's fault policy (if any).

        Coins are drawn in a fixed order -- drop, duplicate, then one
        delay coin per surviving copy -- so a replayed delivery schedule
        reproduces the exact fault pattern.
        """
        if channel.receiver in self._crashed:
            self.stats.discarded += 1
            return
        policy = self.faults.policy_for(channel) if self.faults is not None else None
        if policy is None:
            self._enqueue(channel, payload)
            return
        rng = self._fault_rng
        clock = self.stats.deliveries
        if rng.random() < policy.drop:
            self.stats.drops += 1
            if self.events.active:
                self.events.emit(
                    MessageDropped(
                        index=clock,
                        sender=channel.sender,
                        receiver=channel.receiver,
                        port=channel.port,
                        payload=payload,
                    )
                )
            return
        copies = 1
        if rng.random() < policy.duplicate:
            copies = 2
            self.stats.duplicates += 1
            if self.events.active:
                self.events.emit(
                    MessageDuplicated(
                        index=clock,
                        sender=channel.sender,
                        receiver=channel.receiver,
                        port=channel.port,
                        payload=payload,
                    )
                )
        for _ in range(copies):
            if rng.random() < policy.delay:
                release = clock + 1 + rng.randrange(policy.max_delay)
                heapq.heappush(
                    self._delayed, (release, self._send_seq, channel, payload)
                )
                self._send_seq += 1
                self.stats.delayed += 1
            else:
                self._enqueue(channel, payload)

    def _enqueue(self, channel: Channel, payload: Hashable) -> None:
        self.queues[channel].append(payload)
        self._seqs[channel].append(self._send_seq)
        self._send_seq += 1

    # ------------------------------------------------------------------
    # fault bookkeeping on the delivery clock

    def _manifest_crashes(self) -> None:
        if self.faults is None or not self.faults.crash_at:
            return
        clock = self.stats.deliveries
        for p in sorted(self.faults.crash_at, key=repr):
            crash_index = self.faults.crash_at[p]
            if clock < crash_index or p in self._crashed:
                continue
            self._crashed.add(p)
            discarded = 0
            for c in self.mp.in_channels(p):
                discarded += len(self.queues[c])
                self.queues[c].clear()
                self._seqs[c].clear()
            if self._delayed:
                kept = [e for e in self._delayed if e[2].receiver != p]
                discarded += len(self._delayed) - len(kept)
                self._delayed = kept
                heapq.heapify(self._delayed)
            self.stats.discarded += discarded
            if self.events.active:
                self.events.emit(
                    ProcessorCrashedMP(
                        processor=p,
                        crash_index=crash_index,
                        observed_index=clock,
                        discarded=discarded,
                    )
                )

    def _release_due(self) -> None:
        clock = self.stats.deliveries
        while self._delayed and self._delayed[0][0] <= clock:
            _, seq, channel, payload = heapq.heappop(self._delayed)
            self.queues[channel].append(payload)
            self._seqs[channel].append(seq)

    # ------------------------------------------------------------------
    # delivery

    def pending_channels(self) -> List[Channel]:
        return [
            c
            for c, q in self.queues.items()
            if q and c.receiver not in self._crashed
        ]

    def head_seq(self, channel: Channel) -> int:
        """Send-clock stamp of the channel's oldest queued message.

        The total order FIFO delivery scheduling keys on.
        """
        return self._seqs[channel][0]

    @property
    def idle(self) -> bool:
        """No queued and no delayed messages remain."""
        return not self.pending_channels() and not self._delayed

    def deliver_one(self) -> bool:
        """Deliver one scheduled pending message; False if idle."""
        self._manifest_crashes()
        self._release_due()
        pending = self.pending_channels()
        if not pending and self._delayed:
            # Nothing deliverable now but copies are in flight: fast-
            # forward the (delivery-step) clock to the earliest release.
            horizon = self._delayed[0][0]
            while self._delayed and self._delayed[0][0] <= horizon:
                _, seq, channel, payload = heapq.heappop(self._delayed)
                self.queues[channel].append(payload)
                self._seqs[channel].append(seq)
            pending = self.pending_channels()
        if not pending:
            return False
        channel = self.scheduler.next_channel(self.stats.deliveries, pending, self)
        payload = self.queues[channel].popleft()
        self._seqs[channel].popleft()
        state, sends = self.program.on_message(
            self.local[channel.receiver], channel.port, payload
        )
        self.local[channel.receiver] = state
        self._send_all(channel.receiver, sends)
        if self.events.active:
            self.events.emit(
                MessageDelivered(
                    index=self.stats.deliveries,
                    sender=channel.sender,
                    receiver=channel.receiver,
                    port=channel.port,
                    payload=payload,
                )
            )
        self.stats.deliveries += 1
        return True

    def retransmit(self) -> int:
        """Stubbornly resend the last payload on every live channel.

        The stubborn-link adapter: over fair-lossy channels, resending
        the most recent payload until the network moves again guarantees
        eventual delivery.  Resends pass through the fault policy like
        any send.  Returns the number of channels retransmitted on.
        """
        count = 0
        for channel in self.mp.channels:
            if channel not in self._last_sent:
                continue
            if channel.sender in self._crashed or channel.receiver in self._crashed:
                continue
            self.stats.retransmissions += 1
            self._route(channel, self._last_sent[channel])
            count += 1
        return count

    def run_to_quiescence(self, max_deliveries: int = 1_000_000) -> bool:
        """Deliver until no messages remain; False if the cap was hit."""
        for _ in range(max_deliveries):
            if not self.deliver_one():
                return True
        return self.idle

    # ------------------------------------------------------------------
    # results and the trace-recording surface

    def selected(self) -> Tuple[NodeId, ...]:
        return tuple(
            p for p in self.mp.processors if self.program.is_selected(self.local[p])
        )

    def crashed(self) -> Tuple[NodeId, ...]:
        """Processors whose crash-stop fault has manifested, sorted."""
        return tuple(sorted(self._crashed, key=repr))

    # Duck-typed surface shared with the shared-variable Executor so the
    # obs trace machinery (TraceWriter.sample / node_digests) works on
    # either executor unchanged.

    @property
    def step_count(self) -> int:
        return self.stats.deliveries

    @property
    def system(self) -> MPSystem:
        return self.mp

    def configuration(self) -> Tuple[Hashable, ...]:
        return tuple(self.local[p] for p in self.mp.processors)

    def node_state(self, node: NodeId) -> Hashable:
        return self.local[node]
