"""Message-passing models: async systems, similarity, CSP, runtime, faults."""

from .csp import (
    csp_rendezvous_family,
    decide_selection_extended_csp,
    decide_selection_plain_csp,
    is_supersimilarity_extended_csp,
    linked_pairs,
)
from .csp_runtime import (
    CSPExecutor,
    CSPProgram,
    PairRaceProgram,
    ReceiveOffer,
    SendOffer,
    run_pair_race,
)
from .mp_algorithm2 import (
    MPLabelerProgram,
    MPLabelingOutcome,
    MPLabelTables,
    run_mp_labeler,
)
from .mp_faults import ChannelFaults, DriveReport, FaultPlan, drive_mp
from .mp_runtime import FloodProgram, MPExecutor, MPExecutorStats, MPProgram
from .mp_scheduler import (
    AdversarialDeliveryScheduler,
    DeliveryReplayError,
    DeliveryScheduler,
    FifoDeliveryScheduler,
    RandomDeliveryScheduler,
    ReplayDeliveryScheduler,
)
from .mp_similarity import (
    labels_learnable,
    mp_selection_possible,
    mp_similarity_labeling,
)
from .mp_system import (
    Channel,
    MPSystem,
    bidirectional_ring,
    unidirectional_chain,
    unidirectional_ring,
)

__all__ = [
    "AdversarialDeliveryScheduler",
    "CSPExecutor",
    "CSPProgram",
    "Channel",
    "ChannelFaults",
    "DeliveryReplayError",
    "DeliveryScheduler",
    "DriveReport",
    "FaultPlan",
    "FifoDeliveryScheduler",
    "FloodProgram",
    "PairRaceProgram",
    "RandomDeliveryScheduler",
    "ReceiveOffer",
    "ReplayDeliveryScheduler",
    "SendOffer",
    "drive_mp",
    "MPExecutor",
    "MPLabelTables",
    "MPLabelerProgram",
    "MPLabelingOutcome",
    "MPExecutorStats",
    "MPProgram",
    "MPSystem",
    "bidirectional_ring",
    "csp_rendezvous_family",
    "decide_selection_extended_csp",
    "decide_selection_plain_csp",
    "is_supersimilarity_extended_csp",
    "labels_learnable",
    "linked_pairs",
    "mp_selection_possible",
    "mp_similarity_labeling",
    "run_mp_labeler",
    "run_pair_race",
    "unidirectional_chain",
    "unidirectional_ring",
]
