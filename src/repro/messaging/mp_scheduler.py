"""Pluggable delivery schedulers for the message-passing runtime.

The asynchronous adversary of Section 6 is, operationally, *who gets to
pick the next delivery*.  :class:`MPExecutor` used to hard-wire a seeded
``rng.choice`` over the pending channels; this module turns that policy
into an abstraction mirroring :mod:`repro.runtime.scheduler`:

* :class:`RandomDeliveryScheduler` -- the seeded uniform choice the
  executor always had (fair with probability 1), now swappable;
* :class:`FifoDeliveryScheduler` -- globally oldest message first (the
  send clock is a total order, so this is deterministic network-FIFO);
* :class:`AdversarialDeliveryScheduler` -- a callback over the live
  executor, the delivery-order analogue of
  :class:`~repro.runtime.scheduler.AdaptiveScheduler`;
* :class:`ReplayDeliveryScheduler` -- force a recorded sequence of
  channel picks, the engine of deterministic MP replay
  (:func:`repro.obs.replay.replay_mp_trace`).

A scheduler picks one :class:`~repro.messaging.mp_system.Channel` from
the non-empty ``pending`` list; ``view`` is the executor (read-only
access to local states, queues, and the send clock).  Fault injection is
orthogonal: policies in :mod:`repro.messaging.mp_faults` decide which
sends survive, schedulers decide the order of the survivors.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence, Tuple

from ..exceptions import ScheduleError
from .mp_system import Channel


class DeliveryScheduler(ABC):
    """Lazily picks the next pending channel to deliver from."""

    @abstractmethod
    def next_channel(self, index: int, pending: Sequence[Channel], view) -> Channel:
        """Pick the channel for delivery step ``index``.

        ``pending`` is the non-empty list of channels with queued
        messages, in the system's fixed channel order; ``view`` is the
        executor.  The returned channel must be one of ``pending``.
        """

    def reset(self) -> None:
        """Return to the initial scheduling state (default: stateless)."""


class RandomDeliveryScheduler(DeliveryScheduler):
    """Seeded uniform choice over the pending channels.

    This reproduces, draw for draw, the policy previously inlined in
    :class:`~repro.messaging.mp_runtime.MPExecutor`, so existing seeds
    keep producing the same runs.  Fair with probability 1: every queued
    message is eventually delivered.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def next_channel(self, index: int, pending: Sequence[Channel], view) -> Channel:
        return self._rng.choice(list(pending))

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class FifoDeliveryScheduler(DeliveryScheduler):
    """Deliver the globally oldest queued message first.

    The executor stamps every enqueued copy with a send-clock value
    (:meth:`~repro.messaging.mp_runtime.MPExecutor.head_seq`); choosing
    the minimal head makes the whole network one FIFO queue.  Duplicated
    and delayed copies are stamped at enqueue time, so fault reordering
    still shows through.
    """

    def next_channel(self, index: int, pending: Sequence[Channel], view) -> Channel:
        return min(pending, key=view.head_seq)


class AdversarialDeliveryScheduler(DeliveryScheduler):
    """An adversary driven by a callback over the live executor."""

    def __init__(
        self, choose: Callable[[int, Sequence[Channel], object], Channel]
    ) -> None:
        self._choose = choose

    def next_channel(self, index: int, pending: Sequence[Channel], view) -> Channel:
        return self._choose(index, pending, view)


class DeliveryReplayError(ScheduleError):
    """A replayed delivery names a channel that is not pending.

    Carries the evidence replay needs to point at the first divergent
    delivery: the delivery index, the recorded ``(receiver, port)`` key,
    and what actually was pending.
    """

    def __init__(self, index: int, expected: Tuple[str, str], pending) -> None:
        self.index = index
        self.expected = expected
        self.pending = tuple((str(c.receiver), c.port) for c in pending)
        super().__init__(
            f"delivery {index}: recorded channel to {expected[0]!r} on port "
            f"{expected[1]!r} is not pending (pending: {sorted(self.pending)})"
        )


class ReplayDeliveryScheduler(DeliveryScheduler):
    """Replay an explicit finite sequence of channel picks.

    ``prefix`` holds ``(str(receiver), port)`` keys -- each pair names at
    most one channel of an :class:`~repro.messaging.mp_system.MPSystem`.
    When the recorded channel is not pending (the run has diverged from
    the recording), :class:`DeliveryReplayError` is raised; when the
    prefix is exhausted, the optional fallback takes over.
    """

    def __init__(
        self,
        prefix: Sequence[Tuple[str, str]],
        then: Optional[DeliveryScheduler] = None,
    ) -> None:
        self._prefix = tuple((str(r), str(p)) for r, p in prefix)
        self._then = then

    def next_channel(self, index: int, pending: Sequence[Channel], view) -> Channel:
        if index < len(self._prefix):
            receiver, port = self._prefix[index]
            for channel in pending:
                if str(channel.receiver) == receiver and channel.port == port:
                    return channel
            raise DeliveryReplayError(index, (receiver, port), pending)
        if self._then is None:
            raise ScheduleError("replayed delivery schedule exhausted and no fallback given")
        return self._then.next_channel(index, pending, view)

    def reset(self) -> None:
        if self._then is not None:
            self._then.reset()
