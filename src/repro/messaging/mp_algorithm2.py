"""Distributed label learning for message-passing systems (Section 6).

"Similarity labelings and distributed algorithms for finding labels can
be easily computed for any fair system that uses asynchronous
message-passing."

The algorithm is Algorithm 2 transposed to channels.  Each processor
keeps a suspect set PEC for its own label and floods its current PEC on
every out-port whenever it shrinks.  Because every (receiver, port) pair
has exactly one sender, and the similarity labeling is
environment-respecting, each candidate label ``alpha`` determines the
label ``in_label(alpha, port)`` of the sender on each port; a received
suspect set ``S`` on port ``X`` therefore rules out every ``alpha`` with
``in_label(alpha, X)`` not in ``S``.

Alibis are monotone-sound (a processor's PEC always contains its true
label), and in strongly-connected or bidirectional systems the narrowing
singleton sets propagate everywhere: each processor converges to its
exact label.  In a unidirectional, not strongly-connected system the
upstream processors receive nothing -- the algorithm (correctly!) leaves
them uncertain forever, which is the Section 6 learnability obstruction
(`labels_learnable` returns False exactly there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Mapping, Optional, Tuple

from ..core.environment import EnvironmentModel
from ..core.labeling import Labeling
from ..exceptions import LabelingError
from .mp_runtime import MPExecutor, MPProgram
from .mp_similarity import mp_similarity_labeling
from .mp_system import MPSystem

Label = Hashable


@dataclass(frozen=True)
class MPLabelTables:
    """The topology-derived knowledge for the message-passing labeler.

    Attributes:
        plabels: all processor labels of the similarity labeling.
        pstate: each label class's initial state.
        in_label: ``(label, port) -> sender's label`` for every in-port a
            processor of that label has.
        ports_of: ``label -> its in-port names`` (consistency checked).
    """

    plabels: FrozenSet[Label]
    pstate: Mapping[Label, Hashable]
    in_label: Mapping[Tuple[Label, str], Label]
    ports_of: Mapping[Label, Tuple[str, ...]]

    @staticmethod
    def from_system(mp: MPSystem, theta: Optional[Labeling] = None) -> "MPLabelTables":
        if theta is None:
            theta = mp_similarity_labeling(mp, EnvironmentModel.MULTISET)
        plabels = frozenset(theta[p] for p in mp.processors)
        pstate: Dict[Label, Hashable] = {}
        in_label: Dict[Tuple[Label, str], Label] = {}
        ports_of: Dict[Label, Tuple[str, ...]] = {}
        for p in mp.processors:
            label = theta[p]
            if label in pstate and pstate[label] != mp.state0(p):
                raise LabelingError(
                    f"label {label!r} spans different initial states"
                )
            pstate[label] = mp.state0(p)
            ports = tuple(sorted(c.port for c in mp.in_channels(p)))
            if label in ports_of and ports_of[label] != ports:
                raise LabelingError(
                    f"label {label!r} spans processors with different ports; "
                    f"not environment-respecting"
                )
            ports_of[label] = ports
            for ch in mp.in_channels(p):
                key = (label, ch.port)
                sender_label = theta[ch.sender]
                if key in in_label and in_label[key] != sender_label:
                    raise LabelingError(
                        f"label {label!r} has differently-labeled senders "
                        f"on port {key[1]!r}; not environment-respecting"
                    )
                in_label[key] = sender_label
        return MPLabelTables(
            plabels=plabels, pstate=pstate, in_label=in_label, ports_of=ports_of
        )

    def plabels_with_state(self, state: Hashable) -> FrozenSet[Label]:
        return frozenset(a for a in self.plabels if self.pstate[a] == state)


class MPLabelerProgram(MPProgram):
    """Flood-my-suspects label learning over channels.

    Local state: the current PEC (frozenset of labels).  Messages: the
    sender's PEC at send time.  A processor re-floods whenever its PEC
    shrinks, so the protocol quiesces exactly when every PEC is stable.
    """

    def __init__(self, tables: MPLabelTables) -> None:
        self.tables = tables

    def on_start(self, state0, out_ports=()):
        pec = self.tables.plabels_with_state(state0)
        if not pec:
            pec = self.tables.plabels
        sends = [(port, pec) for port in out_ports]
        return (pec, tuple(out_ports)), sends

    def on_message(self, state, port, payload):
        pec, out_ports = state
        if not isinstance(payload, frozenset):
            return state, []
        new_pec = frozenset(
            alpha
            for alpha in pec
            if self.tables.in_label.get((alpha, port)) in payload
        )
        if not new_pec:
            # Sound algorithms never empty the PEC; guard anyway.
            new_pec = pec
        if new_pec != pec:
            return (new_pec, out_ports), [(p, new_pec) for p in out_ports]
        return state, []

    @staticmethod
    def learned_label(state) -> Optional[Label]:
        if isinstance(state, tuple) and len(state[0]) == 1:
            return next(iter(state[0]))
        return None


@dataclass(frozen=True)
class MPLabelingOutcome:
    """Result of a distributed MP labeling run."""

    learned: Dict[Hashable, Optional[Label]]
    truth: Dict[Hashable, Label]
    deliveries: int

    @property
    def all_correct(self) -> bool:
        return self.learned == self.truth

    @property
    def uncertain(self) -> Tuple[Hashable, ...]:
        return tuple(sorted((p for p, l in self.learned.items() if l is None), key=repr))


def run_mp_labeler(mp: MPSystem, seed: int = 0, max_deliveries: int = 200_000) -> MPLabelingOutcome:
    """Run the labeler to quiescence and compare against Theta.

    """
    theta = mp_similarity_labeling(mp, EnvironmentModel.MULTISET)
    tables = MPLabelTables.from_system(mp, theta)
    program = MPLabelerProgram(tables)
    executor = MPExecutor(mp, program, seed=seed)
    executor.run_to_quiescence(max_deliveries)
    learned = {
        p: MPLabelerProgram.learned_label(executor.local[p]) for p in mp.processors
    }
    return MPLabelingOutcome(
        learned=learned,
        truth={p: theta[p] for p in mp.processors},
        deliveries=executor.stats.deliveries,
    )
