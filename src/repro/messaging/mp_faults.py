"""Seeded fault injection for the message-passing runtime.

The Section 6 model assumes reliable channels; real networks (and the
crash-stop literature the paper's Theorem 1 gestures at via FLP) do not.
This module describes *what can go wrong* as plain data, composed into
:class:`~repro.messaging.mp_runtime.MPExecutor` without touching any
existing call site:

* :class:`ChannelFaults` -- per-channel probabilities for message loss,
  duplication, and reordering (reordering is modelled as a delay: a held
  copy re-enters its FIFO queue a few delivery steps later, behind
  younger messages);
* :class:`FaultPlan` -- a whole-run manifest: a default channel policy,
  per-channel overrides keyed by ``(str(sender), out_port)``, crash-stop
  points on the delivery clock, and the seed for the fault coin flips;
* :func:`drive_mp` -- the shared run loop used by recording, replay, and
  the experiments: deliver until quiescent, optionally performing
  *stubborn retransmission* (resend the last payload on every channel
  whenever the network goes idle), which restores the delivery guarantee
  over fair-lossy channels.

Everything is deterministic: the same plan, seeds, and delivery schedule
reproduce the same drops, duplicates, delays, and crashes, which is what
lets :func:`repro.obs.replay.replay_mp_trace` verify recorded faulty
runs byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..core.names import NodeId
from ..exceptions import ExecutionError


@dataclass(frozen=True)
class ChannelFaults:
    """Fault probabilities for one channel (all coins are per-send).

    Attributes:
        drop: probability a send is lost entirely (fair-lossy channel for
            any value < 1: infinitely many sends imply infinitely many
            arrivals).
        duplicate: probability a surviving send is enqueued twice.
        delay: probability a surviving copy is held back and released
            onto its queue later -- behind messages sent after it, which
            is how reordering arises in a FIFO-queue model.
        max_delay: upper bound, in delivery steps, on how long a held
            copy waits (the actual wait is uniform in ``1..max_delay``).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    max_delay: int = 4

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ExecutionError(f"{name} must be a probability, got {value!r}")
        if self.max_delay < 1:
            raise ExecutionError(f"max_delay must be >= 1, got {self.max_delay!r}")

    def to_json(self) -> Dict[str, Any]:
        return {
            "drop": self.drop,
            "duplicate": self.duplicate,
            "delay": self.delay,
            "max_delay": self.max_delay,
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "ChannelFaults":
        return cls(
            drop=float(doc.get("drop", 0.0)),
            duplicate=float(doc.get("duplicate", 0.0)),
            delay=float(doc.get("delay", 0.0)),
            max_delay=int(doc.get("max_delay", 4)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A whole-run fault manifest, JSON-serializable for scenario specs.

    Attributes:
        default: policy applied to every channel without an override
            (``None`` means those channels are reliable).
        per_channel: overrides keyed by ``(str(sender), out_port)`` --
            the sender-side name of a channel, which is unambiguous by
            the :class:`~repro.messaging.mp_system.MPSystem` invariant.
        crash_at: crash-stop points: ``processor -> delivery index`` at
            which the processor stops.  Its queued deliveries are
            discarded and later sends to it vanish (crash-stop, not
            omission: nothing ever comes back).
        seed: seed for the fault coin flips, independent of the delivery
            scheduler's seed so loss patterns and delivery order can be
            varied separately.
    """

    default: Optional[ChannelFaults] = None
    per_channel: Mapping[Tuple[str, str], ChannelFaults] = field(default_factory=dict)
    crash_at: Mapping[NodeId, int] = field(default_factory=dict)
    seed: int = 0

    def policy_for(self, channel) -> Optional[ChannelFaults]:
        """The policy governing ``channel`` (override, else default)."""
        override = self.per_channel.get((str(channel.sender), channel.out_port))
        return override if override is not None else self.default

    def to_json(self) -> Dict[str, Any]:
        return {
            "default": None if self.default is None else self.default.to_json(),
            "per_channel": [
                [sender, out_port, faults.to_json()]
                for (sender, out_port), faults in sorted(self.per_channel.items())
            ],
            "crash_at": {str(p): t for p, t in self.crash_at.items()},
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "FaultPlan":
        default = doc.get("default")
        return cls(
            default=None if default is None else ChannelFaults.from_json(default),
            per_channel={
                (sender, out_port): ChannelFaults.from_json(faults)
                for sender, out_port, faults in doc.get("per_channel", [])
            },
            crash_at={p: int(t) for p, t in doc.get("crash_at", {}).items()},
            seed=int(doc.get("seed", 0)),
        )


@dataclass(frozen=True)
class DriveReport:
    """Outcome of :func:`drive_mp`.

    Attributes:
        deliveries: total deliveries performed by the executor.
        retransmissions: stubborn resends attempted (0 without
            ``stubborn``).
        quiescent: the network drained (no queued or delayed messages).
        stopped: the ``stop`` predicate fired.
        exhausted: the delivery cap was hit before either of the above.
    """

    deliveries: int
    retransmissions: int
    quiescent: bool
    stopped: bool
    exhausted: bool


def drive_mp(
    executor,
    max_deliveries: int = 100_000,
    stubborn: bool = False,
    max_idle_rounds: int = 25,
    stop: Optional[Callable[[Any], bool]] = None,
) -> DriveReport:
    """Run ``executor`` until quiescence, a ``stop`` hit, or the cap.

    With ``stubborn`` set, an idle network triggers
    :meth:`~repro.messaging.mp_runtime.MPExecutor.retransmit` -- the
    stubborn-link adapter: every channel resends its last payload, so
    over fair-lossy channels (``drop < 1``) every message eventually
    gets through.  ``max_idle_rounds`` bounds consecutive all-dropped
    retransmission rounds so a fully lossy channel (``drop == 1``)
    cannot loop forever.
    """
    idle_rounds = 0
    stopped = False
    while executor.stats.deliveries < max_deliveries:
        if stop is not None and stop(executor):
            stopped = True
            break
        if executor.deliver_one():
            idle_rounds = 0
            continue
        if not stubborn or idle_rounds >= max_idle_rounds:
            break
        executor.retransmit()
        idle_rounds += 1
    return DriveReport(
        deliveries=executor.stats.deliveries,
        retransmissions=executor.stats.retransmissions,
        quiescent=executor.idle,
        stopped=stopped,
        exhausted=executor.stats.deliveries >= max_deliveries and not stopped,
    )
