"""Message-passing systems (paper, Section 6).

"Similarity is a useful concept in message-passing systems...  There, the
environment of a processor depends only on the processors that can send
messages to it."

An :class:`MPSystem` is a set of processors connected by directed
*channels*.  Each channel carries a **port** name, local to the receiver:
the receiver can tell its ports apart but never sees sender identities.
Bidirectional links are simply a pair of opposite channels.

The model notes of Section 6, all realized here and in
:mod:`repro.messaging.mp_similarity`:

* asynchronous bidirectional message passing behaves like Q (multiset
  environments over in-neighbors);
* a unidirectional, fair, not strongly-connected system where in-degrees
  are unknown behaves like fair S (the weak SET environments + the same
  learnability obstruction);
* CSP-style synchronous communication relates to the asynchronous model
  as L relates to Q -- see :mod:`repro.messaging.csp`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from ..core.names import NodeId, State
from ..exceptions import NetworkError


@dataclass(frozen=True)
class Channel:
    """A directed channel: ``sender`` can send to ``receiver``.

    ``port`` is the *receiver's* local name for the channel;
    ``out_port`` is the *sender's* local name.
    """

    sender: NodeId
    receiver: NodeId
    port: str
    out_port: str


class MPSystem:
    """An immutable message-passing system."""

    def __init__(
        self,
        channels: Iterable[Channel],
        initial_state: Optional[Mapping[NodeId, State]] = None,
        processors: Iterable[NodeId] = (),
    ) -> None:
        self._channels: Tuple[Channel, ...] = tuple(channels)
        procs = set(processors)
        for ch in self._channels:
            procs.add(ch.sender)
            procs.add(ch.receiver)
        if not procs:
            raise NetworkError("a message-passing system needs processors")
        self._processors: Tuple[NodeId, ...] = tuple(sorted(procs, key=repr))
        initial_state = dict(initial_state or {})
        unknown = set(initial_state) - procs
        if unknown:
            raise NetworkError(f"initial_state mentions unknown processors: {unknown!r}")
        self._state0: Dict[NodeId, State] = {
            p: initial_state.get(p, 0) for p in self._processors
        }
        # Each (receiver, port) pair must identify at most one channel,
        # and likewise (sender, out_port): ports are unambiguous names.
        seen_in: set = set()
        seen_out: set = set()
        for ch in self._channels:
            if (ch.receiver, ch.port) in seen_in:
                raise NetworkError(
                    f"receiver {ch.receiver!r} has two channels on port {ch.port!r}"
                )
            if (ch.sender, ch.out_port) in seen_out:
                raise NetworkError(
                    f"sender {ch.sender!r} has two channels on out-port {ch.out_port!r}"
                )
            seen_in.add((ch.receiver, ch.port))
            seen_out.add((ch.sender, ch.out_port))

    # ------------------------------------------------------------------

    @property
    def processors(self) -> Tuple[NodeId, ...]:
        return self._processors

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """Alias for :attr:`processors` -- the surface the obs trace
        machinery expects of any system it digests."""
        return self._processors

    @property
    def channels(self) -> Tuple[Channel, ...]:
        return self._channels

    def state0(self, p: NodeId) -> State:
        return self._state0[p]

    def in_channels(self, p: NodeId) -> Tuple[Channel, ...]:
        return tuple(c for c in self._channels if c.receiver == p)

    def out_channels(self, p: NodeId) -> Tuple[Channel, ...]:
        return tuple(c for c in self._channels if c.sender == p)

    def in_neighbors(self, p: NodeId) -> Tuple[NodeId, ...]:
        return tuple(sorted({c.sender for c in self.in_channels(p)}, key=repr))

    @cached_property
    def is_strongly_connected(self) -> bool:
        """Every processor reachable from every other along channels."""

        def reachable(start: NodeId) -> FrozenSet[NodeId]:
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for ch in self._channels:
                    if ch.sender == node and ch.receiver not in seen:
                        seen.add(ch.receiver)
                        stack.append(ch.receiver)
            return frozenset(seen)

        full = frozenset(self._processors)
        return all(reachable(p) == full for p in self._processors)

    @cached_property
    def is_bidirectional(self) -> bool:
        """Every channel has an opposite-direction partner."""
        pairs = {(c.sender, c.receiver) for c in self._channels}
        return all((r, s) in pairs for (s, r) in pairs)

    def neighbors_share_link(self, p: NodeId, q: NodeId) -> bool:
        return any(
            (c.sender, c.receiver) in ((p, q), (q, p)) for c in self._channels
        )


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------


def unidirectional_ring(n: int, states: Optional[Mapping[int, State]] = None) -> MPSystem:
    """An anonymous unidirectional ring: ``p_i`` sends to ``p_{i+1}``."""
    channels = [
        Channel(sender=f"p{i}", receiver=f"p{(i + 1) % n}", port="prev", out_port="next")
        for i in range(n)
    ]
    state = {f"p{i}": v for i, v in (states or {}).items()}
    return MPSystem(channels, state)


def bidirectional_ring(n: int, states: Optional[Mapping[int, State]] = None) -> MPSystem:
    """An anonymous bidirectional ring."""
    channels = []
    for i in range(n):
        nxt = (i + 1) % n
        channels.append(Channel(f"p{i}", f"p{nxt}", port="ccw", out_port="cw"))
        channels.append(Channel(f"p{nxt}", f"p{i}", port="cw", out_port="ccw"))
    state = {f"p{i}": v for i, v in (states or {}).items()}
    return MPSystem(channels, state)


def unidirectional_chain(n: int, states: Optional[Mapping[int, State]] = None) -> MPSystem:
    """``p_0 -> p_1 -> ... -> p_{n-1}``: fair, not strongly connected.

    The Section 6 example shape: downstream processors cannot know how
    many processors feed them, so the system "suffers from the same
    problems as fair systems in S".
    """
    channels = [
        Channel(f"p{i}", f"p{i + 1}", port="prev", out_port="next")
        for i in range(n - 1)
    ]
    state = {f"p{i}": v for i, v in (states or {}).items()}
    return MPSystem(channels, state, processors=[f"p{i}" for i in range(n)])
