"""A synchronous (CSP-style) rendezvous runtime (Section 6).

CSP communication is a *joint* step: a sender's output command and a
receiver's input command commit together or not at all.  In **extended
CSP** both input and output commands may appear in guards, so two
symmetric neighbors can each offer "send to you [] receive from you" and
the runtime resolves the race -- exactly one direction commits, which is
why extended CSP relates to asynchronous message passing as L relates to
Q (the rendezvous race is a lock race).

Model:

* a :class:`CSPProgram` maps a local state to a set of *offers*
  (:class:`SendOffer` / :class:`ReceiveOffer` on local port names) --
  using both kinds at once requires ``extended=True`` on the executor,
  mirroring the paper's distinction;
* a scheduler step picks one *matching pair* of offers (a send and a
  receive on the two ends of one channel) and commits it atomically,
  updating both parties;
* plain CSP (no output guards): a processor whose offer set mixes sends
  and receives is rejected -- output commands cannot be guarded, so a
  state's offers must be receive-only or a single unguarded send.

The executor is seeded-random over enabled pairs, modeling the
adversary-free fair case; determinize with ``seed``.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from ..core.names import NodeId, State
from ..exceptions import ExecutionError
from .mp_system import Channel, MPSystem


@dataclass(frozen=True)
class SendOffer:
    """Willingness to send ``payload`` on my out-port ``port``."""

    port: str
    payload: Hashable


@dataclass(frozen=True)
class ReceiveOffer:
    """Willingness to receive on my in-port ``port``."""

    port: str


Offer = Hashable  # SendOffer | ReceiveOffer


class CSPProgram(ABC):
    """A deterministic anonymous program over rendezvous offers."""

    @abstractmethod
    def offers(self, state: State) -> Tuple[Offer, ...]:
        """The guarded commands enabled in ``state`` (pure)."""

    @abstractmethod
    def on_commit(self, state: State, offer: Offer, payload: Hashable) -> State:
        """New state after ``offer`` committed.

        For a :class:`SendOffer`, ``payload`` echoes the sent value; for a
        :class:`ReceiveOffer` it is the received value.
        """

    def is_selected(self, state: State) -> bool:
        return False


class CSPExecutor:
    """Commit matching rendezvous pairs until quiescence."""

    def __init__(
        self,
        mp: MPSystem,
        program: CSPProgram,
        seed: int = 0,
        extended: bool = True,
    ) -> None:
        self.mp = mp
        self.program = program
        self.extended = extended
        self.rng = random.Random(seed)
        self.local: Dict[NodeId, State] = {
            p: mp.state0(p) for p in mp.processors
        }
        self.commits = 0

    # ------------------------------------------------------------------

    def _validated_offers(self, p: NodeId) -> Tuple[Offer, ...]:
        offers = self.program.offers(self.local[p])
        if not self.extended:
            sends = [o for o in offers if isinstance(o, SendOffer)]
            receives = [o for o in offers if isinstance(o, ReceiveOffer)]
            if sends and receives:
                raise ExecutionError(
                    "plain CSP forbids output commands in guards: a state "
                    "may offer sends or receives, not both (use extended=True)"
                )
            if len(sends) > 1:
                raise ExecutionError(
                    "plain CSP allows at most one unguarded send per state"
                )
        return offers

    def enabled_pairs(self) -> List[Tuple[Channel, SendOffer, ReceiveOffer]]:
        """All channels whose two ends currently offer matching commands."""
        pairs = []
        offer_cache = {p: self._validated_offers(p) for p in self.mp.processors}
        for channel in self.mp.channels:
            sends = [
                o
                for o in offer_cache[channel.sender]
                if isinstance(o, SendOffer) and o.port == channel.out_port
            ]
            receives = [
                o
                for o in offer_cache[channel.receiver]
                if isinstance(o, ReceiveOffer) and o.port == channel.port
            ]
            for s in sends:
                for r in receives:
                    pairs.append((channel, s, r))
        return pairs

    def step(self) -> bool:
        """Commit one enabled rendezvous; False when none is enabled."""
        pairs = self.enabled_pairs()
        if not pairs:
            return False
        channel, send, receive = self.rng.choice(pairs)
        self.local[channel.sender] = self.program.on_commit(
            self.local[channel.sender], send, send.payload
        )
        self.local[channel.receiver] = self.program.on_commit(
            self.local[channel.receiver], receive, send.payload
        )
        self.commits += 1
        return True

    def run_to_quiescence(self, max_commits: int = 100_000) -> bool:
        for _ in range(max_commits):
            if not self.step():
                return True
        return not self.enabled_pairs()

    def selected(self) -> Tuple[NodeId, ...]:
        return tuple(
            p for p in self.mp.processors if self.program.is_selected(self.local[p])
        )


# ----------------------------------------------------------------------
# the rendezvous-race selection program for a linked pair
# ----------------------------------------------------------------------


class PairRaceProgram(CSPProgram):
    """Extended-CSP selection on two linked processors.

    Both start identically, each offering "send CLAIM [] receive".
    Exactly one rendezvous commits; the *sender* of the committed pair
    becomes the leader.  This is the smallest demonstration that extended
    CSP encapsulates asymmetry -- structurally the same race Figure 1
    settles with a lock.
    """

    CLAIM = "claim"

    def __init__(self, out_ports: Sequence[str], in_ports: Sequence[str]) -> None:
        self._out_ports = tuple(out_ports)
        self._in_ports = tuple(in_ports)

    def offers(self, state):
        if state != 0:
            return ()
        out = []
        for port in self._out_ports:
            out.append(SendOffer(port, self.CLAIM))
        for port in self._in_ports:
            out.append(ReceiveOffer(port))
        return tuple(out)

    def on_commit(self, state, offer, payload):
        if isinstance(offer, SendOffer):
            return "leader"
        return "follower"

    def is_selected(self, state) -> bool:
        return state == "leader"


def run_pair_race(mp: MPSystem, seed: int = 0) -> Tuple[NodeId, ...]:
    """Run the extended-CSP race on a linked pair; returns the winners."""
    ports_out = sorted({c.out_port for c in mp.channels})
    ports_in = sorted({c.port for c in mp.channels})
    program = PairRaceProgram(ports_out, ports_in)
    executor = CSPExecutor(mp, program, seed=seed, extended=True)
    executor.run_to_quiescence()
    return executor.selected()
