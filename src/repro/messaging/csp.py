"""CSP and extended CSP (paper, Section 6).

"A supersimilarity labeling for an asynchronous, bidirectional
message-passing system is a supersimilarity labeling for that same system
using the operations of extended CSP if no two neighboring processors
have the same label.  Thus, systems in extended CSP are to asynchronous
bidirectional message-passing systems as systems in L are to systems in
Q."

The analogy is implemented literally:

* :func:`is_supersimilarity_extended_csp` -- the Theorem-8 analogue: an
  async supersimilarity labeling whose classes contain no two *linked*
  processors also works for extended CSP (a rendezvous between two
  same-labeled neighbors would have a unique initiator/acceptor outcome,
  like a lock race).
* :func:`csp_rendezvous_family` -- the relabel analogue: every adjacent
  pair races one rendezvous; each linked pair is independently ordered,
  so the family is indexed by orientations of the link graph (exactly as
  L's family is indexed by per-variable lock orders).
* :func:`decide_selection_extended_csp` -- the Theorem-9 analogue over
  that family.

Plain CSP (no output guards) inherits async supersimilarity labelings
too, but -- as the paper concedes -- no general deadlock-free label-
learning algorithm is known for it; we expose only the labeling-level
decision for it.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Tuple

from ..core.environment import EnvironmentModel
from ..core.labeling import Labeling
from .mp_similarity import mp_similarity_labeling
from .mp_system import MPSystem


def linked_pairs(mp: MPSystem) -> Tuple[Tuple, ...]:
    """Unordered pairs of processors connected by at least one channel."""
    pairs = set()
    for ch in mp.channels:
        a, b = sorted((ch.sender, ch.receiver), key=repr)
        if a != b:
            pairs.add((a, b))
    return tuple(sorted(pairs, key=repr))


def is_supersimilarity_extended_csp(mp: MPSystem, labeling: Labeling) -> bool:
    """Theorem-8 analogue for extended CSP.

    ``labeling`` must be an (async, multiset-model) environment-respecting
    labeling AND give distinct labels to every pair of linked processors.
    """
    theta = mp_similarity_labeling(mp, EnvironmentModel.MULTISET)
    if not labeling.refines(theta):
        return False
    return all(labeling[a] != labeling[b] for a, b in linked_pairs(mp))


def csp_rendezvous_family(mp: MPSystem) -> List[Labeling]:
    """Similarity labelings of every post-rendezvous-race state.

    Each linked pair holds one rendezvous whose outcome distinguishes the
    two ends (initiator/acceptor); the reachable states correspond to the
    2^|links| orientations.  For each orientation we relabel processors by
    (state0, sorted outcomes per port) and refine -- returning the list of
    resulting labelings ("VERSIONS").
    """
    pairs = linked_pairs(mp)
    versions: List[Labeling] = []
    seen: set = set()
    for orientation in product((0, 1), repeat=len(pairs)):
        outcome: Dict = {}
        for (a, b), bit in zip(pairs, orientation):
            winner, loser = (a, b) if bit == 0 else (b, a)
            outcome.setdefault(winner, []).append(("win", _ports_between(mp, winner, loser)))
            outcome.setdefault(loser, []).append(("lose", _ports_between(mp, loser, winner)))
        states = {
            p: (mp.state0(p), tuple(sorted(outcome.get(p, []), key=repr)))
            for p in mp.processors
        }
        relabeled = MPSystem(mp.channels, states)
        theta = mp_similarity_labeling(relabeled, EnvironmentModel.MULTISET)
        key = tuple(sorted((repr(p), theta[p]) for p in mp.processors))
        if key not in seen:
            seen.add(key)
            versions.append(theta)
    return versions


def _ports_between(mp: MPSystem, p, q) -> Tuple[str, ...]:
    """The out-ports p uses toward q (how p names the q-link locally)."""
    return tuple(
        sorted(c.out_port for c in mp.out_channels(p) if c.receiver == q)
    )


def decide_selection_extended_csp(mp: MPSystem) -> bool:
    """Theorem-9 analogue: selection possible in extended CSP iff no
    post-race version leaves every processor paired."""
    for version in csp_rendezvous_family(mp):
        counts: Dict = {}
        for p in mp.processors:
            counts[version[p]] = counts.get(version[p], 0) + 1
        if all(counts[version[p]] >= 2 for p in mp.processors):
            return False
    return True


def decide_selection_plain_csp(mp: MPSystem) -> bool:
    """Plain CSP (no output guards): labeling-level decision only.

    Any async supersimilarity labeling carries over, so selection is
    possible exactly when the async labeling has a unique processor; the
    paper notes that a general deadlock-free distributed labeler is not
    known for this model.
    """
    theta = mp_similarity_labeling(mp, EnvironmentModel.MULTISET)
    return any(theta.class_size(theta[p]) == 1 for p in mp.processors)
