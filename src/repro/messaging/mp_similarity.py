"""Similarity labelings for message-passing systems (Section 6).

The refinement mirrors :mod:`repro.core.refinement`, with the directed
twist: a processor's environment is determined by the processors that can
*send to* it -- per in-port, the label of the sender on that port.  Out-
edges do not appear in the environment (what I send never comes back to
me through that channel); they influence the labeling only indirectly,
through the receivers they feed.

Two models, exactly parallel to the shared-variable story:

* ``MULTISET``-like: each in-port carries its sender's label (ports are
  distinguishable, so this is even sharper than multisets) -- the model
  for asynchronous systems, matching Q;
* ``SET``: only the *set* of sender labels over all ports is visible --
  the degraded model for unidirectional, not strongly-connected systems
  with unknown in-degrees, matching fair S.
"""

from __future__ import annotations

from typing import Dict, Hashable

from ..core.environment import EnvironmentModel
from ..core.labeling import Labeling
from .mp_system import MPSystem


def _signature(
    mp: MPSystem, p, labeling: Dict, model: EnvironmentModel
) -> Hashable:
    in_chs = mp.in_channels(p)
    if model is EnvironmentModel.MULTISET:
        per_port = tuple(
            sorted(((c.port, labeling[c.sender]) for c in in_chs), key=repr)
        )
        return per_port
    return tuple(sorted({labeling[c.sender] for c in in_chs}, key=repr))


def mp_similarity_labeling(
    mp: MPSystem,
    model: EnvironmentModel = EnvironmentModel.MULTISET,
    include_state: bool = True,
) -> Labeling:
    """The coarsest in-neighbor-respecting labeling of ``mp``."""
    labels: Dict = {
        p: (mp.state0(p) if include_state else None) for p in mp.processors
    }
    while True:
        combined = {
            p: (labels[p], _signature(mp, p, labels, model)) for p in mp.processors
        }
        intern: Dict[Hashable, int] = {}
        new_labels: Dict = {}
        for p in mp.processors:
            key = combined[p]
            if key not in intern:
                intern[key] = len(intern)
            new_labels[p] = intern[key]
        if len(set(new_labels.values())) == len(set(labels.values())):
            return Labeling(new_labels)
        labels = new_labels


def mp_selection_possible(
    mp: MPSystem, model: EnvironmentModel = EnvironmentModel.MULTISET
) -> bool:
    """Theorem 2/3 for message passing: some processor uniquely labeled."""
    theta = mp_similarity_labeling(mp, model)
    return any(theta.class_size(theta[p]) == 1 for p in mp.processors)


def labels_learnable(mp: MPSystem) -> bool:
    """Can each processor learn its label with a distributed algorithm?

    Per Section 6: yes for any fair asynchronous system, *except* the
    unidirectional, not strongly-connected, unknown-in-degree case, which
    suffers the fair-S obstruction.
    """
    if mp.is_strongly_connected or mp.is_bidirectional:
        return True
    return False
