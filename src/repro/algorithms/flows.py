"""Maximum flow and capacitated bipartite assignment (from scratch).

Substrate for the polynomial ``v-alibi`` (see
:mod:`repro.algorithms.alibis`).  The paper's ``v-alibi`` condition
quantifies over subsets ``Lab`` of processor labels; by max-flow/min-cut
duality (a Hall-type argument) the existential-subset condition is
*equivalent* to the infeasibility of a capacitated assignment of posted
records to processor labels.  This module provides the flow machinery:

* :class:`FlowNetwork` -- adjacency-list residual graph;
* :func:`max_flow` -- Dinic's algorithm (BFS level graph + DFS blocking
  flow), O(V^2 E) worst case, far better in practice on the small unit-ish
  capacities that arise here;
* :func:`feasible_assignment` -- the bipartite demand/capacity check used
  by the alibi computation, returning either an assignment or a violated
  cut (the paper's set ``Lab``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence

INF = float("inf")


class FlowNetwork:
    """A directed graph with residual capacities for max-flow."""

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self.adj: List[List[int]] = []  # node -> list of edge ids
        self.to: List[int] = []  # edge id -> head node
        self.cap: List[float] = []  # edge id -> residual capacity

    def node(self, key: Hashable) -> int:
        """Intern ``key`` as a node index (created on first use)."""
        if key not in self._index:
            self._index[key] = len(self.adj)
            self.adj.append([])
        return self._index[key]

    def add_edge(self, u: Hashable, v: Hashable, capacity: float) -> int:
        """Add edge u->v with the given capacity; returns its edge id.

        A paired reverse edge with zero capacity is created; ``edge_id ^ 1``
        is always the reverse edge.
        """
        ui, vi = self.node(u), self.node(v)
        eid = len(self.to)
        self.to.append(vi)
        self.cap.append(capacity)
        self.adj[ui].append(eid)
        self.to.append(ui)
        self.cap.append(0.0)
        self.adj[vi].append(eid + 1)
        return eid

    def flow_on(self, edge_id: int) -> float:
        """Flow currently pushed through ``edge_id`` (reverse residual)."""
        return self.cap[edge_id ^ 1]


def max_flow(net: FlowNetwork, source: Hashable, sink: Hashable) -> float:
    """Dinic's algorithm on ``net`` from ``source`` to ``sink``."""
    s, t = net.node(source), net.node(sink)
    total = 0.0
    n = len(net.adj)
    while True:
        # BFS: build level graph
        level = [-1] * n
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for eid in net.adj[u]:
                v = net.to[eid]
                if net.cap[eid] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        if level[t] < 0:
            return total
        # DFS blocking flow with iteration pointers
        it = [0] * n

        def dfs(u: int, pushed: float) -> float:
            if u == t:
                return pushed
            while it[u] < len(net.adj[u]):
                eid = net.adj[u][it[u]]
                v = net.to[eid]
                if net.cap[eid] > 0 and level[v] == level[u] + 1:
                    got = dfs(v, min(pushed, net.cap[eid]))
                    if got > 0:
                        net.cap[eid] -= got
                        net.cap[eid ^ 1] += got
                        return got
                it[u] += 1
            return 0.0

        while True:
            pushed = dfs(s, INF)
            if pushed <= 0:
                break
            total += pushed


@dataclass(frozen=True)
class AssignmentResult:
    """Outcome of :func:`feasible_assignment`.

    Attributes:
        feasible: whether every item could be assigned.
        assignment: item index -> chosen bin (only when feasible).
        violated_bins: a set of bins witnessing infeasibility via the
            min-cut (only when infeasible): the items restricted to these
            bins outnumber the bins' total capacity.  This is exactly the
            paper's set ``Lab``.
    """

    feasible: bool
    assignment: Optional[Dict[int, Hashable]] = None
    violated_bins: Optional[frozenset] = None


def feasible_assignment(
    items: Sequence[frozenset],
    capacities: Mapping[Hashable, int],
) -> AssignmentResult:
    """Assign each item to one allowed bin without exceeding capacities.

    ``items[i]`` is the set of bins item ``i`` may go to; ``capacities``
    bounds how many items each bin accepts.  Feasible iff max-flow from a
    super-source through items to bins to a super-sink saturates all
    items.  On infeasibility the min-cut yields a *deficient* bin set
    ``Lab``: the items whose allowed bins all lie in ``Lab`` outnumber
    ``sum(capacities[b] for b in Lab)`` -- a constructive Hall violation.
    """
    net = FlowNetwork()
    source = ("src",)
    sink = ("snk",)
    item_edges = []
    for i, bins in enumerate(items):
        eid = net.add_edge(source, ("item", i), 1)
        item_edges.append(eid)
        for b in bins:
            if capacities.get(b, 0) > 0:
                net.add_edge(("item", i), ("bin", b), 1)
    for b, c in capacities.items():
        if c > 0:
            net.add_edge(("bin", b), sink, c)

    flow = max_flow(net, source, sink)
    if flow >= len(items) - 1e-9:
        assignment: Dict[int, Hashable] = {}
        for i, bins in enumerate(items):
            # Find the saturated item->bin edge.
            ui = net.node(("item", i))
            for eid in net.adj[ui]:
                if eid % 2 == 0 and net.flow_on(eid) > 0.5:
                    head = net.to[eid]
                    for key, idx in net._index.items():  # noqa: SLF001
                        if idx == head and isinstance(key, tuple) and key[0] == "bin":
                            assignment[i] = key[1]
                            break
                    break
        return AssignmentResult(True, assignment=assignment)

    # Infeasible: source side of the min cut gives the Hall violator.
    reachable = _residual_reachable(net, source)
    lab = set()
    for b in capacities:
        key = ("bin", b)
        if key in net._index and net._index[key] in reachable:  # noqa: SLF001
            lab.add(b)
    # Also include allowed bins of unsaturated items that have zero
    # declared capacity (they never entered the graph).
    for i, bins in enumerate(items):
        if net._index[("item", i)] in reachable:  # noqa: SLF001
            for b in bins:
                if capacities.get(b, 0) <= 0:
                    lab.add(b)
    return AssignmentResult(False, violated_bins=frozenset(lab))


def _residual_reachable(net: FlowNetwork, source: Hashable) -> set:
    """Nodes reachable from ``source`` in the residual graph."""
    s = net.node(source)
    seen = {s}
    stack = [s]
    while stack:
        u = stack.pop()
        for eid in net.adj[u]:
            if net.cap[eid] > 0 and net.to[eid] not in seen:
                seen.add(net.to[eid])
                stack.append(net.to[eid])
    return seen
