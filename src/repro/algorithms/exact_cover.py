"""Exact-cover search (Knuth's Algorithm X, set-based).

Substrate for Theorem 7: a family of systems in Q has a selection
algorithm iff there is a set ELITE of processor labels such that each
member system contains *exactly one* processor with a label in ELITE.
After discarding labels that occur twice in any member, this is exactly an
exact-cover instance: the universe is the set of member systems, each
candidate label covers the members in which it occurs once, and ELITE must
partition the universe.

The solver is generic and reused by tests as an independently checkable
component.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Optional


def exact_covers(
    universe: Iterable[Hashable],
    candidates: Mapping[Hashable, Iterable[Hashable]],
) -> Iterator[FrozenSet[Hashable]]:
    """Yield every subfamily of ``candidates`` that exactly covers
    ``universe`` (each universe element in exactly one chosen candidate).

    Candidates with elements outside the universe are rejected up front.
    Empty candidates can never help and are ignored.  Deterministic order:
    the element with fewest covering candidates is branched on first
    (Knuth's S-heuristic), candidates in sorted order.
    """
    universe = frozenset(universe)
    cover_sets: Dict[Hashable, FrozenSet[Hashable]] = {}
    for name, elems in candidates.items():
        fs = frozenset(elems)
        if not fs or not fs <= universe:
            continue
        cover_sets[name] = fs

    by_element: Dict[Hashable, List[Hashable]] = {e: [] for e in universe}
    for name, fs in cover_sets.items():
        for e in fs:
            by_element[e].append(name)
    for e in by_element:
        by_element[e].sort(key=repr)

    def search(remaining: FrozenSet[Hashable], chosen: List[Hashable]) -> Iterator[FrozenSet[Hashable]]:
        if not remaining:
            yield frozenset(chosen)
            return
        # branch on the most constrained element
        element = min(
            remaining,
            key=lambda e: (sum(1 for c in by_element[e] if cover_sets[c] <= remaining), repr(e)),
        )
        options = [c for c in by_element[element] if cover_sets[c] <= remaining]
        for cand in options:
            chosen.append(cand)
            yield from search(remaining - cover_sets[cand], chosen)
            chosen.pop()

    yield from search(universe, [])


def find_exact_cover(
    universe: Iterable[Hashable],
    candidates: Mapping[Hashable, Iterable[Hashable]],
) -> Optional[FrozenSet[Hashable]]:
    """First exact cover, or None."""
    for cover in exact_covers(universe, candidates):
        return cover
    return None


def exact_one_per_group(
    groups: Mapping[Hashable, Mapping[Hashable, int]],
) -> Optional[FrozenSet[Hashable]]:
    """Theorem 7's specialized form.

    ``groups[member][label]`` is how many processors of family member
    ``member`` carry ``label``.  Returns a label set ELITE such that every
    member has exactly one processor with a label in ELITE, or None.

    Reduction: a label appearing >= 2 times in any member can never be in
    ELITE (it alone would violate "exactly one"); remaining labels cover
    the members where they appear exactly once; ELITE must exactly cover
    all members.
    """
    labels = set()
    for counts in groups.values():
        labels.update(counts)
    usable: Dict[Hashable, List[Hashable]] = {}
    for label in labels:
        if any(counts.get(label, 0) >= 2 for counts in groups.values()):
            continue
        covered = [m for m, counts in groups.items() if counts.get(label, 0) == 1]
        if covered:
            usable[label] = covered
    return find_exact_cover(groups.keys(), usable)
