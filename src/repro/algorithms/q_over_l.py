"""Lifting Q programs onto locking systems (the Q-over-L simulation).

Section 5's Algorithm 4 implicitly contains a general simulation: after
``relabel`` every edge of a variable owns a distinct lock-order count, so
a locking system can *implement* Q's subvalue variables -- ``post``
becomes a lock-protected read-modify-write into the slot keyed by the
poster's count, and ``peek`` is a single read.  This module packages that
simulation as a reusable adapter:

* :class:`LiftedQProgram` wraps **any**
  :class:`~repro.runtime.program.Program` that speaks Q instructions and
  produces a legal L (or L2) program: a ``relabel`` prologue harvests the
  slot keys, then every logical Q step is emulated.
* :func:`lift` is the convenience constructor.

Algorithm 4 (:mod:`repro.algorithms.algorithm4`) is this adapter
specialized to the two-pass family labeler; the standalone version exists
so the simulation itself can be exercised and tested independently --
"L is at least as powerful as Q", run rather than argued.

Emulation costs per logical step: ``peek`` -> 1 read; ``post`` -> lock +
read + write + unlock (plus lock retries under contention); internal
steps and halts pass through 1:1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable, Optional, Tuple

from ..core.system import InstructionSet, System
from ..exceptions import ExecutionError
from ..runtime.actions import (
    Action,
    Lock,
    MultiLock,
    Peek,
    Post,
    Read,
    Unlock,
    Write,
)
from ..runtime.program import LocalState, Program

_TAG = "LV"


def decode_variable(value: Hashable) -> Tuple[int, Tuple[Tuple[int, Hashable], ...]]:
    """Decode an L variable's value into (lock count, post records)."""
    if isinstance(value, tuple) and len(value) == 3 and value[0] == _TAG:
        return value[1], value[2]
    return 0, ()


def encode_variable(count: int, records: Tuple[Tuple[int, Hashable], ...]) -> Hashable:
    return (_TAG, count, tuple(sorted(records, key=lambda sr: sr[0])))


def with_slot(
    records: Tuple[Tuple[int, Hashable], ...], slot: int, value: Hashable
) -> Tuple[Tuple[int, Hashable], ...]:
    """Replace/insert one slot's record."""
    return tuple((s, v) for s, v in records if s != slot) + ((slot, value),)


STAGE_RELABEL = "relabel"
STAGE_RUN = "run"

SUB_LOCK = "lock"
SUB_READ = "read"
SUB_WRITE = "write"
SUB_UNLOCK = "unlock"

EMU_IDLE = "idle"
EMU_POST_READ = "post-read"
EMU_POST_WRITE = "post-write"
EMU_POST_UNLOCK = "post-unlock"


@dataclass(frozen=True)
class LiftedState:
    """Local state of a lifted program.

    The relabel prologue walks the names with a lock/read/write/unlock
    sub-machine collecting this processor's slot keys; afterwards the
    inner Q program runs behind the post/peek emulation.
    """

    stage: str
    orig_state: Hashable
    name_idx: int = 0
    sub: str = SUB_LOCK
    pending: Optional[Tuple[int, Tuple[Tuple[int, Hashable], ...]]] = None
    counts: Tuple[Tuple[Hashable, int], ...] = ()
    inner: LocalState = None
    emu: str = EMU_IDLE
    emu_read: Optional[Tuple[int, Tuple[Tuple[int, Hashable], ...]]] = None


class LiftedQProgram(Program):
    """Run a Q program on a locking system.

    Args:
        inner: the Q program to lift.
        names: the system's NAMES (the relabel prologue visits each).
        extended: use one indivisible multi-lock for the prologue
            (instruction set L2); the per-variable orders are then
            restrictions of a total processor order.
        inner_initial_from_counts: when True (default), the inner
            program's initial state is derived from the *post-relabel*
            state ``(orig_state, counts)`` -- what Algorithm 4 needs;
            when False the original initial state is passed through and
            the counts only key the slots.
    """

    def __init__(
        self,
        inner: Program,
        names: Tuple[Hashable, ...],
        extended: bool = False,
        inner_initial_from_counts: bool = True,
    ) -> None:
        self.inner = inner
        self.names = tuple(names)
        self.extended = extended
        self.inner_initial_from_counts = inner_initial_from_counts

    # ------------------------------------------------------------------

    def initial_state(self, state0) -> LocalState:
        return LiftedState(stage=STAGE_RELABEL, orig_state=state0)

    # -------------------------- relabel prologue ----------------------

    def _relabel_action(self, state: LiftedState) -> Action:
        name = self.names[state.name_idx]
        if state.sub == SUB_LOCK:
            if self.extended:
                return MultiLock(tuple(self.names))
            return Lock(name)
        if state.sub == SUB_READ:
            return Read(name)
        if state.sub == SUB_WRITE:
            count, records = state.pending
            return Write(name, encode_variable(count + 1, records))
        return Unlock(name)

    def _enter_run(self, state: LiftedState, counts) -> LiftedState:
        if self.inner_initial_from_counts:
            from ..core.families import RelabeledState

            seed = RelabeledState(state.orig_state, counts)
        else:
            seed = state.orig_state
        return LiftedState(
            stage=STAGE_RUN,
            orig_state=state.orig_state,
            counts=counts,
            inner=self.inner.initial_state(seed),
        )

    def _relabel_transition(self, state: LiftedState, action: Action, result) -> LiftedState:
        name = self.names[state.name_idx]
        if state.sub == SUB_LOCK:
            if not result:
                return state  # spin
            return replace(state, sub=SUB_READ)
        if state.sub == SUB_READ:
            return replace(state, sub=SUB_WRITE, pending=decode_variable(result))
        if state.sub == SUB_WRITE:
            return replace(state, sub=SUB_UNLOCK)
        count, _records = state.pending
        counts = state.counts + ((name, count),)
        nxt = state.name_idx + 1
        if nxt < len(self.names):
            sub = SUB_READ if self.extended else SUB_LOCK
            return replace(state, name_idx=nxt, sub=sub, pending=None, counts=counts)
        return self._enter_run(state, tuple(sorted(counts, key=repr)))

    # ----------------------------- run stage --------------------------

    def _count_for(self, state: LiftedState, name) -> int:
        for n, c in state.counts:
            if n == name:
                return c
        raise ExecutionError(f"no relabel count for name {name!r}")

    def _run_action(self, state: LiftedState) -> Action:
        logical = self.inner.next_action(state.inner)
        if state.emu == EMU_IDLE:
            if isinstance(logical, Peek):
                return Read(logical.name)
            if isinstance(logical, Post):
                return Lock(logical.name)
            return logical
        if state.emu == EMU_POST_READ:
            return Read(logical.name)
        if state.emu == EMU_POST_WRITE:
            count, records = state.emu_read
            slot = self._count_for(state, logical.name)
            return Write(
                logical.name,
                encode_variable(count, with_slot(records, slot, logical.value)),
            )
        return Unlock(logical.name)

    def _run_transition(self, state: LiftedState, action: Action, result) -> LiftedState:
        logical = self.inner.next_action(state.inner)
        if state.emu == EMU_IDLE:
            if isinstance(logical, Peek):
                _count, records = decode_variable(result)
                subvalues = tuple(v for _slot, v in records)
                inner = self.inner.transition(state.inner, logical, (None, subvalues))
                return replace(state, inner=inner)
            if isinstance(logical, Post):
                if not result:
                    return state  # lock denied; retry
                return replace(state, emu=EMU_POST_READ)
            inner = self.inner.transition(state.inner, logical, result)
            return replace(state, inner=inner)
        if state.emu == EMU_POST_READ:
            return replace(state, emu=EMU_POST_WRITE, emu_read=decode_variable(result))
        if state.emu == EMU_POST_WRITE:
            return replace(state, emu=EMU_POST_UNLOCK)
        inner = self.inner.transition(state.inner, logical, None)
        return replace(state, emu=EMU_IDLE, emu_read=None, inner=inner)

    # ------------------------------------------------------------------

    def next_action(self, state: LiftedState) -> Action:
        if state.stage == STAGE_RELABEL:
            return self._relabel_action(state)
        return self._run_action(state)

    def transition(self, state: LiftedState, action: Action, result) -> LocalState:
        if state.stage == STAGE_RELABEL:
            return self._relabel_transition(state, action, result)
        return self._run_transition(state, action, result)

    def is_selected(self, state) -> bool:
        if isinstance(state, LiftedState) and state.stage == STAGE_RUN:
            return self.inner.is_selected(state.inner)
        return False

    # ------------------------------------------------------------------

    @staticmethod
    def inner_state(state: LiftedState) -> Optional[LocalState]:
        """The lifted program's inner Q state (None during relabel)."""
        if isinstance(state, LiftedState) and state.stage == STAGE_RUN:
            return state.inner
        return None

    @staticmethod
    def relabel_counts(state: LiftedState) -> Optional[Tuple[Tuple[Hashable, int], ...]]:
        if isinstance(state, LiftedState) and state.stage == STAGE_RUN:
            return state.counts
        return None


def lift(
    inner: Program,
    system: System,
    inner_initial_from_counts: bool = True,
) -> LiftedQProgram:
    """Lift a Q program onto ``system`` (which must have locks)."""
    if not system.instruction_set.has_locks:
        raise ExecutionError("lifting requires a locking instruction set (L or L2)")
    return LiftedQProgram(
        inner,
        system.names,
        extended=system.instruction_set is InstructionSet.L2,
        inner_initial_from_counts=inner_initial_from_counts,
    )
