"""Algorithm 4: selection machinery for systems in L (Section 5).

    relabel(k);
    use Algorithm 3 as selection algorithm for the family of systems
    produced by relabel.

Three pieces compose:

1. **relabel** -- each processor locks each named variable in turn, reads
   its lock count, increments it, and unlocks; the counts become part of
   the processor's state and identify which member of the homogeneous
   family ``H`` (:func:`repro.core.families.relabel_family`) was realized.
2. **the Q-over-L simulation** -- Algorithm 3 speaks ``peek``/``post``;
   the generic adapter of :mod:`repro.algorithms.q_over_l` implements
   them with lock-protected slot writes keyed by the relabel counts
   (distinct per variable, so posters never clobber each other).
3. **Algorithm 3 over H** -- the two-pass labeler with tables from the
   relabel family's union; the processor's effective state for pass 2 is
   its :class:`~repro.core.families.RelabeledState`.

The L2 variant uses the indivisible multi-lock for relabel, constraining
the reachable count assignments to restrictions of one total processor
order (:func:`repro.core.families.relabel_family_extended`).
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from ..core.families import (
    Family,
    relabel_family,
    relabel_family_extended,
)
from ..core.system import InstructionSet, System
from ..runtime.actions import Action
from ..runtime.program import LocalState, Program
from .algorithm3 import A3State, TwoPassLabeler, family_tables
from .q_over_l import (  # re-exported: the codec is part of this module's API
    LiftedQProgram,
    LiftedState,
    decode_variable,
    encode_variable,
)
from .tables import Label

__all__ = [
    "A4State",
    "Algorithm4Program",
    "decode_variable",
    "encode_variable",
]

#: Algorithm 4's local state is the lifted adapter's state.
A4State = LiftedState


class _FamilyLabelerProgram(Program):
    """The two-pass family labeler as a plain (Q) Program.

    Its ``initial_state`` seed is the post-relabel
    :class:`~repro.core.families.RelabeledState` supplied by the lifting
    adapter.
    """

    def __init__(self, logic: TwoPassLabeler) -> None:
        self.logic = logic

    def initial_state(self, state0) -> LocalState:
        return self.logic.initial(state0)

    def next_action(self, state: A3State) -> Action:
        return self.logic.next_action(state)

    def transition(self, state: A3State, action: Action, result) -> LocalState:
        return self.logic.transition(state, action, result)


class Algorithm4Program(LiftedQProgram):
    """Runnable Algorithm 4: relabel, then the family labeler over H.

    Args:
        system: the L (or L2) system.  The relabel family and its tables
            are precomputed -- the "generated automatically from the
            bipartite graph specification" part.
        extended: use the L2 multi-lock relabel (default: follow the
            system's instruction set).
    """

    def __init__(self, system: System, extended: Optional[bool] = None) -> None:
        if extended is None:
            extended = system.instruction_set is InstructionSet.L2
        self.family: Family = (
            relabel_family_extended(system) if extended else relabel_family(system)
        )
        t1, t2 = family_tables(self.family)
        self.logic = TwoPassLabeler(t1, t2)
        super().__init__(
            inner=_FamilyLabelerProgram(self.logic),
            names=system.names,
            extended=extended,
            inner_initial_from_counts=True,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def learned_label(state: A4State) -> Optional[Label]:
        inner = LiftedQProgram.inner_state(state)
        if inner is None:
            return None
        return TwoPassLabeler.learned_label(inner)

    @staticmethod
    def is_done(state: A4State) -> bool:
        inner = LiftedQProgram.inner_state(state)
        return inner is not None and TwoPassLabeler.is_done(inner)

    @staticmethod
    def relabel_counts(state: A4State) -> Optional[Tuple[Tuple[Hashable, int], ...]]:
        return LiftedQProgram.relabel_counts(state)
