"""The S-variant of Algorithm 2 (Section 6, bounded-fair S).

"Computing the similarity labeling for bounded-fair schedules and
instruction set S is almost the same as for Q...  The distributed
algorithm for finding similarity labels is nearly the same as the one
given above for Q, and it too can be used as the basis for a selection
algorithm."

The differences forced by read/write variables:

* a variable holds a *single* value, so posts could clobber one another;
  writes are therefore **merging read-modify-writes**: each write is
  preceded by a fresh read, and the value written is the writer's own
  record plus every record it has ever observed there.  The single cell
  then behaves as a grow-only gossip set (a record can only be lost to a
  write racing within one step), and readers *accumulate* every record
  observed (monotone-sound: a record seen on my n-variable proves some
  writer with those suspects touches it);
* multiplicities are invisible, so ``v-alibi`` weakens to the SET form:
  variable label ``beta`` is ruled out by an observed record ``(S, n')``
  when no label in ``S`` names a ``beta`` variable ``n'`` -- matching the
  SET environment model that defines similarity for S;
* the counting (kind-2) ``p-alibi`` is dropped -- it cannot be evaluated
  without multiplicities, and SET-similarity never needs it;
* the write sweep alternates direction by round parity, so a variable
  with several writers alternates which record it exposes; under
  round-robin-style schedules information then flows both ways along
  chains;
* write rounds are *staggered* by a digest of the processor's initial
  state: every third round (offset per state) the write sweep is skipped.
  Differently-stated processors sharing a variable therefore cannot stay
  in a rhythm where one forever overwrites the other before any read --
  the failure mode of Figure 3 under the reverse round-robin schedule;
* **absence alibis** use the fairness bound ``k``: after enough of my own
  steps, every co-writer has provably completed full merge-write rounds,
  so a (name, label) slot whose record never surfaced proves the variable
  has no such writer.  The rule is gated on a structural precondition
  (every candidate variable label has at most two writers per name --
  where the exposure argument is airtight) and evaluated over *all-time*
  observations, so one exposure ever suffices.  This is precisely where
  bounded-fair S is stronger
  than fair S ("silence is informative"): constructing the program with
  ``bound_k=None`` disables absence alibis and models plain fairness, and
  the labeler then (correctly!) gets stuck exactly on the processors that
  *mimic* another (Figure 3's ``p``), while mimicry-free systems such as
  paths remain learnable under fairness alone.

Completeness under *adversarial* bounded-fair schedules is established in
[J85], which we do not have; the test suite validates convergence across
this repository's benchmark systems and schedule battery (absence alibis
assume the reader eventually observes every name present on its variable,
which the parity-alternating sweep guarantees for the <=2-writers-per-name
topologies exercised here).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import FrozenSet, Hashable, Optional, Set, Tuple

from ..runtime.actions import Action, Halt, Internal, Read, Write
from ..runtime.program import LocalState, Program
from .tables import Label, LabelTables

PHASE_READ = "read"
PHASE_COMPUTE = "compute"
PHASE_WRITE_READ = "write-read"  # re-read just before writing (merge)
PHASE_WRITE = "write"
PHASE_DONE = "done"


def _state_digest(state0: Hashable) -> int:
    """A stable per-initial-state seed for write-round staggering."""
    return zlib.crc32(repr(state0).encode()) % 1009


def _stagger_offset(seed: int, pec: FrozenSet[Label]) -> int:
    """The staggering offset, mixing the initial-state seed with the
    current suspect set: processors whose *knowledge* differs drift into
    different write rhythms, so neither can permanently bury the other's
    records.  (Processors with equal state and equal PEC write identical
    records, so their collisions are content-free.)"""
    pec_key = tuple(sorted(map(repr, pec)))
    return zlib.crc32(repr((seed, pec_key)).encode()) % 3


@dataclass(frozen=True)
class SRecord:
    """The value a processor writes into a shared variable."""

    suspects: FrozenSet[Label]
    name: Hashable


@dataclass(frozen=True)
class A2SState:
    """Local state of the S-variant labeler.

    ``seen`` accumulates, per name, every :class:`SRecord` ever read from
    that named variable; ``fresh`` holds only the records of the current
    epoch (the bounded-fairness slot-coverage rule needs *current* writer
    records -- stale wide suspect sets would poison it); ``base_seen``
    remembers the first non-record value observed (the variable's initial
    state); ``steps`` counts own steps within the epoch and ``epoch``
    saturates at a cap so the state space stays finite.
    """

    phase: str
    idx: int
    parity: int  # round counter mod 6: sweep direction and write gate
    offset: int  # staggering seed derived from state_0
    pec: FrozenSet[Label]
    vec: Tuple[FrozenSet[Label], ...]
    seen: Tuple[FrozenSet[SRecord], ...]
    base_seen: Tuple[Optional[Hashable], ...]
    steps: int = 0
    fresh: Tuple[FrozenSet[SRecord], ...] = ()
    epoch: int = 0


def _set_v_alibi(
    seen: FrozenSet[SRecord],
    base: Optional[Hashable],
    tables: LabelTables,
) -> Set[Label]:
    """SET-model variable alibis from accumulated observations."""
    out: Set[Label] = set()
    for beta in tables.vlabels:
        if (
            base is not None
            and tables.include_state
            and tables.vstate[beta] != base[1]
        ):
            out.add(beta)
            continue
        for record in seen:
            compatible = any(
                tables.neighborhood_size(record.name, alpha, beta) >= 1
                for alpha in record.suspects
                if alpha in tables.plabels
            )
            if not compatible:
                out.add(beta)
                break
    return out


def _absence_rule_applicable(
    vec_i: FrozenSet[Label], tables: LabelTables
) -> bool:
    """Soundness gate for the absence rule.

    The exposure argument (every co-writer's record reaches me within the
    threshold window) is guaranteed by merge-writes only when my variable
    has at most two writers per name.  The true variable label is always
    among the current candidates, so requiring the bound of *every*
    candidate guarantees it for the truth.
    """
    for beta in vec_i:
        for name in tables.names:
            writers = sum(
                tables.neighborhood_size(name, alpha, beta)
                for alpha in tables.plabels
            )
            if writers > 2:
                return False
    return True


def _absence_v_alibi(
    seen: FrozenSet[SRecord],
    vec_i: FrozenSet[Label],
    pec: FrozenSet[Label],
    my_name,
    tables: LabelTables,
) -> Set[Label]:
    """Bounded-fairness slot-coverage alibis ("silence is informative").

    After the threshold, every writer of my variable has completed full
    write sweeps, and the parity-alternating exposure has shown me each
    writer's record at least once -- except writers whose records were
    always identical to my own (same name, suspects equal to my PEC).
    So the *allowed* (name, writer-label) slots of my variable are

        {(my port name, alpha) : alpha in my PEC}
        union {(r.name, alpha) : record r seen here, alpha in r.suspects},

    and any candidate variable label requiring a slot outside this set is
    ruled out.  (Exposure of every writer is guaranteed for variables
    with at most two same-name writers under the alternating sweep; the
    general-case protocol is in [J85] -- see the module docstring.)
    """
    allowed = {(my_name, alpha) for alpha in pec}
    for record in seen:
        for alpha in record.suspects:
            allowed.add((record.name, alpha))
    out: Set[Label] = set()
    for beta in vec_i:
        for name in tables.names:
            for alpha in tables.plabels:
                if (
                    tables.neighborhood_size(name, alpha, beta) >= 1
                    and (name, alpha) not in allowed
                ):
                    out.add(beta)
                    break
            if beta in out:
                break
    return out


def _set_p_alibi(
    vec: Tuple[FrozenSet[Label], ...], tables: LabelTables
) -> Set[Label]:
    """Kind-1 processor alibis (the only kind available in S)."""
    out: Set[Label] = set()
    for alpha in tables.plabels:
        for i, name in enumerate(tables.names):
            if tables.n_nbr_label(alpha, name) not in vec[i]:
                out.add(alpha)
                break
    return out


class Algorithm2SProgram(Program):
    """Runnable S-variant labeler, parameterized by SET-model tables.

    ``tables`` must be built with the SET environment model, e.g.::

        theta = similarity_labeling(system, model=EnvironmentModel.SET)
        tables = LabelTables.from_labeled_system(system, theta)

    (LabelTables only stores counts; the SET semantics lives in the alibi
    functions here, which only ask "is the count >= 1".)
    """

    def __init__(
        self,
        tables: LabelTables,
        bound_k: Optional[int] = None,
        alternate_sweeps: bool = True,
        stagger: bool = True,
        merge_writes: bool = True,
    ) -> None:
        self.tables = tables
        self.bound_k = bound_k
        # Ablation knob: without parity alternation, a variable always
        # exposes the same (last) writer, and information flows only one
        # way along chains -- the labeler stalls.
        self.alternate_sweeps = alternate_sweeps
        self.stagger = stagger
        # Ablation knob: without merging, a write carries only the writer's
        # own record and the cell clobbers -- exposure then depends
        # entirely on the sweep choreography.
        self.merge_writes = merge_writes
        if bound_k is None:
            self._absence_threshold: Optional[int] = None
        else:
            # After bound_k * (steps per round) own steps, at least
            # bound_k * R global steps have elapsed, within which every
            # processor completes a full round (see module docstring).
            steps_per_round = 3 * len(tables.names) + 1
            # Staggering skips one write round in three: pad the window so
            # every writer still completes a full (written) sweep inside it.
            self._absence_threshold = 2 * bound_k * steps_per_round
        self._max_epochs = 2 * (len(tables.plabels) + len(tables.vlabels)) + 2

    # ------------------------------------------------------------------

    def initial_state(self, state0) -> LocalState:
        tables = self.tables
        pec = tables.plabels_with_state(state0)
        if not pec:
            pec = tables.plabels
        n = len(tables.names)
        return A2SState(
            phase=PHASE_READ,
            idx=0,
            parity=0,
            offset=_state_digest(state0) if self.stagger else 0,
            pec=frozenset(pec),
            vec=tuple(frozenset(tables.vlabels) for _ in range(n)),
            seen=tuple(frozenset() for _ in range(n)),
            base_seen=tuple(None for _ in range(n)),
            steps=0,
            fresh=tuple(frozenset() for _ in range(n)),
            epoch=0,
        )

    def _silent_round(self, state: A2SState) -> bool:
        """Every third round (per-state offset) the write sweep is skipped,
        so differently-stated co-writers cannot permanently bury each
        other's records."""
        if not self.stagger:
            return False
        offset = _stagger_offset(state.offset, state.pec)
        return (state.parity + offset) % 3 == 0

    def _sweep_name(self, state: A2SState):
        names = self.tables.names
        if not self.alternate_sweeps or state.parity % 2 == 0:
            return names[state.idx], state.idx
        real = len(names) - 1 - state.idx
        return names[real], real

    def next_action(self, state: A2SState) -> Action:
        if state.phase == PHASE_READ:
            name, _ = self._sweep_name(state)
            return Read(name)
        if state.phase == PHASE_COMPUTE:
            return Internal("alg2s-compute")
        if state.phase == PHASE_WRITE_READ:
            if self._silent_round(state):
                return Internal("alg2s-skip-write-read")
            name, _ = self._sweep_name(state)
            return Read(name)
        if state.phase == PHASE_WRITE:
            if self._silent_round(state):
                return Internal("alg2s-skip-write")
            name, real = self._sweep_name(state)
            if not self.merge_writes:
                return Write(name, SRecord(suspects=state.pec, name=name))
            # Merge-write: my current record plus every record I have ever
            # observed on this variable.  Clobbering can then never *lose*
            # a record -- the single cell behaves as a grow-only gossip
            # set, which is what makes the bounded-fairness absence rule
            # sound (see the module docstring).
            payload = frozenset({SRecord(suspects=state.pec, name=name)}) | state.seen[real]
            return Write(name, payload)
        return Halt()

    def _bump_steps(self, state: A2SState) -> int:
        if self._absence_threshold is None:
            return 0
        return min(state.steps + 1, self._absence_threshold)

    def _observe(self, state: A2SState, real: int, result) -> A2SState:
        """Fold one read result into seen/fresh/base_seen."""
        seen = list(state.seen)
        base_seen = list(state.base_seen)
        fresh = list(state.fresh)
        if isinstance(result, frozenset):
            records = frozenset(r for r in result if isinstance(r, SRecord))
            seen[real] = state.seen[real] | records
            fresh[real] = state.fresh[real] | records
        elif isinstance(result, SRecord):
            seen[real] = state.seen[real] | {result}
            fresh[real] = state.fresh[real] | {result}
        elif state.base_seen[real] is None:
            # First non-record value: the variable's still-unwritten
            # initial state.  (Wrapped so that a None base is also
            # remembered.)
            base_seen[real] = ("base", result)
        return replace(
            state,
            seen=tuple(seen),
            base_seen=tuple(base_seen),
            fresh=tuple(fresh),
        )

    def transition(self, state: A2SState, action: Action, result) -> LocalState:
        names = self.tables.names
        state = replace(state, steps=self._bump_steps(state))
        if state.phase == PHASE_READ:
            _, real = self._sweep_name(state)
            new = self._observe(state, real, result)
            nxt = state.idx + 1
            if nxt == len(names):
                return replace(new, phase=PHASE_COMPUTE, idx=0)
            return replace(new, idx=nxt)

        if state.phase == PHASE_WRITE_READ:
            if not self._silent_round(state):
                _, real = self._sweep_name(state)
                state = self._observe(state, real, result)
            return replace(state, phase=PHASE_WRITE)

        if state.phase == PHASE_COMPUTE:
            vec = tuple(
                state.vec[i]
                - frozenset(
                    _set_v_alibi(state.seen[i], state.base_seen[i], self.tables)
                )
                for i in range(len(names))
            )
            rollover = (
                self._absence_threshold is not None
                and state.steps >= self._absence_threshold
            )
            if rollover:
                vec = tuple(
                    vec[i]
                    - (
                        frozenset(
                            _absence_v_alibi(
                                state.seen[i] | state.fresh[i],
                                vec[i],
                                state.pec,
                                names[i],
                                self.tables,
                            )
                        )
                        if _absence_rule_applicable(vec[i], self.tables)
                        else frozenset()
                    )
                    for i in range(len(names))
                )
            pec = state.pec - frozenset(_set_p_alibi(vec, self.tables))
            first_phase = PHASE_WRITE_READ if self.merge_writes else PHASE_WRITE
            new = replace(state, phase=first_phase, idx=0, vec=vec, pec=pec)
            if rollover:
                new = replace(
                    new,
                    steps=0,
                    fresh=tuple(frozenset() for _ in names),
                    epoch=min(state.epoch + 1, self._max_epochs),
                )
            return new

        if state.phase == PHASE_WRITE:
            nxt = state.idx + 1
            if nxt == len(names):
                # Converged processors keep cycling: their writes must stay
                # fresh for neighbors still running the slot-coverage rule
                # (a silent neighbor would look like a missing writer).
                return replace(
                    state, phase=PHASE_READ, idx=0, parity=(state.parity + 1) % 6
                )
            return replace(
                state,
                idx=nxt,
                phase=PHASE_WRITE_READ if self.merge_writes else PHASE_WRITE,
            )

        return state

    # ------------------------------------------------------------------

    @staticmethod
    def learned_label(state: A2SState) -> Optional[Label]:
        if isinstance(state, A2SState) and len(state.pec) == 1:
            return next(iter(state.pec))
        return None

    @staticmethod
    def is_done(state: A2SState) -> bool:
        """Label learned (PEC a singleton); the program itself keeps
        cycling so its writes stay fresh for others."""
        return isinstance(state, A2SState) and len(state.pec) == 1
