"""SELECT(Sigma): runnable selection programs (Sections 3-5).

``SELECT(Sigma)`` "uses Algorithm 2 to find the label of each processor
and then selects the processor with a distinguished, unique label".  The
same shape works at every level of the paper:

* single system in Q -- Algorithm 2 + a singleton ELITE (Theorem 6);
* homogeneous family in Q -- Algorithm 3 + an ELITE set hitting each
  member exactly once (Theorem 7);
* system in L / L2 -- Algorithm 4 (relabel + Algorithm 3 over the relabel
  family) + the ELITE set built by Theorem 9's greedy loop.

Each factory returns a :class:`~repro.runtime.program.Program` whose
``is_selected`` is true exactly for processors that learned an ELITE
label; Stability holds because the done-state is absorbing.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Hashable, Optional

from ..core.families import Family, elite_by_theorem9_greedy
from ..core.selection import decide_selection
from ..core.similarity import similarity_labeling
from ..core.system import System
from ..exceptions import SelectionError
from ..runtime.actions import Action
from ..runtime.program import LocalState, Program
from .algorithm2 import Algorithm2Program
from .algorithm3 import Algorithm3Program
from .algorithm4 import Algorithm4Program
from .tables import Label, LabelTables


class SelectionWrapper(Program):
    """Adds ELITE-based selection on top of a label-learning program."""

    def __init__(
        self,
        inner: Program,
        learned: Callable[[LocalState], Optional[Label]],
        elite: FrozenSet[Label],
    ) -> None:
        self.inner = inner
        self.learned = learned
        self.elite = frozenset(elite)

    def initial_state(self, state0) -> LocalState:
        return self.inner.initial_state(state0)

    def next_action(self, state) -> Action:
        return self.inner.next_action(state)

    def transition(self, state, action: Action, result) -> LocalState:
        return self.inner.transition(state, action, result)

    def is_selected(self, state) -> bool:
        label = self.learned(state)
        return label is not None and label in self.elite


def select_program_q(system: System) -> SelectionWrapper:
    """SELECT for a single system in Q (Theorem 6 + Theorem 3).

    Raises:
        SelectionError: when no processor is uniquely labeled -- by
            Theorem 3 no selection algorithm exists.
    """
    theta = similarity_labeling(system)
    unique_labels = sorted(
        (
            theta[p]
            for p in system.processors
            if theta.class_size(theta[p]) == 1
        ),
        key=repr,
    )
    if not unique_labels:
        raise SelectionError(
            "every processor shares its similarity label; no selection "
            "algorithm exists (Theorem 3)"
        )
    elite = frozenset({unique_labels[0]})
    tables = LabelTables.from_labeled_system(system, theta)
    inner = Algorithm2Program(tables)
    return SelectionWrapper(inner, Algorithm2Program.learned_label, elite)


def select_program_family(
    family: Family, elite: Optional[FrozenSet[Hashable]] = None
) -> SelectionWrapper:
    """SELECT for a homogeneous family in Q (Theorem 7 + Algorithm 3)."""
    if elite is None:
        elite = family.elite()
        if elite is None:
            raise SelectionError(
                "no ELITE set hits each member exactly once; no selection "
                "algorithm exists for this family (Theorem 7)"
            )
    inner = Algorithm3Program(family)
    return SelectionWrapper(inner, Algorithm3Program.learned_label, frozenset(elite))


def select_program_l(system: System) -> SelectionWrapper:
    """SELECT for a system in L or L2 (Theorem 9 + Algorithm 4).

    Raises:
        SelectionError: when some relabel version pairs every processor
            (no selection algorithm exists, Theorems 3/8), or when the
            greedy ELITE construction fails.
    """
    decision = decide_selection(system)
    if not decision.possible:
        raise SelectionError(decision.reason)
    inner = Algorithm4Program(system)
    versions = inner.family.member_labelings()
    elite = elite_by_theorem9_greedy(versions, system.processors)
    return SelectionWrapper(inner, Algorithm4Program.learned_label, elite)


def select_program_s(system: System, bound_k: Optional[int] = None) -> SelectionWrapper:
    """SELECT for a bounded-fair system in S (Section 6).

    Uses the S-variant labeler with absence alibis enabled by the
    fairness bound (default ``2 * |P|``).

    Raises:
        SelectionError: when the SET-model similarity labeling leaves
            every processor paired (Theorem 3).
    """
    from ..core.environment import EnvironmentModel
    from .algorithm2_s import Algorithm2SProgram

    theta = similarity_labeling(system, model=EnvironmentModel.SET)
    unique_labels = sorted(
        (
            theta[p]
            for p in system.processors
            if theta.class_size(theta[p]) == 1
        ),
        key=repr,
    )
    if not unique_labels:
        raise SelectionError(
            "every processor shares its SET-model similarity label; no "
            "selection algorithm exists for bounded-fair S (Theorem 3)"
        )
    if bound_k is None:
        bound_k = 2 * len(system.processors)
    tables = LabelTables.from_labeled_system(
        system, theta, model=EnvironmentModel.SET
    )
    inner = Algorithm2SProgram(tables, bound_k=bound_k)
    return SelectionWrapper(
        inner, Algorithm2SProgram.learned_label, frozenset({unique_labels[0]})
    )


def select_program(system: System) -> SelectionWrapper:
    """Dispatch SELECT on the system's instruction set and schedule class."""
    from ..core.system import InstructionSet, ScheduleClass

    if system.schedule_class is ScheduleClass.GENERAL:
        raise SelectionError(
            "no selection algorithm exists under general schedules (Theorem 1)"
        )
    if system.instruction_set is InstructionSet.Q:
        return select_program_q(system)
    if system.instruction_set in (InstructionSet.L, InstructionSet.L2):
        return select_program_l(system)
    if system.schedule_class is ScheduleClass.BOUNDED_FAIR:
        return select_program_s(system)
    return select_program_fair_s(system)


def select_program_fair_s(system: System) -> SelectionWrapper:
    """SELECT for a *fair* (not bounded-fair) system in S (Section 6).

    Selection under plain fairness is possible iff some processor mimics
    no other.  Such a processor is immune to the fair-S obstruction: every
    label it might be confused with would require a subsystem view it can
    eventually refute, so the bound-free S labeler does narrow its PEC to
    a singleton (while mimicking processors may stay uncertain forever --
    harmlessly, since their labels are not in ELITE).

    The designated winner is the non-mimicking processor with the
    smallest SET-model label.

    Raises:
        SelectionError: when every processor mimics another (Section 6's
            impossibility), or when the non-mimicker's label is shared
            (cannot happen -- mimicry extends similarity -- but checked).
    """
    from ..core.environment import EnvironmentModel
    from ..core.mimicry import processors_mimicking_no_other
    from .algorithm2_s import Algorithm2SProgram

    winners = processors_mimicking_no_other(system)
    if not winners:
        raise SelectionError(
            "every processor mimics some other processor; no selection "
            "algorithm exists for this fair system in S (Section 6)"
        )
    theta = similarity_labeling(system, model=EnvironmentModel.SET)
    candidate_labels = sorted((theta[p] for p in winners), key=repr)
    designated = candidate_labels[0]
    if theta.class_size(designated) != 1:
        raise SelectionError(
            "non-mimicking processor shares its label; inconsistent "
            "similarity analysis"
        )
    tables = LabelTables.from_labeled_system(
        system, theta, model=EnvironmentModel.SET
    )
    inner = Algorithm2SProgram(tables, bound_k=None)  # no bound: plain fairness
    return SelectionWrapper(
        inner, Algorithm2SProgram.learned_label, frozenset({designated})
    )
