"""Algorithm 2: each processor learns its own similarity label (Section 4).

The paper's pseudocode, per processor ``k``::

    PEC := { alpha in PLABELS : state_0(alpha) = state_0(k) }
    for n in NAMES: VEC[n] := { beta in VLABELS :
                                state_0(beta) = state_0(n-nbr(k)) }
    do |PEC| > 1 ->
        for n in NAMES: peek local[n] from n;
                        VEC[n] := VEC[n] - v-alibi(local[n])
        PEC := PEC - p-alibi(VEC, local, PEC);
        for n in NAMES: post (suspects=PEC, name=n) to n
    od

Implemented as a :class:`~repro.runtime.program.Program` state machine so
it runs step-by-step in the simulator under any fair scheduler.  Each
``peek``/``post`` is one atomic step; the alibi computation is one
internal step.

Two deliberate, documented refinements of the pseudocode:

* the initial VEC is *all* of VLABELS; the state-matching filter is
  applied at the first peek (the ``peek`` result carries the variable's
  base state, which is how a processor observes ``state_0(n-nbr(k))`` in
  the first place);
* the loop body runs at least once even if PEC starts as a singleton, so
  that uniquely-stated processors still post their (singleton) suspect
  sets -- other processors' kind-2 alibis may need those posts.  A
  processor whose PEC is a singleton after the posts halts.

Termination (Theorem 6): for connected fair systems -- or unconnected
systems where processors know their variables' neighbor counts, supplied
here through the tables -- every PEC shrinks to the true label.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Hashable, Optional, Tuple

from ..runtime.actions import Action, Halt, Internal, Peek, Post
from ..runtime.program import LocalState, Program
from .alibis import PostRecord, p_alibi, v_alibi
from .tables import Label, LabelTables

PHASE_PEEK = "peek"
PHASE_COMPUTE = "compute"
PHASE_POST = "post"
PHASE_DONE = "done"


@dataclass(frozen=True)
class A2State:
    """Local state of a processor running Algorithm 2.

    Attributes:
        phase: which part of the loop body is executing.
        idx: index into NAMES for the peek/post sweeps.
        pec: current suspect set for my own label.
        vec: per-name suspect sets for my variables' labels.
        observed: per-name subvalue multisets from this round's peeks.

    The at-least-once loop semantics of the module docstring is
    structural: the initial phase is PEEK regardless of |PEC|, and the
    exit check happens only after the POST sweep.
    """

    phase: str
    idx: int
    pec: FrozenSet[Label]
    vec: Tuple[FrozenSet[Label], ...]
    observed: Tuple[Optional[Tuple[Hashable, ...]], ...]


class Algorithm2Program(Program):
    """Runnable Algorithm 2, parameterized by label tables.

    Args:
        tables: the system/family knowledge (Theta-derived).
        phase_tag: tag for posted records, so that Algorithm 3 can run two
            passes over the same physical variables.
        use_base: whether peeked base states feed the v-alibi (pass 1 of
            Algorithm 3 turns this off to ignore initial states).
        initial_vec: optional function ``(my_state0, name_index) ->
            frozenset of vlabels`` overriding the default all-VLABELS
            start (pass 2 of Algorithm 3 seeds VEC from pass-1 results).
    """

    def __init__(
        self,
        tables: LabelTables,
        phase_tag: int = 0,
        use_base: bool = True,
        use_kind2: bool = True,
    ) -> None:
        self.tables = tables
        self.phase_tag = phase_tag
        self.use_base = use_base
        # Ablation knob: disable the counting (kind-2) p-alibi to show it
        # is load-bearing (Figure 2's p3 never converges without it).
        self.use_kind2 = use_kind2

    # ------------------------------------------------------------------

    def initial_state(self, state0) -> LocalState:
        tables = self.tables
        pec = tables.plabels_with_state(state0)
        if not pec:
            # The tables do not know this state: the processor cannot be in
            # the modeled family at all.  Keep the full label set; alibis
            # will never shrink it and the defect stays visible.
            pec = tables.plabels
        n = len(tables.names)
        return A2State(
            phase=PHASE_PEEK,
            idx=0,
            pec=frozenset(pec),
            vec=tuple(frozenset(tables.vlabels) for _ in range(n)),
            observed=tuple(None for _ in range(n)),
        )

    def next_action(self, state: A2State) -> Action:
        names = self.tables.names
        if state.phase == PHASE_PEEK:
            return Peek(names[state.idx])
        if state.phase == PHASE_COMPUTE:
            return Internal("alg2-compute")
        if state.phase == PHASE_POST:
            return Post(
                names[state.idx],
                PostRecord(
                    suspects=state.pec,
                    name=names[state.idx],
                    phase=self.phase_tag,
                ),
            )
        return Halt()

    def transition(self, state: A2State, action: Action, result) -> LocalState:
        names = self.tables.names
        if state.phase == PHASE_PEEK:
            base, subvalues = result
            observed = list(state.observed)
            observed[state.idx] = subvalues
            vec = list(state.vec)
            alibis = v_alibi(
                subvalues,
                self.tables,
                base=base if self.use_base else None,
                phase=self.phase_tag,
            )
            vec[state.idx] = state.vec[state.idx] - frozenset(alibis)
            nxt = state.idx + 1
            if nxt == len(names):
                return replace(
                    state,
                    phase=PHASE_COMPUTE,
                    idx=0,
                    vec=tuple(vec),
                    observed=tuple(observed),
                )
            return replace(state, idx=nxt, vec=tuple(vec), observed=tuple(observed))

        if state.phase == PHASE_COMPUTE:
            observed = state.observed if self.use_kind2 else tuple(
                None for _ in state.observed
            )
            alibis = p_alibi(
                state.vec, observed, state.pec, self.tables, self.phase_tag
            )
            pec = state.pec - frozenset(alibis)
            return replace(state, phase=PHASE_POST, idx=0, pec=pec)

        if state.phase == PHASE_POST:
            nxt = state.idx + 1
            if nxt == len(names):
                if len(state.pec) <= 1:
                    return replace(state, phase=PHASE_DONE, idx=0)
                return replace(
                    state,
                    phase=PHASE_PEEK,
                    idx=0,
                    observed=tuple(None for _ in names),
                )
            return replace(state, idx=nxt)

        return state  # PHASE_DONE: halted

    # ------------------------------------------------------------------

    @staticmethod
    def learned_label(state: A2State) -> Optional[Label]:
        """The label this processor has learned (None while uncertain)."""
        if isinstance(state, A2State) and len(state.pec) == 1:
            return next(iter(state.pec))
        return None

    @staticmethod
    def is_done(state: A2State) -> bool:
        return isinstance(state, A2State) and state.phase == PHASE_DONE
