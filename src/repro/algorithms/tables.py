"""Label tables: what Algorithm 2 knows about the system (Section 4).

Algorithm 2 "is specific for the system Sigma, but can be generated
automatically from the bipartite graph specification of Sigma".  The
generated part is collected here as :class:`LabelTables`:

* ``PLABELS`` / ``VLABELS`` -- the processor/variable labels of the
  similarity labeling Theta;
* the initial state of each label class (condition (1) of environments
  guarantees this is well-defined);
* the label-level ``n-nbr`` function (condition (2): all processors with
  one label have same-labeled n-neighbors);
* ``neighborhood_size(n, alpha, beta)`` -- the number of n-neighbors
  labeled ``alpha`` of a variable labeled ``beta`` (condition (3): equal
  for all variables labeled ``beta``).

Tables can be built from a single system or from a family (via the union
system), optionally ignoring initial states (Algorithm 3's first pass).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Mapping, Optional, Tuple

from ..core.environment import EnvironmentModel
from ..core.labeling import Labeling
from ..core.names import Name, NodeId, State
from ..core.refinement import compute_similarity_labeling
from ..core.system import System
from ..exceptions import LabelingError

Label = Hashable


@dataclass(frozen=True)
class LabelTables:
    """The topology-derived knowledge every processor is given."""

    names: Tuple[Name, ...]
    plabels: FrozenSet[Label]
    vlabels: FrozenSet[Label]
    pstate: Mapping[Label, Optional[State]]
    vstate: Mapping[Label, Optional[State]]
    nbr_label: Mapping[Tuple[Label, Name], Label]
    sizes: Mapping[Tuple[Name, Label, Label], int]
    include_state: bool

    # ------------------------------------------------------------------

    def n_nbr_label(self, plabel: Label, name: Name) -> Label:
        """The label of the ``name``-neighbor of any ``plabel`` processor."""
        return self.nbr_label[(plabel, name)]

    def neighborhood_size(self, name: Name, plabel: Label, vlabel: Label) -> int:
        """Number of ``name``-neighbors labeled ``plabel`` of a ``vlabel``
        variable (0 if the combination never occurs)."""
        return self.sizes.get((name, plabel, vlabel), 0)

    def plabels_with_state(self, state: State) -> FrozenSet[Label]:
        """Initial PEC: labels whose class shares this initial state."""
        if not self.include_state:
            return self.plabels
        return frozenset(a for a in self.plabels if self.pstate[a] == state)

    def vlabels_with_state(self, state: State) -> FrozenSet[Label]:
        """Initial VEC entry: variable labels matching an observed base."""
        if not self.include_state:
            return self.vlabels
        return frozenset(b for b in self.vlabels if self.vstate[b] == state)

    # ------------------------------------------------------------------

    @staticmethod
    def from_labeled_system(
        system: System,
        theta: Labeling,
        include_state: bool = True,
        model: EnvironmentModel = EnvironmentModel.MULTISET,
    ) -> "LabelTables":
        """Build tables from a system and its similarity labeling.

        Under the MULTISET model (Q/L) the per-(name, label) neighbor
        counts must be identical across every variable of a class; under
        the SET model (bounded-fair S) only *presence* is class-invariant,
        so counts are aggregated as the per-class maximum (the S-side
        alibis only ever ask "is it >= 1", and the absence-rule gate uses
        the counts as a conservative upper bound).

        Raises:
            LabelingError: if the labeling is not environment-respecting
                enough for the tables to be well-defined, or if some
                processor gives one variable several names (Algorithm 2's
                post/peek bookkeeping cannot disambiguate that case; the
                paper silently assumes it away).
        """
        net = system.network
        for p in net.processors:
            nbrs = list(net.neighbors_of_processor(p).values())
            if len(set(nbrs)) != len(nbrs):
                raise LabelingError(
                    f"processor {p!r} names one variable twice; "
                    f"Algorithm 2 does not support multi-edges"
                )

        plabels = frozenset(theta[p] for p in net.processors)
        vlabels = frozenset(theta[v] for v in net.variables)
        overlap = plabels & vlabels
        if overlap:
            raise LabelingError(f"labels used for both kinds: {overlap!r}")

        pstate: Dict[Label, Optional[State]] = {}
        vstate: Dict[Label, Optional[State]] = {}
        for node in net.nodes:
            label = theta[node]
            store = pstate if net.is_processor(node) else vstate
            value = system.state0(node) if include_state else None
            if label in store and store[label] != value:
                raise LabelingError(
                    f"label {label!r} spans different initial states; "
                    f"not a similarity labeling"
                )
            store[label] = value

        nbr_label: Dict[Tuple[Label, Name], Label] = {}
        for p in net.processors:
            for name in net.names:
                key = (theta[p], name)
                value = theta[net.n_nbr(p, name)]
                if key in nbr_label and nbr_label[key] != value:
                    raise LabelingError(
                        f"processors labeled {key[0]!r} have differently "
                        f"labeled {name!r}-neighbors; not environment-respecting"
                    )
                nbr_label[key] = value

        sizes: Dict[Tuple[Name, Label, Label], int] = {}
        counted: Dict[Label, NodeId] = {}
        for v in net.variables:
            beta = theta[v]
            counts: Dict[Tuple[Name, Label], int] = {}
            for proc, name in net.neighbors_of_variable(v):
                key = (name, theta[proc])
                counts[key] = counts.get(key, 0) + 1
            if beta in counted:
                existing = {
                    (n, a): c for (n, a, b), c in sizes.items() if b == beta
                }
                if model is EnvironmentModel.MULTISET:
                    # Exact counts must be class-invariant.
                    if existing != counts:
                        raise LabelingError(
                            f"variables labeled {beta!r} have different "
                            f"neighborhood profiles; not environment-respecting"
                        )
                else:
                    # SET model: presence must be class-invariant; counts
                    # aggregate as the maximum (a sound upper bound).
                    if set(existing) != set(counts):
                        raise LabelingError(
                            f"variables labeled {beta!r} have different "
                            f"neighbor-label sets; not environment-respecting"
                        )
                    for key, c in counts.items():
                        name, alpha = key
                        sizes[(name, alpha, beta)] = max(
                            sizes[(name, alpha, beta)], c
                        )
            else:
                counted[beta] = v
                for (name, alpha), c in counts.items():
                    sizes[(name, alpha, beta)] = c

        return LabelTables(
            names=net.names,
            plabels=plabels,
            vlabels=vlabels,
            pstate=pstate,
            vstate=vstate,
            nbr_label=nbr_label,
            sizes=sizes,
            include_state=include_state,
        )

    @staticmethod
    def from_system(system: System, include_state: bool = True) -> "LabelTables":
        """Compute Theta (Algorithm 1) and build tables from it."""
        theta = compute_similarity_labeling(system, include_state=include_state).labeling
        return LabelTables.from_labeled_system(system, theta, include_state)

    @staticmethod
    def from_family(family, include_state: bool = True) -> "LabelTables":
        """Tables of a family: built on the union system (Section 5).

        The union system's labeling gives labels comparable across
        members, so one table set serves every member -- which is what a
        family-wide program needs.
        """
        union = family.union_system()
        theta = compute_similarity_labeling(union, include_state=include_state).labeling
        return LabelTables.from_labeled_system(union, theta, include_state)
