"""Algorithm 3: labels for homogeneous families in Q (Section 5).

    Use Algorithm 2 to find the number of neighbors of each variable;
    change the initial state of each variable to reflect that number;
    use Algorithm 2 again with the new initial states.

Pass 1 ignores every initial state, so it behaves identically in every
member of the family and computes the *structural* labeling of the common
network; in particular each processor then knows the (structural label,
hence neighbor counts) of each of its variables.  Pass 2 re-runs
Algorithm 2 with the family's union tables, now keyed by real processor
states and by the structural variable labels from pass 1.

The pure two-pass logic lives in :class:`TwoPassLabeler` so that it can be
driven both natively in Q (:class:`Algorithm3Program`) and through the
lock-based Q-emulation of Algorithm 4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable, Optional, Tuple

from ..core.families import Family
from ..core.refinement import compute_similarity_labeling
from ..exceptions import FamilyError
from ..runtime.actions import Action, Halt, Internal, Post
from ..runtime.program import LocalState, Program
from .algorithm2 import A2State, Algorithm2Program, PHASE_DONE, PHASE_PEEK
from .alibis import PostRecord
from .tables import Label, LabelTables

STRUCT = "struct"


def structural_state(label: Label) -> Tuple[str, Label]:
    """The variable initial state used in pass 2: its structural label."""
    return (STRUCT, label)


def family_tables(family: Family) -> Tuple[LabelTables, LabelTables]:
    """Build (pass-1, pass-2) tables for a homogeneous family.

    Pass 1: structural tables of the (common) network, states ignored.
    Pass 2: union tables of the family with each variable's initial state
    replaced by its structural label, per Algorithm 3.
    """
    if not family.is_homogeneous:
        raise FamilyError("Algorithm 3 requires a homogeneous family")
    representative = family.members[0]
    struct_theta = compute_similarity_labeling(
        representative, include_state=False
    ).labeling
    t1 = LabelTables.from_labeled_system(
        representative, struct_theta, include_state=False
    )
    modified_members = [
        member.with_state(
            {v: structural_state(struct_theta[v]) for v in member.variables}
        )
        for member in family.members
    ]
    t2 = LabelTables.from_family(Family(modified_members), include_state=True)
    return t1, t2


@dataclass(frozen=True)
class A3State:
    """Two-pass state: which pass is running plus the inner A2 state.

    ``effective_state`` is what pass 2 treats as this processor's initial
    state; for plain Algorithm 3 it is the node's ``state_0``, while
    Algorithm 4 substitutes the post-relabel state.
    """

    pass_no: int
    inner: A2State
    effective_state: Hashable
    l1_label: Optional[Label] = None


class TwoPassLabeler:
    """The pure logic of Algorithm 3 (no runtime coupling)."""

    def __init__(self, t1: LabelTables, t2: LabelTables) -> None:
        self.t1 = t1
        self.t2 = t2
        self._p1 = Algorithm2Program(t1, phase_tag=1, use_base=False)
        self._p2 = Algorithm2Program(t2, phase_tag=2, use_base=False)

    # ------------------------------------------------------------------

    def initial(self, effective_state: Hashable) -> A3State:
        inner = self._p1.initial_state(None)  # states ignored in pass 1
        return A3State(pass_no=1, inner=inner, effective_state=effective_state)

    def _enter_pass2(self, state: A3State) -> A3State:
        l1 = Algorithm2Program.learned_label(state.inner)
        if l1 is None:  # pragma: no cover - pass 1 done implies singleton
            raise FamilyError("pass 1 finished without a learned label")
        pec = self.t2.plabels_with_state(state.effective_state)
        if not pec:
            pec = self.t2.plabels
        vec = []
        for name in self.t2.names:
            expected = structural_state(self.t1.n_nbr_label(l1, name))
            vec.append(
                frozenset(
                    b for b in self.t2.vlabels if self.t2.vstate[b] == expected
                )
            )
        inner = A2State(
            phase=PHASE_PEEK,
            idx=0,
            pec=frozenset(pec),
            vec=tuple(vec),
            observed=tuple(None for _ in self.t2.names),
        )
        return A3State(
            pass_no=2, inner=inner, effective_state=state.effective_state, l1_label=l1
        )

    # ------------------------------------------------------------------

    def next_action(self, state: A3State) -> Action:
        program = self._p1 if state.pass_no == 1 else self._p2
        action = program.next_action(state.inner)
        if isinstance(action, Halt) and state.pass_no == 1:
            # Bridge into pass 2 with one internal step.
            return Internal("alg3-pass-switch")
        if state.pass_no == 2 and isinstance(action, Post):
            # Bundle the frozen pass-1 singleton with the live pass-2
            # record: a post overwrites this processor's subvalue, and
            # pass-1 stragglers still need the pass-1 information.
            pass1_record = PostRecord(
                suspects=frozenset({state.l1_label}), name=action.name, phase=1
            )
            return Post(action.name, (pass1_record, action.value))
        return action

    def transition(self, state: A3State, action: Action, result) -> A3State:
        if state.pass_no == 1 and isinstance(action, Internal) and action.tag == "alg3-pass-switch":
            return self._enter_pass2(state)
        program = self._p1 if state.pass_no == 1 else self._p2
        inner = program.transition(state.inner, action, result)
        return replace(state, inner=inner)

    # ------------------------------------------------------------------

    @staticmethod
    def learned_label(state: A3State) -> Optional[Label]:
        """The pass-2 label once both passes finished, else None."""
        if (
            isinstance(state, A3State)
            and state.pass_no == 2
            and state.inner.phase == PHASE_DONE
        ):
            return Algorithm2Program.learned_label(state.inner)
        return None

    @staticmethod
    def is_done(state: A3State) -> bool:
        return (
            isinstance(state, A3State)
            and state.pass_no == 2
            and state.inner.phase == PHASE_DONE
        )


class Algorithm3Program(Program):
    """Runnable Algorithm 3 for a homogeneous family in Q.

    The same program instance works on every member of the family: a
    processor only consults its own initial state and its observations.
    """

    def __init__(self, family: Family) -> None:
        t1, t2 = family_tables(family)
        self.logic = TwoPassLabeler(t1, t2)

    def initial_state(self, state0) -> LocalState:
        return self.logic.initial(state0)

    def next_action(self, state: A3State) -> Action:
        return self.logic.next_action(state)

    def transition(self, state: A3State, action: Action, result) -> LocalState:
        return self.logic.transition(state, action, result)

    @staticmethod
    def learned_label(state: A3State) -> Optional[Label]:
        return TwoPassLabeler.learned_label(state)

    @staticmethod
    def is_done(state: A3State) -> bool:
        return TwoPassLabeler.is_done(state)
