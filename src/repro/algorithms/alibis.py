"""Alibi computation for Algorithm 2 (paper, Section 4).

A node has an **alibi** for a label when it can *prove*, from what it has
observed, that it cannot carry that label.  Algorithm 2 shrinks suspect
sets by removing labels with alibis; because alibis are sound at any time
(observations only accumulate), "a node can never find an alibi for its
own label, so Algorithm 2 never terminates with a wrong answer".

Processor alibis (``p-alibi``), two kinds:

1. my ``n``-neighbor has an alibi for ``n-nbr(alpha)``'s label, so I am
   not an ``alpha``;
2. I can see that *all* processors labeled ``alpha`` attached to my
   ``n``-variable already know they are ``alpha`` (they posted the
   singleton suspect set), and I do not yet know my own label -- so I am
   not one of them.

   Note: the paper writes ``neighborhood_size(n, n-nbr(alpha), alpha)``
   here, which does not type-check against the declared signature
   (name, processor-label, variable-label); we implement the semantically
   forced ``neighborhood_size(n, alpha, n-nbr(alpha))``.  See DESIGN.md.

Variable alibis (``v-alibi``): a variable cannot be labeled ``beta`` if
too many of its posts can only come from some label set ``Lab``:

    exists n, Lab:  #{posts x: x.name = n and x.suspects <= Lab}
                        >  sum_{alpha in Lab} neighborhood_size(n, alpha, beta).

The paper notes ([J85]) that only linearly many ``Lab`` need checking; we
go further: by max-flow/min-cut duality the existential condition is
*equivalent* to the infeasibility of assigning each post to one of its
suspected labels within ``beta``'s per-label capacities.  We implement
both the polynomial flow test (:func:`v_alibi`) and the literal powerset
test (:func:`v_alibi_powerset`, for cross-checking on small systems).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations
from typing import FrozenSet, Hashable, Iterable, Optional, Sequence, Set, Tuple

from .flows import feasible_assignment
from .tables import Label, LabelTables


@dataclass(frozen=True)
class PostRecord:
    """The value a processor posts to a shared variable.

    Mirrors the paper's posted record: ``x.suspects`` (the poster's
    current PEC) and ``x.name`` (the name under which the poster reaches
    this variable).  ``phase`` separates the passes of Algorithm 3, which
    reuses the same physical variables twice.
    """

    suspects: FrozenSet[Label]
    name: Hashable
    phase: int = 0


def records_of(
    subvalues: Iterable[Hashable], phase: Optional[int] = None
) -> Tuple[PostRecord, ...]:
    """Filter a peeked subvalue multiset down to (phase-matching) records.

    A subvalue may be a single :class:`PostRecord` or a *bundle* (tuple)
    of records: Algorithm 3's pass 2 posts both its frozen pass-1 record
    and its live pass-2 record, because a ``post`` physically overwrites
    the poster's previous subvalue and stragglers still need the pass-1
    information.  At most one record per phase is taken from a bundle.
    """
    out = []
    for sv in subvalues:
        if isinstance(sv, PostRecord):
            candidates: Tuple[PostRecord, ...] = (sv,)
        elif isinstance(sv, tuple):
            candidates = tuple(r for r in sv if isinstance(r, PostRecord))
        else:
            continue
        for r in candidates:
            if phase is None or r.phase == phase:
                out.append(r)
                break
    return tuple(out)


# ----------------------------------------------------------------------
# v-alibi
# ----------------------------------------------------------------------


def _beta_feasible(
    records: Sequence[PostRecord], beta: Label, tables: LabelTables
) -> bool:
    """Can a ``beta`` variable explain these posts?  (flow feasibility)"""
    by_name: dict = {}
    for r in records:
        by_name.setdefault(r.name, []).append(r)
    for name, posts in by_name.items():
        items = [frozenset(p.suspects) & tables.plabels for p in posts]
        capacities = {
            alpha: tables.neighborhood_size(name, alpha, beta)
            for alpha in tables.plabels
        }
        if not feasible_assignment(items, capacities).feasible:
            return False
    return True


def v_alibi(
    peeked_subvalues: Iterable[Hashable],
    tables: LabelTables,
    base: Optional[Hashable] = None,
    phase: Optional[int] = None,
) -> Set[Label]:
    """Variable labels ruled out by the peeked contents.

    Args:
        peeked_subvalues: the multiset part of a ``peek`` result.
        tables: label tables of the system/family.
        base: the observed base state of the variable; when given (and
            the tables carry states), labels with a different class state
            are also ruled out.
        phase: restrict to posts of this Algorithm 3 pass.
    """
    records = records_of(peeked_subvalues, phase)
    out: Set[Label] = set()
    for beta in tables.vlabels:
        if (
            base is not None
            and tables.include_state
            and tables.vstate[beta] != base
        ):
            out.add(beta)
            continue
        if not _beta_feasible(records, beta, tables):
            out.add(beta)
    return out


def v_alibi_powerset(
    peeked_subvalues: Iterable[Hashable],
    tables: LabelTables,
    base: Optional[Hashable] = None,
    phase: Optional[int] = None,
) -> Set[Label]:
    """The paper's ``v-alibi``, literally: quantify over Lab subsets.

    Exponential in ``|PLABELS|``; used to cross-validate :func:`v_alibi`
    (they are provably equivalent; the property tests check it anyway).
    """
    records = records_of(peeked_subvalues, phase)
    plabels = sorted(tables.plabels, key=repr)
    subsets = list(
        chain.from_iterable(combinations(plabels, k) for k in range(len(plabels) + 1))
    )
    out: Set[Label] = set()
    for beta in tables.vlabels:
        if (
            base is not None
            and tables.include_state
            and tables.vstate[beta] != base
        ):
            out.add(beta)
            continue
        found = False
        for name in tables.names:
            named = [r for r in records if r.name == name]
            for lab in subsets:
                lab_set = frozenset(lab)
                covered = sum(
                    1 for r in named if frozenset(r.suspects) & tables.plabels <= lab_set
                )
                capacity = sum(
                    tables.neighborhood_size(name, alpha, beta) for alpha in lab_set
                )
                if covered > capacity:
                    found = True
                    break
            if found:
                break
        if found:
            out.add(beta)
    return out


# ----------------------------------------------------------------------
# p-alibi
# ----------------------------------------------------------------------


def p_alibi(
    vec: Sequence[FrozenSet[Label]],
    observed: Sequence[Optional[Iterable[Hashable]]],
    pec: FrozenSet[Label],
    tables: LabelTables,
    phase: Optional[int] = None,
) -> Set[Label]:
    """Processor labels ruled out for *me*, given my current knowledge.

    Args:
        vec: per-name suspect sets for my named variables, aligned with
            ``tables.names``.
        observed: per-name peeked subvalue multisets (None if not yet
            peeked this round).
        pec: my current suspect set.
        tables: label tables.
        phase: Algorithm 3 pass filter for the posted records.
    """
    out: Set[Label] = set()
    for alpha in tables.plabels:
        ruled_out = False
        for i, name in enumerate(tables.names):
            expected_vlabel = tables.n_nbr_label(alpha, name)
            # Kind 1: my n-variable cannot be labeled like alpha's.
            if expected_vlabel not in vec[i]:
                ruled_out = True
                break
            # Kind 2: every alpha attached to such a variable already
            # knows its label, and I do not.
            if len(pec) > 1 and observed[i] is not None:
                records = records_of(observed[i], phase)
                singleton_count = sum(
                    1
                    for r in records
                    if r.name == name and frozenset(r.suspects) == {alpha}
                )
                if singleton_count == tables.neighborhood_size(
                    name, alpha, expected_vlabel
                ):
                    ruled_out = True
                    break
        if ruled_out:
            out.add(alpha)
    return out
