"""Runnable algorithms: Algorithms 1-4, SELECT, alibis, substrates."""

from .algorithm2 import A2State, Algorithm2Program
from .algorithm2_s import A2SState, Algorithm2SProgram, SRecord
from .algorithm3 import (
    A3State,
    Algorithm3Program,
    TwoPassLabeler,
    family_tables,
    structural_state,
)
from .algorithm4 import (
    A4State,
    Algorithm4Program,
    decode_variable,
    encode_variable,
)
from .alibis import PostRecord, p_alibi, records_of, v_alibi, v_alibi_powerset
from .q_over_l import LiftedQProgram, LiftedState, lift
from .exact_cover import exact_covers, exact_one_per_group, find_exact_cover
from .flows import AssignmentResult, FlowNetwork, feasible_assignment, max_flow
from .select_program import (
    SelectionWrapper,
    select_program,
    select_program_family,
    select_program_fair_s,
    select_program_l,
    select_program_q,
    select_program_s,
)
from .tables import LabelTables

__all__ = [
    "A2SState",
    "A2State",
    "A3State",
    "A4State",
    "Algorithm2Program",
    "Algorithm2SProgram",
    "Algorithm3Program",
    "Algorithm4Program",
    "AssignmentResult",
    "FlowNetwork",
    "LabelTables",
    "LiftedQProgram",
    "LiftedState",
    "lift",
    "PostRecord",
    "SRecord",
    "SelectionWrapper",
    "TwoPassLabeler",
    "decode_variable",
    "encode_variable",
    "exact_covers",
    "exact_one_per_group",
    "family_tables",
    "feasible_assignment",
    "find_exact_cover",
    "max_flow",
    "p_alibi",
    "records_of",
    "select_program",
    "select_program_family",
    "select_program_l",
    "select_program_fair_s",
    "select_program_q",
    "select_program_s",
    "structural_state",
    "v_alibi",
    "v_alibi_powerset",
]
