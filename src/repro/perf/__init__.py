"""Performance layer: batch similarity analysis and microbenchmarks.

The core engines (:mod:`repro.core.refinement`) answer one similarity
query at a time.  Production workloads ask many related queries -- every
member of a family, every size of a topology sweep, every candidate
configuration of an experiment -- and this package drives those in bulk:

* :mod:`repro.perf.batch` -- :func:`batch_similarity` fans a family of
  systems across a ``concurrent.futures`` process pool with a keyed
  result cache (system fingerprint -> :class:`RefinementResult`), so
  duplicate members are solved once and independent members in parallel.
* :mod:`repro.perf.microbench` -- the refinement microbenchmark harness:
  times all three engines across ring/grid/random topologies and records
  the numbers in ``BENCH_refinement.json`` so every PR leaves a perf
  trajectory behind.
* :mod:`repro.perf.mp_bench` -- faulty-channel delivery throughput for
  the message-passing runtime (``BENCH_mp_faults.json``);
* :mod:`repro.perf.witness_bench` -- serial vs sharded vs cached timing
  of the separation-witness sweep engine (``BENCH_witness.json``);
* :mod:`repro.perf.explore_bench` -- unreduced vs Θ-reduced vs sharded
  timing of the bounded schedule explorer (``BENCH_explore.json``);
* :mod:`repro.perf.serve_bench` -- cold vs warm-store latency and
  throughput of the analysis service under a seeded concurrent mixed
  workload (``BENCH_serve.json``);
* :mod:`repro.perf.parametric_bench` -- cutoff detection end to end over
  the three headline parameterized claims (``BENCH_parametric.json``).

All are exposed on the CLI: ``python -m repro batch ...``,
``python -m repro bench ...``, ``python -m repro bench-mp ...``,
``python -m repro bench-witness ...``, ``python -m repro
bench-explore ...``, ``python -m repro bench-serve ...``, and
``python -m repro bench-parametric ...``.
"""

from .batch import (
    BatchReport,
    SimilarityCache,
    batch_similarity,
    system_fingerprint,
)
from .explore_bench import format_explore_bench, run_explore_bench
from .meta import bench_meta
from .microbench import run_microbench
from .mp_bench import run_mp_bench
from .parametric_bench import format_parametric_bench, run_parametric_bench
from .serve_bench import format_serve_bench, run_serve_bench
from .witness_bench import format_witness_bench, run_witness_bench

__all__ = [
    "BatchReport",
    "SimilarityCache",
    "batch_similarity",
    "bench_meta",
    "format_explore_bench",
    "format_parametric_bench",
    "format_serve_bench",
    "format_witness_bench",
    "run_explore_bench",
    "run_microbench",
    "run_mp_bench",
    "run_parametric_bench",
    "run_serve_bench",
    "run_witness_bench",
    "system_fingerprint",
]
