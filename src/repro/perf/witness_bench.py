"""Witness-sweep microbenchmark: serial vs sharded vs cached.

Times :func:`repro.analysis.witness_engine.run_sweep` over the standard
small-system bounds for every adjacent model pair of the hierarchy,
three ways per pair:

* **serial** -- one process, fresh :class:`DecisionCache` (the cost the
  original ``find_witnesses`` loop paid);
* **sharded** -- the process-pool path at the requested worker count,
  fresh cache (on a multi-core host this is where the wall-clock win
  lives; on a single core the engine stays serial and the row records
  that honestly);
* **cached** -- serial again but re-using the warm cache of the first
  run, so every ``decide_selection`` call is a hit (the steady-state
  cost of re-sweeping, e.g. after widening bounds or on resume).

Each row also asserts *agreement*: the sharded witness list must be
identical (same systems, same order) to the serial one.  Everything is
written to ``BENCH_witness.json`` so future PRs can compare.

CLI: ``python -m repro bench-witness --workers 4 --output BENCH_witness.json``.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence, Tuple

from ..analysis.witness_engine import DecisionCache, SweepSpec, run_sweep
from ..core.hierarchy import POWER_ORDER
from .meta import bench_meta

#: Adjacent (weaker, stronger) pairs of the paper's power order.
ADJACENT_PAIRS: Tuple[Tuple[str, str], ...] = tuple(
    (POWER_ORDER[i], POWER_ORDER[i + 1]) for i in range(len(POWER_ORDER) - 1)
)


def _hit_rate(hits: int, misses: int) -> Optional[float]:
    total = hits + misses
    return round(hits / total, 4) if total else None


def run_witness_bench(
    pairs: Sequence[Tuple[str, str]] = ADJACENT_PAIRS,
    max_processors: int = 3,
    max_names: int = 2,
    max_variables: int = 3,
    allow_marks: bool = False,
    workers: int = 4,
    output: Optional[str] = "BENCH_witness.json",
) -> dict:
    """Run the witness-sweep benchmark and (optionally) write JSON.

    Args:
        pairs: (weaker, stronger) model-label pairs to sweep; defaults to
            every adjacent pair of :data:`POWER_ORDER`.
        max_processors/max_names/max_variables: enumeration bounds.
        allow_marks: also enumerate single-node markings.
        workers: requested pool size for the sharded run (the row records
            the *effective* count, which is 0 on a single-core host).
        output: path for the JSON artifact, or None to skip writing.

    Returns:
        The results document (also written to ``output``).
    """
    meta = bench_meta(requested_workers=workers)
    meta["bounds"] = {
        "max_processors": max_processors,
        "max_names": max_names,
        "max_variables": max_variables,
        "allow_marks": allow_marks,
    }
    doc: dict = {
        "meta": meta,
        "pairs": [],
        "all_agree": True,
    }

    for weaker, stronger in pairs:
        spec = SweepSpec(
            weaker=weaker,
            stronger=stronger,
            max_processors=max_processors,
            max_names=max_names,
            max_variables=max_variables,
            allow_marks=allow_marks,
        )

        serial = run_sweep(spec, workers=0)
        sharded = run_sweep(spec, workers=workers)
        warm = DecisionCache()
        warm.merge(serial.cache.snapshot())
        cached = run_sweep(spec, workers=0, cache=warm)

        serial_list = [w.describe() for w in serial.witnesses]
        agree = (
            serial_list == [w.describe() for w in sharded.witnesses]
            and serial_list == [w.describe() for w in cached.witnesses]
        )
        doc["all_agree"] = doc["all_agree"] and agree
        doc["pairs"].append(
            {
                "weaker": weaker,
                "stronger": stronger,
                "witnesses": len(serial.witnesses),
                "shards": serial.shards,
                "serial_s": round(serial.elapsed, 4),
                "sharded_s": round(sharded.elapsed, 4),
                "sharded_workers": sharded.workers,
                "cached_s": round(cached.elapsed, 4),
                "speedup_sharded": (
                    round(serial.elapsed / sharded.elapsed, 2)
                    if sharded.elapsed > 0
                    else None
                ),
                "speedup_cached": (
                    round(serial.elapsed / cached.elapsed, 2)
                    if cached.elapsed > 0
                    else None
                ),
                "serial_cache": {
                    "hits": serial.stats.cache_hits,
                    "misses": serial.stats.cache_misses,
                    "hit_rate": _hit_rate(
                        serial.stats.cache_hits, serial.stats.cache_misses
                    ),
                },
                "cached_cache": {
                    "hits": cached.stats.cache_hits,
                    "misses": cached.stats.cache_misses,
                    "hit_rate": _hit_rate(
                        cached.stats.cache_hits, cached.stats.cache_misses
                    ),
                },
                "agreement": agree,
            }
        )

    if output:
        with open(output, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    return doc


def format_witness_bench(doc: dict) -> str:
    """A terse human-readable rendering of :func:`run_witness_bench` output."""
    meta = doc["meta"]
    bounds = meta["bounds"]
    lines: List[str] = []
    lines.append(
        f"witness-sweep bench (python {meta['python']}, {meta['cpu_count']} cpu, "
        f"bounds {bounds['max_processors']}p/{bounds['max_names']}n/"
        f"{bounds['max_variables']}v"
        f"{', marks' if bounds['allow_marks'] else ''})"
    )
    lines.append(
        f"{'pair':<24}{'wit':>5}{'serial':>10}{'sharded':>10}{'cached':>10}"
        f"{'hit%':>7}  agree"
    )
    for row in doc["pairs"]:
        hit_rate = row["cached_cache"]["hit_rate"]
        hit = f"{hit_rate * 100:.0f}%" if hit_rate is not None else "-"
        lines.append(
            f"{row['weaker'] + '<' + row['stronger']:<24}{row['witnesses']:>5}"
            f"{row['serial_s']:>9.2f}s{row['sharded_s']:>9.2f}s"
            f"{row['cached_s']:>9.2f}s{hit:>7}  {'yes' if row['agreement'] else 'NO'}"
        )
    lines.append(
        "sharded run used "
        f"{doc['pairs'][0]['sharded_workers'] if doc['pairs'] else 0} workers "
        f"(requested {meta['requested_workers']}"
        f"{', DEGRADED: more workers than cpus' if meta.get('degraded') else ''}); "
        f"all lists agree: {'yes' if doc['all_agree'] else 'NO'}"
    )
    return "\n".join(lines)
