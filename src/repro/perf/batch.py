"""Batch similarity analysis: fingerprint cache + process-pool fan-out.

``batch_similarity`` answers a *list* of similarity queries the way a
serving layer would: deduplicate by content fingerprint, consult a keyed
result cache, and fan the remaining distinct systems across worker
processes.  Three effects stack:

1. **Incidence reuse** -- members of a homogeneous family share one
   :class:`~repro.core.network.Network` object, so the serial path builds
   its incidence cache once for the whole batch.
2. **Result reuse** -- systems with equal fingerprints (same network,
   states, instruction set, schedule class) are solved exactly once; the
   cache can be kept across calls for request-serving workloads.
3. **Parallelism** -- distinct systems are independent, so a process pool
   scales with cores (on a single-core host the serial path is used
   automatically unless a pool is forced).

Worker processes rebuild their own incidence caches; the payload crossing
the pickle boundary is the plain system description, not the cache.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from hashlib import sha256
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.environment import EnvironmentModel
from ..core.refinement import RefinementResult, compute_similarity_labeling
from ..core.system import System


def system_fingerprint(system: System) -> str:
    """A content hash identifying a system up to exact equality.

    Stable across processes and interpreter runs (unlike ``hash()``,
    which is randomized for strings): hashes the sorted edge list, the
    initial states, the instruction set and the schedule class via their
    reprs.  Equal systems get equal fingerprints; the cache key.
    """
    net = system.network
    h = sha256()
    h.update(repr(tuple(net.names)).encode())
    for p in net.processors:
        row = tuple(net.n_nbr(p, name) for name in net.names)
        h.update(repr((p, row)).encode())
    h.update(repr(tuple(net.variables)).encode())
    h.update(
        repr(
            tuple(sorted(system.initial_state.items(), key=lambda kv: repr(kv[0])))
        ).encode()
    )
    h.update(system.instruction_set.value.encode())
    h.update(system.schedule_class.value.encode())
    return h.hexdigest()


class SimilarityCache:
    """A keyed result cache: fingerprint -> :class:`RefinementResult`.

    Deliberately dumb (a dict with hit/miss counters): eviction policy is
    the caller's business.  Safe to share across :func:`batch_similarity`
    calls; not shared across worker processes (results come back to the
    parent, which owns the cache).
    """

    def __init__(self) -> None:
        self._store: Dict[str, RefinementResult] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[RefinementResult]:
        result = self._store.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: str, result: RefinementResult) -> None:
        self._store[key] = result

    def peek(self, key: str) -> RefinementResult:
        """Read without touching the hit/miss counters."""
        return self._store[key]

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store


@dataclass(frozen=True)
class BatchReport:
    """Outcome of one :func:`batch_similarity` call.

    Attributes:
        results: one :class:`RefinementResult` per input system, input
            order preserved.
        elapsed: wall-clock seconds for the whole batch.
        workers: worker processes used (0 = serial in-process).
        cache_hits: inputs served without a fresh solve (already cached,
            or duplicates of another input in the same batch).
        cache_misses: inputs that required a fresh solve.
        distinct: number of distinct fingerprints actually solved
            (equals ``cache_misses``).
    """

    results: Tuple[RefinementResult, ...]
    elapsed: float
    workers: int
    cache_hits: int
    cache_misses: int
    distinct: int


def _solve_one(
    payload: Tuple[System, Optional[EnvironmentModel], bool, str, bool]
) -> RefinementResult:
    """Worker entry point (module-level so it pickles)."""
    system, model, include_state, engine, use_incidence_cache = payload
    return compute_similarity_labeling(
        system,
        model=model,
        include_state=include_state,
        engine=engine,
        use_incidence_cache=use_incidence_cache,
    )


def batch_similarity(
    systems: Iterable[System],
    model: Optional[EnvironmentModel] = None,
    include_state: bool = True,
    engine: str = "worklist",
    workers: Optional[int] = None,
    cache: Optional[SimilarityCache] = None,
    use_incidence_cache: bool = True,
) -> BatchReport:
    """Compute similarity labelings for many systems at once.

    Args:
        systems: the batch; duplicates (by fingerprint) are solved once.
        model / include_state / engine / use_incidence_cache: forwarded to
            :func:`~repro.core.refinement.compute_similarity_labeling`.
        workers: process-pool size.  ``None`` picks ``min(4, cpu_count)``
            but stays serial on a single-core host; ``0`` or ``1`` forces
            the serial in-process path (which shares incidence caches
            across members of a homogeneous family -- often the fastest
            choice for small batches).
        cache: an optional :class:`SimilarityCache` to consult and fill;
            keep one alive across calls to serve repeated queries.

    Returns:
        A :class:`BatchReport`; ``report.results[i]`` corresponds to the
        i-th input system.
    """
    batch: List[System] = list(systems)
    cache = cache if cache is not None else SimilarityCache()
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
        if workers <= 1:
            workers = 0
    if workers <= 1:
        workers = 0

    t0 = time.perf_counter()
    fingerprints = [system_fingerprint(s) for s in batch]
    todo: Dict[str, System] = {}
    for fp, s in zip(fingerprints, batch):
        if fp not in todo and cache.get(fp) is None:
            todo[fp] = s

    payloads = [
        (s, model, include_state, engine, use_incidence_cache)
        for s in todo.values()
    ]
    if payloads:
        if workers:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                solved = list(pool.map(_solve_one, payloads))
        else:
            solved = [_solve_one(p) for p in payloads]
        for fp, result in zip(todo.keys(), solved):
            cache.put(fp, result)

    results = tuple(cache.peek(fp) for fp in fingerprints)
    elapsed = time.perf_counter() - t0
    return BatchReport(
        results=results,
        elapsed=elapsed,
        workers=workers,
        cache_hits=len(batch) - len(todo),
        cache_misses=len(todo),
        distinct=len(todo),
    )
