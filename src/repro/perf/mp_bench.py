"""Message-passing delivery-throughput microbenchmark.

Measures what the fault-injection layer costs: deliveries per second on
a flood workload over a unidirectional ring, for a ladder of channel
configurations --

* ``reliable`` -- no fault plan at all (the zero-overhead baseline, one
  dict lookup away from the pre-faults executor);
* ``faulty-passthrough`` -- a fault plan whose probabilities are all 0
  (pays the coin flips, loses nothing);
* ``lossy`` / ``lossy-dup-delay`` -- realistic fault mixes, where
  retransmission-free flood throughput includes the wasted routing work
  of dropped and delayed copies.

Results land in ``BENCH_mp_faults.json`` (same meta shape as
``BENCH_refinement.json``) so future PRs can compare against today's
numbers.  CLI: ``python -m repro bench-mp --sizes 16,64 --deliveries
20000``.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence

from ..messaging.mp_faults import ChannelFaults, FaultPlan
from ..messaging.mp_runtime import FloodProgram, MPExecutor
from ..messaging.mp_system import unidirectional_ring
from .meta import bench_meta

#: name -> fault-plan factory (None = run without a plan entirely)
_CONFIGS: Dict[str, Optional[ChannelFaults]] = {
    "reliable": None,
    "faulty-passthrough": ChannelFaults(),
    "lossy": ChannelFaults(drop=0.1),
    "lossy-dup-delay": ChannelFaults(drop=0.1, duplicate=0.1, delay=0.1, max_delay=4),
}


def _spread_states(n: int) -> Dict[int, int]:
    """Initial values with the max far from p0 so flood keeps working."""
    return {i: (i * 7919) % (3 * n) for i in range(n)}


def run_mp_bench(
    sizes: Sequence[int] = (16, 64, 256),
    deliveries: int = 20_000,
    repeats: int = 1,
    seed: int = 0,
    output: Optional[str] = "BENCH_mp_faults.json",
) -> dict:
    """Time faulty-channel delivery throughput; optionally write JSON.

    Each cell runs a :class:`FloodProgram` ring with stubborn
    retransmission until ``deliveries`` deliveries (retransmitting keeps
    a lossy network busy, so every cell does comparable delivery work).
    The best of ``repeats`` timings is reported.
    """
    doc: dict = {
        "meta": bench_meta(),
        "deliveries": deliveries,
        "rows": [],
    }
    for n in sizes:
        mp = unidirectional_ring(n, states=_spread_states(n))
        for name, faults in _CONFIGS.items():
            plan = (
                None
                if faults is None
                else FaultPlan(default=faults, seed=seed)
            )
            executor = MPExecutor(mp, FloodProgram(), seed=seed, faults=plan)
            best = None
            stats = None
            for _ in range(max(1, repeats)):
                executor.reset()
                t0 = time.perf_counter()
                idle_rounds = 0
                while executor.stats.deliveries < deliveries:
                    if executor.deliver_one():
                        idle_rounds = 0
                        continue
                    if idle_rounds >= 25:
                        break
                    executor.retransmit()
                    idle_rounds += 1
                elapsed = time.perf_counter() - t0
                if best is None or elapsed < best:
                    best = elapsed
                    stats = executor.stats
            doc["rows"].append(
                {
                    "n": n,
                    "config": name,
                    "elapsed_s": best,
                    "deliveries": stats.deliveries,
                    "throughput_per_s": (
                        round(stats.deliveries / best) if best and best > 0 else None
                    ),
                    "drops": stats.drops,
                    "duplicates": stats.duplicates,
                    "delayed": stats.delayed,
                    "retransmissions": stats.retransmissions,
                }
            )
    if output:
        with open(output, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    return doc


def format_mp_bench(doc: dict) -> str:
    """A terse human-readable rendering of :func:`run_mp_bench` output."""
    lines: List[str] = []
    lines.append(
        f"mp fault-delivery microbench (python {doc['meta']['python']}, "
        f"{doc['meta']['cpu_count']} cpu, target {doc['deliveries']} deliveries)"
    )
    lines.append(
        f"{'n':>6}  {'config':<20}{'elapsed':>10}{'deliv/s':>10}"
        f"{'drops':>8}{'dups':>7}{'delayed':>9}"
    )
    for row in doc["rows"]:
        elapsed = f"{row['elapsed_s']:.4f}s" if row["elapsed_s"] is not None else "-"
        thr = row["throughput_per_s"] or "-"
        lines.append(
            f"{row['n']:>6}  {row['config']:<20}{elapsed:>10}{thr:>10}"
            f"{row['drops']:>8}{row['duplicates']:>7}{row['delayed']:>9}"
        )
    return "\n".join(lines)
