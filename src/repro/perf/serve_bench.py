"""Serving benchmark: concurrent mixed load against the analysis service.

``python -m repro bench-serve`` drives one :class:`~repro.serve.service
.AnalysisService` with a seeded mixed workload (similarity scenarios,
small witness sweeps, small symmetric explorations — duplicates
included, so coalescing has something to merge), twice:

* **cold** — a fresh store directory; every answer is computed.
* **warm** — a *new* service process-state over the *same* store
  directory; similarity summaries, selection decisions and orbit keys
  all come back from disk.  The warm witness sweeps must report **zero**
  decision-cache misses — that is the store's contract.

The report (``BENCH_serve.json``) separates two kinds of data:

* ``determinism`` — per-request result digests (timing and counter
  fields stripped), the final store composition, and the warm-phase
  miss count.  Byte-identical across ``PYTHONHASHSEED`` values and
  across runs; CI ``cmp``'s exactly this section (written standalone
  via ``determinism_output``).
* ``timings`` — p50/p99 latency, throughput, store hit rate,
  coalescing counters.  Interleaving-dependent, never compared.

After the two phases, two hardening probes run against the same store
(their deterministic *booleans* join the ``determinism`` section; the
detail lives in ``hardening``/``gc``):

* **deadline** — two explore requests share one wave; the one carrying
  a microscopic deadline must come back ``{"error": "deadline"}`` while
  its wave-mate still gets a real answer.
* **degraded** — a service whose store writes are sabotaged (injected
  ``ENOSPC``) must detach the store, answer the failing request anyway,
  report ``"store": "degraded"``, and keep serving memory-only.
* **gc** — the populated store is collected down to half its size; the
  pass must land under the cap with nothing quarantined, and a
  subsequent integrity check must pass.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import time
from typing import List, Optional, Tuple

from .meta import bench_meta

#: Candidate pools for the seeded workload. Small on purpose: the bench
#: must finish in CI seconds, and repeats are what exercise coalescing
#: and the store.
_SIM_TOPOLOGIES = ("ring", "star", "path", "alternating-ring")
_SIM_SIZES = (4, 5, 6)
_SIM_MARKS = ((), ("p0",))
_WITNESS_SPECS = (
    {"weaker": "Q", "stronger": "L", "max_processors": 2,
     "max_names": 2, "max_variables": 2, "allow_marks": False, "limit": None},
    {"weaker": "L", "stronger": "L2", "max_processors": 2,
     "max_names": 2, "max_variables": 2, "allow_marks": False, "limit": None},
)
_EXPLORE_SPECS = (
    {"scenario": {"topology": "ring", "size": 3, "model": "Q"},
     "max_depth": 4, "symmetry": True},
    {"scenario": {"topology": "star", "size": 3, "model": "Q"},
     "max_depth": 3, "symmetry": True},
)

#: Result-document fields stripped before digesting: counters that vary
#: with cache warmth or wave composition (a duplicate request answered
#: in-wave shares one run; answered cross-wave it re-runs as a cache
#: hit — same answer, different counters).
_NONDETERMINISTIC_KEYS = ("stats", "cache_misses")


def build_workload(requests: int, seed: int) -> List[dict]:
    """The seeded request mix — pure function of ``(requests, seed)``."""
    rng = random.Random(seed)
    workload: List[dict] = []
    for _ in range(requests):
        roll = rng.random()
        if roll < 0.55:
            topology = rng.choice(_SIM_TOPOLOGIES)
            size = rng.choice(_SIM_SIZES)
            if topology == "alternating-ring" and size % 2:
                size += 1
            scenario = {
                "topology": topology,
                "size": size,
                "marks": list(rng.choice(_SIM_MARKS)),
            }
            workload.append({"op": "similarity", "scenario": scenario})
        elif roll < 0.8:
            workload.append(
                {"op": "witness", "spec": dict(rng.choice(_WITNESS_SPECS))}
            )
        else:
            doc = rng.choice(_EXPLORE_SPECS)
            workload.append(
                {"op": "explore",
                 "spec": dict(doc, scenario=dict(doc["scenario"]))}
            )
    return workload


def result_digest(result: dict) -> str:
    """A short digest of the *semantic* payload of one result document."""
    stripped = {
        key: value
        for key, value in result.items()
        if key not in _NONDETERMINISTIC_KEYS
    }
    canonical = json.dumps(stripped, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[index]


async def _run_phase(
    store_dir: Optional[str],
    workload: List[dict],
    engine_workers: int,
    batch_window: float,
) -> Tuple[List[dict], List[float], dict]:
    """One service lifetime over ``workload``; all requests in flight at
    once.  Returns (results in workload order, latencies, stats doc)."""
    from ..serve.service import AnalysisService

    async with AnalysisService(
        store_dir=store_dir,
        engine_workers=engine_workers,
        batch_window=batch_window,
    ) as service:

        async def timed(request: dict) -> Tuple[dict, float]:
            t0 = time.perf_counter()
            result = await service.submit(request)
            return result, (time.perf_counter() - t0) * 1000.0

        outcomes = await asyncio.gather(*(timed(req) for req in workload))
        stats = service.stats_doc()
    results = [result for result, _ in outcomes]
    latencies = [latency for _, latency in outcomes]
    return results, latencies, stats


def _timing_summary(latencies: List[float], elapsed: float,
                    stats: dict) -> dict:
    ordered = sorted(latencies)
    store = stats.get("store", {})
    hit_rate = None
    if store.get("gets"):
        hit_rate = round(store["hits"] / store["gets"], 4)
    return {
        "elapsed_s": round(elapsed, 4),
        "p50_ms": round(_percentile(ordered, 0.50), 3),
        "p99_ms": round(_percentile(ordered, 0.99), 3),
        "throughput_rps": (
            round(len(latencies) / elapsed, 2) if elapsed > 0 else None
        ),
        "store_hit_rate": hit_rate,
        "waves": stats["counters"]["waves"],
        "coalesced": stats["counters"]["coalesced"],
        "errors": stats["counters"]["errors"],
    }


async def _deadline_probe(store_dir: str, engine_workers: int) -> dict:
    """Two explore requests share a wave; one carries a tiny deadline.

    The tight request must get the deadline error; its wave-mate must be
    answered normally — a timeout abandons one wait, never the wave.
    """
    from ..serve.service import AnalysisService

    async with AnalysisService(
        store_dir=store_dir,
        engine_workers=engine_workers,
        batch_window=0.05,  # wide window: both requests join one wave
    ) as service:
        tight_request = dict(
            _EXPLORE_SPECS[0],
            scenario=dict(_EXPLORE_SPECS[0]["scenario"]),
        )
        mate_request = dict(
            _EXPLORE_SPECS[1],
            scenario=dict(_EXPLORE_SPECS[1]["scenario"]),
        )
        tight, mate = await asyncio.gather(
            service.submit(
                {"op": "explore", "spec": tight_request, "deadline": 0.002}
            ),
            service.submit({"op": "explore", "spec": mate_request}),
        )
        counters = dict(service.counters)
    return {
        "error_returned": tight.get("error") == "deadline",
        "wavemate_ok": "error" not in mate,
        "tight_result": tight,
        "deadline_errors_counted": counters["deadline_errors"],
    }


async def _degraded_probe(store_dir: str, engine_workers: int) -> dict:
    """Sabotage store writes (injected ENOSPC); the service must detach
    the store, answer the failing request, report degraded, and keep
    serving memory-only."""
    import errno

    from ..serve.service import AnalysisService

    async with AnalysisService(
        store_dir=store_dir, engine_workers=engine_workers,
        batch_window=0.005,
    ) as service:

        def refuse_write(*_args, **_kwargs):
            raise OSError(errno.ENOSPC, "No space left on device (injected)")

        service.store._write = refuse_write
        # A scenario outside the workload pools, so the answer must be
        # computed (and its store write must fail).
        first = await service.submit({
            "op": "similarity",
            "scenario": {"topology": "ring", "size": 7, "marks": []},
        })
        stats_after_failure = service.stats_doc()
        second = await service.submit({
            "op": "similarity",
            "scenario": {"topology": "star", "size": 7, "marks": []},
        })
    return {
        "first_ok": "error" not in first,
        "status_degraded": stats_after_failure.get("store") == "degraded",
        "served_after_detach": "error" not in second,
        "reason": stats_after_failure.get("store_degraded_reason"),
    }


def _gc_probe(store_dir: str) -> dict:
    """Collect the populated store down to half its size, then verify:
    under cap, nothing quarantined, every survivor still readable."""
    from ..store import gc as store_gc

    before = store_gc.usage(store_dir)
    total = sum(u.bytes for u in before.values())
    cap = max(1, total // 2)
    report = store_gc.collect(store_dir, max_bytes=cap)
    health = store_gc.check(store_dir)
    return {
        "cap_bytes": cap,
        "report": report.to_json(),
        "check": health,
        "under_cap": report.under_cap,
        "quarantined_zero": (
            report.quarantined == 0 and health["quarantined_now"] == 0
        ),
        "evicted_some": report.evicted_entries > 0,
    }


def run_serve_bench(
    store_dir: str,
    requests: int = 24,
    seed: int = 7,
    workers: int = 1,
    batch_window: float = 0.005,
    output: Optional[str] = "BENCH_serve.json",
    determinism_output: Optional[str] = None,
) -> dict:
    """Run the cold+warm serving benchmark over one store directory.

    Args:
        store_dir: store root shared by both phases; must start absent or
            empty for the cold phase to really be cold.
        requests: workload length (each phase replays the same mix).
        seed: workload RNG seed.
        workers: validated CLI worker count (>= 1; 1 = serial engines).
        batch_window: service coalescing window in seconds.
        output: full-report path, or None to skip writing.
        determinism_output: optional path for the standalone
            hash-seed-comparable section (what CI ``cmp``'s).

    Returns:
        The full report document.
    """
    workload = build_workload(requests, seed)
    engine_workers = 0 if workers <= 1 else workers

    t0 = time.perf_counter()
    cold_results, cold_latencies, cold_stats = asyncio.run(
        _run_phase(store_dir, workload, engine_workers, batch_window)
    )
    cold_elapsed = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm_results, warm_latencies, warm_stats = asyncio.run(
        _run_phase(store_dir, workload, engine_workers, batch_window)
    )
    warm_elapsed = time.perf_counter() - t0

    from ..store import ContentStore, NS_DECISIONS, NS_ORBITS, NS_SIMILARITY

    with ContentStore(store_dir) as store:
        composition = {
            ns: store.count(ns)
            for ns in (NS_DECISIONS, NS_ORBITS, NS_SIMILARITY)
        }

    cold_digests = [result_digest(result) for result in cold_results]
    warm_digests = [result_digest(result) for result in warm_results]
    warm_witness_misses = sum(
        result.get("cache_misses", 0)
        for request, result in zip(workload, warm_results)
        if request["op"] == "witness"
    )
    mix = {"similarity": 0, "witness": 0, "explore": 0}
    for request in workload:
        mix[request["op"]] += 1

    # Hardening probes run after the composition snapshot, so the
    # cmp'd store composition above reflects the workload alone.
    deadline_probe = asyncio.run(_deadline_probe(store_dir, engine_workers))
    degraded_probe = asyncio.run(_degraded_probe(store_dir, engine_workers))
    gc_probe = _gc_probe(store_dir)

    determinism = {
        "workload": {"requests": requests, "seed": seed, "mix": mix},
        "results": cold_digests,
        "warm_results": warm_digests,
        "cold_warm_agree": cold_digests == warm_digests,
        "store": composition,
        "warm_witness_cache_misses": warm_witness_misses,
        # Booleans only: the probes' full reports carry store paths and
        # timings, which differ per run — these must not.
        "hardening": {
            "deadline_error_returned": deadline_probe["error_returned"],
            "deadline_wavemate_ok": deadline_probe["wavemate_ok"],
            "degraded_answered": degraded_probe["first_ok"],
            "degraded_status_reported": degraded_probe["status_degraded"],
            "degraded_served_after_detach": (
                degraded_probe["served_after_detach"]
            ),
        },
        "gc": {
            "under_cap": gc_probe["under_cap"],
            "quarantined_zero": gc_probe["quarantined_zero"],
            "evicted_some": gc_probe["evicted_some"],
        },
    }
    doc = {
        "meta": bench_meta(requested_workers=workers),
        "determinism": determinism,
        "timings": {
            "cold": _timing_summary(cold_latencies, cold_elapsed, cold_stats),
            "warm": _timing_summary(warm_latencies, warm_elapsed, warm_stats),
        },
        "hardening": {
            "deadline": deadline_probe,
            "degraded": degraded_probe,
        },
        "gc": gc_probe,
    }

    if output:
        with open(output, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    if determinism_output:
        with open(determinism_output, "w") as fh:
            json.dump(determinism, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return doc


def format_serve_bench(doc: dict) -> str:
    """A terse human-readable rendering of :func:`run_serve_bench` output."""
    meta = doc["meta"]
    det = doc["determinism"]
    mix = det["workload"]["mix"]
    lines: List[str] = []
    lines.append(
        f"serve bench (python {meta['python']}, {meta['cpu_count']} cpu, "
        f"{det['workload']['requests']} requests: "
        f"{mix['similarity']} similarity / {mix['witness']} witness / "
        f"{mix['explore']} explore, seed {det['workload']['seed']})"
    )
    lines.append(
        f"{'phase':<8}{'p50':>10}{'p99':>10}{'rps':>8}{'hit%':>7}"
        f"{'waves':>7}{'coalesced':>11}"
    )
    for phase in ("cold", "warm"):
        row = doc["timings"][phase]
        hit = (
            f"{row['store_hit_rate'] * 100:.0f}%"
            if row["store_hit_rate"] is not None
            else "-"
        )
        lines.append(
            f"{phase:<8}{row['p50_ms']:>8.1f}ms{row['p99_ms']:>8.1f}ms"
            f"{row['throughput_rps']:>8.1f}{hit:>7}"
            f"{row['waves']:>7}{row['coalesced']:>11}"
        )
    store = det["store"]
    lines.append(
        f"store: {store['decisions']} decisions, {store['similarity']} "
        f"similarity summaries, {store['orbits']} orbit maps; "
        f"warm witness cache misses: {det['warm_witness_cache_misses']} "
        f"(must be 0); cold/warm answers agree: "
        f"{'yes' if det['cold_warm_agree'] else 'NO'}"
    )
    hardening = det.get("hardening")
    if hardening is not None:
        ok = all(hardening.values())
        lines.append(
            f"hardening: deadline error "
            f"{'yes' if hardening['deadline_error_returned'] else 'NO'}, "
            f"wave-mate ok "
            f"{'yes' if hardening['deadline_wavemate_ok'] else 'NO'}, "
            f"degraded-mode serving "
            f"{'yes' if hardening['degraded_served_after_detach'] else 'NO'}"
            f" -> {'pass' if ok else 'FAIL'}"
        )
    gc_det = det.get("gc")
    if gc_det is not None:
        gc_doc = doc.get("gc", {})
        report = gc_doc.get("report", {})
        lines.append(
            f"gc: {report.get('evicted_entries', '?')} evicted "
            f"({report.get('evicted_bytes', '?')}B) under "
            f"{gc_doc.get('cap_bytes', '?')}B cap; under-cap "
            f"{'yes' if gc_det['under_cap'] else 'NO'}, quarantined-zero "
            f"{'yes' if gc_det['quarantined_zero'] else 'NO'}"
        )
    return "\n".join(lines)
