"""Parametric-verification benchmark: cutoff detection end to end.

Times :func:`repro.analysis.parametric.run_parametric` over the paper's
three parameterized headline claims:

* **dp / deadlock** — "DP-n deadlocks" for every size: the detector must
  find the cutoff and :func:`verify_cutoff` must re-find the
  circular-hold deadlock unreduced at cutoff+1 and cutoff+2;
* **dp-prime / deadlock-free** — Figure 5's orientation flip removes the
  deadlock at *every even* size (bounded depth);
* **ring / lockstep** — Theorem 4 on unmarked rings: Θ-classes stay
  state-uniform at the balanced points of every k-bounded schedule.

The document splits in two, following ``BENCH_serve.json``:

* ``determinism`` — the full cutoff report per case (certificate,
  verify_cutoff outcome, labeling schema).  Everything in it is a
  function of the model alone, so CI runs the benchmark under two
  ``PYTHONHASHSEED`` values and byte-compares this section
  (``determinism_output`` writes it standalone for the ``cmp``);
* ``timings`` — wall-clock per case, informational only.

CLI: ``python -m repro bench-parametric --output BENCH_parametric.json``.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.parametric import run_parametric
from .meta import bench_meta

#: The benchmark cases: (family, property) pairs, each a headline
#: "for all n" claim.  All three detect their cutoff within the default
#: size budget and verify unreduced in CI-friendly time.
DEFAULT_CASES: Tuple[Tuple[str, str], ...] = (
    ("dp", "deadlock"),
    ("dp-prime", "deadlock-free"),
    ("ring", "lockstep"),
)


def run_parametric_bench(
    cases: Optional[Sequence[Tuple[str, str]]] = None,
    output: Optional[str] = "BENCH_parametric.json",
    determinism_output: Optional[str] = None,
) -> dict:
    """Run the parametric benchmark and (optionally) write JSON.

    Args:
        cases: ``(family, property)`` pairs; defaults to
            :data:`DEFAULT_CASES`.
        output: path for the JSON artifact, or None to skip writing.
        determinism_output: optional path for the standalone
            hash-seed-comparable section (what CI ``cmp``-s).

    Returns:
        The results document (also written to ``output``).
    """
    if cases is None:
        cases = DEFAULT_CASES

    determinism: Dict[str, Any] = {}
    timings: List[Dict[str, Any]] = []
    all_confirmed = True
    for family, prop in cases:
        started = time.perf_counter()
        report = run_parametric(family, prop)
        elapsed = time.perf_counter() - started
        key = f"{family}/{prop}"
        determinism[key] = report
        confirmed = report["verify_cutoff"]["confirmed"]
        all_confirmed = all_confirmed and confirmed
        timings.append(
            {
                "case": key,
                "cutoff": report["certificate"]["cutoff"],
                "verdict": report["certificate"]["verdict"],
                "confirmed": confirmed,
                "sizes_explored": len(report["certificate"]["records"]),
                "elapsed_s": round(elapsed, 4),
            }
        )

    doc: Dict[str, Any] = {
        "meta": bench_meta(),
        "determinism": determinism,
        "timings": timings,
        "all_confirmed": all_confirmed,
    }
    if output:
        with open(output, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if determinism_output:
        with open(determinism_output, "w") as fh:
            json.dump(determinism, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return doc


def format_parametric_bench(doc: dict) -> str:
    """A terse human-readable rendering of :func:`run_parametric_bench`."""
    meta = doc["meta"]
    lines: List[str] = []
    lines.append(
        f"parametric-verification bench (python {meta['python']}, "
        f"{meta['cpu_count']} cpu)"
    )
    lines.append(
        f"{'case':<24}{'cutoff':>7}{'verdict':>11}{'sizes':>7}"
        f"{'elapsed':>10}  verified"
    )
    for row in doc["timings"]:
        lines.append(
            f"{row['case']:<24}{row['cutoff']:>7}{row['verdict']:>11}"
            f"{row['sizes_explored']:>7}{row['elapsed_s']:>9.2f}s"
            f"  {'yes' if row['confirmed'] else 'NO'}"
        )
    for _key, report in sorted(doc["determinism"].items()):
        lines.append(f"  {report['certificate']['claim']}")
    lines.append(
        f"all certificates independently confirmed: "
        f"{'yes' if doc['all_confirmed'] else 'NO'}"
    )
    return "\n".join(lines)
