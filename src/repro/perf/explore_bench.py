"""Schedule-explorer microbenchmark: unreduced vs Θ-reduced vs sharded.

Times :func:`repro.analysis.explore.run_explore` over three headline
cases, three ways each:

* **unreduced** — exact-configuration dedup (``symmetry=False``), serial;
* **reduced** — Θ-orbit canonical dedup, serial: the symmetry-reduction
  payoff is the ``unreduced/reduced`` state ratio, roughly the
  automorphism-group size on fully symmetric families;
* **sharded** — Θ-reduced at the requested worker count (on a single
  core the engine stays serial and the row records that honestly).

The cases are the paper's headline experiments:

* **DP deadlock** — Figure 4's uniform dining ring: the explorer must
  *rediscover* the circular-hold deadlock exhaustively (left-first
  philosophers, depth ``2n``);
* **DP' certified** — Figure 5's alternating ring, where the orientation
  flip provably removes the deadlock: the explorer certifies
  deadlock-freedom to the bounded depth;
* **ring lockstep** — a symmetric ring under k-bounded schedules with
  the Θ-class ``lockstep`` invariant, the bounded Theorem-4 check.

Each row asserts *agreement*: all three runs must return the same
verdict and (for violations) the identical counterexample schedule;
reduced must visit at most as many states as unreduced.  Everything is
written to ``BENCH_explore.json`` so future PRs can compare.

CLI: ``python -m repro bench-explore --workers 4 --output BENCH_explore.json``.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.explore import ExploreSpec, run_explore
from .meta import bench_meta

#: The benchmark cases: (name, spec).  Depths are sized so the serial
#: unreduced run stays in CI-friendly territory (a few seconds).
def default_cases() -> Tuple[Tuple[str, ExploreSpec], ...]:
    dp = {"topology": "dining", "size": 5, "program": "left-first"}
    dpp = {"topology": "dining", "size": 6, "alternating": True, "program": "left-first"}
    ring = {"topology": "ring", "size": 4, "model": "Q", "program": "random"}
    return (
        (
            "dp-deadlock",
            ExploreSpec(scenario=dp, max_depth=10, invariants=("exclusion",)),
        ),
        (
            "dp-prime-certified",
            ExploreSpec(scenario=dpp, max_depth=12, invariants=("exclusion",)),
        ),
        (
            "ring-lockstep",
            ExploreSpec(
                scenario=ring,
                max_depth=8,
                fairness="k-bounded",
                k=4,
                invariants=("lockstep",),
                check_deadlock=False,
            ),
        ),
    )


def _violation_doc(result) -> Optional[dict]:
    return None if result.violation is None else result.violation.to_json()


def run_explore_bench(
    cases: Optional[Sequence[Tuple[str, ExploreSpec]]] = None,
    workers: int = 4,
    output: Optional[str] = "BENCH_explore.json",
) -> dict:
    """Run the explorer benchmark and (optionally) write JSON.

    Args:
        cases: ``(name, spec)`` pairs; defaults to :func:`default_cases`.
        workers: requested pool size for the sharded run (the row records
            the *effective* count, which is 0 on a single-core host).
        output: path for the JSON artifact, or None to skip writing.

    Returns:
        The results document (also written to ``output``).
    """
    if cases is None:
        cases = default_cases()
    doc: Dict[str, Any] = {
        "meta": bench_meta(requested_workers=workers),
        "cases": [],
        "all_agree": True,
    }

    for name, spec in cases:
        unreduced = run_explore(
            replace(spec, symmetry=False, split_depth=0), workers=0
        )
        reduced = run_explore(replace(spec, split_depth=0), workers=0)
        sharded = run_explore(spec, workers=workers)

        agree = (
            unreduced.verdict == reduced.verdict == sharded.verdict
            and _violation_doc(unreduced) == _violation_doc(reduced)
            and _violation_doc(unreduced) == _violation_doc(sharded)
            and reduced.unique_states <= unreduced.unique_states
        )
        doc["all_agree"] = doc["all_agree"] and agree
        doc["cases"].append(
            {
                "case": name,
                "verdict": unreduced.verdict,
                "violation": _violation_doc(unreduced),
                "max_depth": spec.max_depth,
                "group_size": reduced.group_size,
                "states_unreduced": unreduced.unique_states,
                "states_reduced": reduced.unique_states,
                "reduction": (
                    round(unreduced.unique_states / reduced.unique_states, 2)
                    if reduced.unique_states
                    else None
                ),
                "transitions_unreduced": unreduced.stats.transitions,
                "transitions_reduced": reduced.stats.transitions,
                "unreduced_s": round(unreduced.elapsed, 4),
                "reduced_s": round(reduced.elapsed, 4),
                "sharded_s": round(sharded.elapsed, 4),
                "speedup_sharded": (
                    round(reduced.elapsed / sharded.elapsed, 2)
                    if sharded.elapsed
                    else None
                ),
                "sharded_workers": sharded.workers,
                "shards": sharded.shards,
                "agreement": agree,
            }
        )

    if output:
        with open(output, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    return doc


def format_explore_bench(doc: dict) -> str:
    """A terse human-readable rendering of :func:`run_explore_bench` output."""
    meta = doc["meta"]
    lines: List[str] = []
    lines.append(
        f"schedule-explorer bench (python {meta['python']}, "
        f"{meta['cpu_count']} cpu)"
    )
    lines.append(
        f"{'case':<20}{'verdict':>10}{'unred':>8}{'red':>8}{'x':>6}"
        f"{'unred_s':>9}{'red_s':>8}{'shard_s':>9}  agree"
    )
    for row in doc["cases"]:
        ratio = f"{row['reduction']:.1f}" if row["reduction"] else "-"
        lines.append(
            f"{row['case']:<20}{row['verdict']:>10}"
            f"{row['states_unreduced']:>8}{row['states_reduced']:>8}{ratio:>6}"
            f"{row['unreduced_s']:>8.2f}s{row['reduced_s']:>7.2f}s"
            f"{row['sharded_s']:>8.2f}s  {'yes' if row['agreement'] else 'NO'}"
        )
    lines.append(
        "sharded runs used "
        f"{doc['cases'][0]['sharded_workers'] if doc['cases'] else 0} workers "
        f"(requested {meta['requested_workers']}"
        f"{', DEGRADED: more workers than cpus' if meta.get('degraded') else ''}); "
        f"all verdicts agree: {'yes' if doc['all_agree'] else 'NO'}"
    )
    return "\n".join(lines)
