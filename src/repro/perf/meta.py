"""Shared benchmark metadata: one honest header for every BENCH file.

Every benchmark artifact opens with the same ``meta`` block so files are
comparable across PRs and across hosts.  The one non-obvious field is
``degraded``: ``True`` whenever the benchmark *requested* more pool
workers than the host has CPUs.  On such a host every "parallel" number
is really measuring process overhead plus time-sliced serial work, so
speedup claims from a degraded file must not be compared against floors
measured on adequately-sized hosts — CI and review tooling check the
flag instead of guessing from ``cpu_count``.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Optional


def bench_meta(requested_workers: Optional[int] = None) -> dict:
    """The standard ``meta`` block of a benchmark document.

    Args:
        requested_workers: the pool size the benchmark was asked to use,
            or None for purely serial benchmarks (no ``degraded`` verdict
            is recorded for those).
    """
    cpus = os.cpu_count() or 1
    meta = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "cpu_count": cpus,
    }
    if requested_workers is not None:
        meta["requested_workers"] = requested_workers
        meta["degraded"] = requested_workers > cpus
    return meta
