"""Refinement microbenchmarks: the perf trajectory of Algorithm 1.

Times the three refinement engines on the standard topology sweep
(ring / torus grid / seeded-random) at growing sizes, runs the batch
driver against the serial *uncached* reference path on a marked-ring
family, and writes everything to ``BENCH_refinement.json`` so future PRs
can compare against today's numbers.

Engines are gated by size -- the literal engine is worst-case cubic and
the reference (uncached) paths are quadratic-in-practice on fully
refining inputs -- so oversized cells are recorded as ``null`` rather
than silently dropped.

CLI: ``python -m repro bench --sizes 100,1000 --output BENCH_refinement.json``.
"""

from __future__ import annotations

import json
import math
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..core.families import single_mark_family
from ..core.refinement import compute_similarity_labeling
from ..core.system import InstructionSet, System
from ..topologies.builders import random_connected_network, ring, torus_grid
from .batch import batch_similarity
from .meta import bench_meta

# Largest processor count each engine is asked to handle; beyond it the
# cell is recorded as null.  The reference paths re-derive adjacency on
# every use and are kept on a tighter leash.
_ENGINE_GATE: Dict[str, Optional[int]] = {
    "literal": 100,
    "signatures": 1000,
    "worklist": None,
}
_REFERENCE_GATE: Dict[str, Optional[int]] = {
    "literal": 100,
    "signatures": 1000,
    "worklist": 1000,
}


def _marked_ring(n: int) -> System:
    return System(ring(n), {"p0": 1}, InstructionSet.Q)


def _marked_grid(n: int) -> System:
    rows = max(1, int(math.sqrt(n)))
    cols = max(1, n // rows)
    return System(torus_grid(rows, cols), {"p0_0": 1}, InstructionSet.Q)


def _marked_random(n: int) -> System:
    net = random_connected_network(n, max(2, n // 2), names=("a", "b"), seed=42)
    return System(net, {"p0": 1}, InstructionSet.Q)


_TOPOLOGIES: Dict[str, Callable[[int], System]] = {
    "ring": _marked_ring,
    "grid": _marked_grid,
    "random": _marked_random,
}


def _time_once(fn: Callable[[], object], repeats: int) -> float:
    best = math.inf
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_microbench(
    sizes: Sequence[int] = (100, 1000, 10000),
    topologies: Sequence[str] = ("ring", "grid", "random"),
    engines: Sequence[str] = ("literal", "signatures", "worklist"),
    repeats: int = 1,
    batch_n: Optional[int] = None,
    family_size: int = 4,
    workers: int = 4,
    measure_baseline: bool = True,
    output: Optional[str] = "BENCH_refinement.json",
) -> dict:
    """Run the refinement microbenchmarks and (optionally) write JSON.

    Args:
        sizes: processor counts for the engine sweep.
        topologies: subset of ``ring`` / ``grid`` / ``random``.
        engines: subset of the three engine names.
        repeats: timing repeats per cell (minimum is reported).
        batch_n: ring size for the batch-driver comparison (defaults to
            the largest entry of ``sizes``).
        family_size: members in the marked-ring family for the batch run.
        workers: process-pool size for the batch driver.
        measure_baseline: also time the serial *uncached* reference path
            on the same family (the pre-optimization cost model; slow on
            big sizes -- disable for smoke runs if needed).
        output: path for the JSON artifact, or None to skip writing.

    Returns:
        The results document (also written to ``output``).
    """
    doc: dict = {
        "meta": bench_meta(requested_workers=workers),
        "engine_times": [],
        "batch": None,
    }

    for topo in topologies:
        try:
            builder = _TOPOLOGIES[topo]
        except KeyError:
            raise ValueError(
                f"unknown topology {topo!r}; pick from {sorted(_TOPOLOGIES)}"
            )
        for n in sizes:
            system = builder(n)
            for engine in engines:
                gate = _ENGINE_GATE.get(engine)
                ref_gate = _REFERENCE_GATE.get(engine)
                row: dict = {
                    "topology": topo,
                    "n": n,
                    "engine": engine,
                    "cached_s": None,
                    "reference_s": None,
                    "classes": None,
                }
                if gate is None or n <= gate:
                    result = compute_similarity_labeling(system, engine=engine)
                    row["classes"] = result.stats.classes
                    row["cached_s"] = _time_once(
                        lambda: compute_similarity_labeling(system, engine=engine),
                        repeats,
                    )
                if ref_gate is None or n <= ref_gate:
                    row["reference_s"] = _time_once(
                        lambda: compute_similarity_labeling(
                            system, engine=engine, use_incidence_cache=False
                        ),
                        repeats,
                    )
                doc["engine_times"].append(row)

    batch_size = batch_n if batch_n is not None else max(sizes)
    net = ring(batch_size)
    members = single_mark_family(
        net, processors=[f"p{i}" for i in range(min(family_size, batch_size))]
    ).members

    serial_uncached_s = None
    if measure_baseline:
        t0 = time.perf_counter()
        for member in members:
            compute_similarity_labeling(
                member, engine="worklist", use_incidence_cache=False
            )
        serial_uncached_s = time.perf_counter() - t0

    report = batch_similarity(members, engine="worklist", workers=workers)
    doc["batch"] = {
        "topology": "ring",
        "n": batch_size,
        "family_size": len(members),
        "workers": report.workers,
        "requested_workers": workers,
        "serial_uncached_s": serial_uncached_s,
        "batch_cached_s": report.elapsed,
        "speedup": (
            round(serial_uncached_s / report.elapsed, 2)
            if serial_uncached_s is not None and report.elapsed > 0
            else None
        ),
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
        "distinct": report.distinct,
    }

    if output:
        with open(output, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    return doc


def format_microbench(doc: dict) -> str:
    """A terse human-readable rendering of :func:`run_microbench` output."""
    lines: List[str] = []
    lines.append(
        f"refinement microbench (python {doc['meta']['python']}, "
        f"{doc['meta']['cpu_count']} cpu)"
    )
    lines.append(f"{'topology':<10}{'n':>7}  {'engine':<12}{'cached':>10}{'reference':>11}")
    for row in doc["engine_times"]:
        cached = f"{row['cached_s']:.4f}s" if row["cached_s"] is not None else "-"
        ref = f"{row['reference_s']:.4f}s" if row["reference_s"] is not None else "-"
        lines.append(
            f"{row['topology']:<10}{row['n']:>7}  {row['engine']:<12}{cached:>10}{ref:>11}"
        )
    batch = doc.get("batch")
    if batch:
        base = (
            f"{batch['serial_uncached_s']:.2f}s"
            if batch["serial_uncached_s"] is not None
            else "skipped"
        )
        speed = f"{batch['speedup']}x" if batch.get("speedup") else "n/a"
        lines.append(
            f"batch: ring({batch['n']}) x{batch['family_size']} members, "
            f"{batch['requested_workers']} workers -> {batch['batch_cached_s']:.2f}s "
            f"(serial uncached {base}, speedup {speed})"
        )
    return "\n".join(lines)
