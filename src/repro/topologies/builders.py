"""Standard network topologies.

Builders for the network shapes used throughout the paper's discussion and
our benchmarks: rings, stars, paths, complete bipartite networks, torus
grids and seeded-random systems.  Every builder returns a
:class:`~repro.core.network.Network`; wrap in a
:class:`~repro.core.system.System` to choose instruction set, schedule
class and initial states.
"""

from __future__ import annotations

import random
from typing import Dict, Sequence

from ..core.names import Name, NodeId
from ..core.network import Network
from ..exceptions import NetworkError


def ring(n: int, prefix: str = "p") -> Network:
    """A uniformly oriented ring of ``n`` processors.

    Processor ``p_i`` calls variable ``v_i`` its ``left`` and ``v_{i+1}``
    its ``right`` (indices mod n); thus every variable is the ``right`` of
    one processor and the ``left`` of another.  This is the Figure 4 shape
    (all philosophers facing the table) for ``n = 5``.
    """
    if n < 1:
        raise NetworkError("ring size must be >= 1")
    edges: Dict[NodeId, Dict[Name, NodeId]] = {}
    for i in range(n):
        edges[f"{prefix}{i}"] = {
            "left": f"v{i}",
            "right": f"v{(i + 1) % n}",
        }
    return Network(("left", "right"), edges)


def alternating_ring(n: int, prefix: str = "p") -> Network:
    """A ring of even size with alternating orientation (Figure 5).

    Even-indexed processors face the table (``left -> v_i``,
    ``right -> v_{i+1}``); odd-indexed processors turn their backs
    (``left -> v_{i+1}``, ``right -> v_i``).  Consequently each variable is
    either a "right fork" (named ``right`` by both neighbors) or a "left
    fork" (named ``left`` by both), which is what makes the six-philosopher
    problem DP' solvable.
    """
    if n < 2 or n % 2 != 0:
        raise NetworkError("alternating ring needs an even size >= 2")
    edges: Dict[NodeId, Dict[Name, NodeId]] = {}
    for i in range(n):
        lo, hi = f"v{i}", f"v{(i + 1) % n}"
        if i % 2 == 0:
            edges[f"{prefix}{i}"] = {"left": lo, "right": hi}
        else:
            edges[f"{prefix}{i}"] = {"left": hi, "right": lo}
    return Network(("left", "right"), edges)


def star(leaves: int) -> Network:
    """``leaves`` processors all sharing one hub variable named ``hub``.

    Everything is symmetric: all leaves are similar in Q (Theorem 10), but
    locking separates them (they give the hub the same name), so systems
    in L can select among them.
    """
    if leaves < 1:
        raise NetworkError("a star needs at least one leaf")
    edges = {f"p{i}": {"hub": "hub_var"} for i in range(leaves)}
    return Network(("hub",), edges)


def shared_variable(n: int) -> Network:
    """Alias of :func:`star`: ``n`` processors on one variable -- the
    Figure 1 shape for ``n = 2``."""
    return star(n)


def path(n: int) -> Network:
    """A path of ``n`` processors with private boundary variables.

    Processor ``p_i`` shares ``v_i`` with its right neighbor and
    ``v_{i-1}`` with its left neighbor; the two end processors get private
    boundary variables so that every processor still has exactly one
    neighbor per name.  The ends are structurally unique, so paths always
    admit selection in Q.
    """
    if n < 1:
        raise NetworkError("path size must be >= 1")
    edges: Dict[NodeId, Dict[Name, NodeId]] = {}
    for i in range(n):
        left = f"v{i - 1}" if i > 0 else "v_left_end"
        right = f"v{i}" if i < n - 1 else "v_right_end"
        edges[f"p{i}"] = {"left": left, "right": right}
    return Network(("left", "right"), edges)


def complete_bipartite(processors: int, variables: int) -> Network:
    """Every processor adjacent to every variable.

    NAMES is ``slot0..slot{variables-1}`` and processor ``i`` gives
    ``slotj`` to variable ``j``: all processors agree on variable names, so
    the whole processor set is one symmetry class.
    """
    if processors < 1 or variables < 1:
        raise NetworkError("complete bipartite needs >= 1 of each")
    names = tuple(f"slot{j}" for j in range(variables))
    edges = {
        f"p{i}": {f"slot{j}": f"v{j}" for j in range(variables)}
        for i in range(processors)
    }
    return Network(names, edges)


def torus_grid(rows: int, cols: int) -> Network:
    """A torus grid: processors at cells, variables on the four sides.

    Processor ``(r, c)`` names its adjacent edge-variables ``north``,
    ``south``, ``east``, ``west``.  Fully symmetric (vertex-transitive), so
    anonymous torus grids never admit selection in Q.
    """
    if rows < 1 or cols < 1:
        raise NetworkError("grid needs positive dimensions")
    edges: Dict[NodeId, Dict[Name, NodeId]] = {}
    for r in range(rows):
        for c in range(cols):
            edges[f"p{r}_{c}"] = {
                "north": f"h{r}_{c}",
                "south": f"h{(r + 1) % rows}_{c}",
                "west": f"w{r}_{c}",
                "east": f"w{r}_{(c + 1) % cols}",
            }
    return Network(("north", "south", "east", "west"), edges)


def random_network(
    n_processors: int,
    n_variables: int,
    names: Sequence[Name] = ("a", "b"),
    seed: int = 0,
) -> Network:
    """A seeded-random network: each processor's n-neighbors are drawn
    uniformly from the variable pool; unused variables are dropped.

    Deterministic for a fixed seed -- property tests and scaling benchmarks
    rely on that.
    """
    if n_processors < 1 or n_variables < 1:
        raise NetworkError("need at least one processor and variable")
    rng = random.Random(seed)
    pool = [f"v{j}" for j in range(n_variables)]
    edges = {
        f"p{i}": {name: rng.choice(pool) for name in names}
        for i in range(n_processors)
    }
    return Network(tuple(names), edges)


def random_connected_network(
    n_processors: int,
    n_variables: int,
    names: Sequence[Name] = ("a", "b"),
    seed: int = 0,
    max_tries: int = 200,
) -> Network:
    """Like :func:`random_network` but resamples until connected."""
    for attempt in range(max_tries):
        net = random_network(n_processors, n_variables, names, seed + attempt * 7919)
        if net.is_connected:
            return net
    raise NetworkError(
        f"could not sample a connected network in {max_tries} tries; "
        f"lower n_variables or add names"
    )


def hypercube(dimension: int) -> Network:
    """A ``dimension``-cube: processors at vertices, variables on edges.

    Processor ``p_b`` (b a bitstring) names the edge flipping bit ``i``
    as ``dim{i}``.  Vertex-transitive, hence fully symmetric: anonymous
    hypercubes never admit selection in Q (every processor is similar).
    """
    if dimension < 1:
        raise NetworkError("hypercube dimension must be >= 1")
    names = tuple(f"dim{i}" for i in range(dimension))
    edges: Dict[NodeId, Dict[Name, NodeId]] = {}
    for v in range(2 ** dimension):
        bits = format(v, f"0{dimension}b")
        nbrs = {}
        for i in range(dimension):
            w = v ^ (1 << (dimension - 1 - i))
            lo, hi = min(v, w), max(v, w)
            nbrs[f"dim{i}"] = f"e{lo}_{hi}"
        edges[f"p{bits}"] = nbrs
    return Network(names, edges)


def binary_tree(depth: int) -> Network:
    """A complete binary tree of processors with edge variables.

    The root and every level are structurally distinguishable, so trees
    always admit selection in Q; leaves of one level are mutually
    similar.  Each processor keeps all three names (``up``, ``left``,
    ``right``) with private boundary variables where no neighbor exists.
    """
    if depth < 1:
        raise NetworkError("tree depth must be >= 1")
    edges: Dict[NodeId, Dict[Name, NodeId]] = {}
    count = 2 ** depth - 1
    for i in range(count):
        up = f"t{(i - 1) // 2}_{i}" if i > 0 else "t_root"
        left_child = 2 * i + 1
        right_child = 2 * i + 2
        left = f"t{i}_{left_child}" if left_child < count else f"t_leaf_l{i}"
        right = f"t{i}_{right_child}" if right_child < count else f"t_leaf_r{i}"
        edges[f"n{i}"] = {"up": up, "left": left, "right": right}
    return Network(("up", "left", "right"), edges)
