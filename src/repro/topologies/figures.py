"""The example systems of the paper's Figures 1-5.

Figures 4 and 5 (the dining-philosopher tables) live in
:mod:`repro.topologies.dining`; this module re-exports them so the whole
set of figures is available from one place.

Figure 3's image is not reproduced in the paper text available to us; the
system built here is reconstructed from the surrounding narrative ("if z
has not executed, then processors p and q behave as if they were similar,
and p cannot tell whether z has executed") and exhibits exactly the
claimed phenomena, as the figure-3 tests verify.
"""

from __future__ import annotations

from ..core.network import Network
from ..core.system import InstructionSet, ScheduleClass, System
from .dining import dining_network, dining_system  # noqa: F401  (re-export)


def figure1_network() -> Network:
    """Figure 1: processors ``p`` and ``q`` sharing one variable ``v``.

    Both call it by the same name ``n``.  With instruction set S or Q the
    round-robin schedule makes p and q behave similarly, so neither can be
    selected; with L the lock race separates them.
    """
    return Network(("n",), {"p": {"n": "v"}, "q": {"n": "v"}})


def figure1_system(
    instruction_set: InstructionSet = InstructionSet.Q,
    schedule_class: ScheduleClass = ScheduleClass.FAIR,
) -> System:
    return System(figure1_network(), None, instruction_set, schedule_class)


def figure2_network() -> Network:
    """Figure 2 ("Complicated Alibis").

    Three processors and three variables with NAMES = {n, m}:

    * ``p1``: n -> ``v1``, m -> ``v3``
    * ``p2``: n -> ``v1``, m -> ``v3``
    * ``p3``: n -> ``v2``, m -> ``v3``

    ``p1`` and ``p2`` are similar; ``p3`` is not (its n-neighbor ``v2``
    has one neighbor while ``v1`` has two).  The alibi chain of Section 4
    plays out exactly as narrated: p1/p2 learn that v1 has two neighbors
    (alibi for Theta(v2), hence for Theta(p3)); p3 then sees two posts on
    v3 whose suspect sets are the singleton {Theta(p1)} and concludes it
    must be the third neighbor.
    """
    return Network(
        ("n", "m"),
        {
            "p1": {"n": "v1", "m": "v3"},
            "p2": {"n": "v1", "m": "v3"},
            "p3": {"n": "v2", "m": "v3"},
        },
    )


def figure2_system(
    instruction_set: InstructionSet = InstructionSet.Q,
    schedule_class: ScheduleClass = ScheduleClass.FAIR,
) -> System:
    return System(figure2_network(), None, instruction_set, schedule_class)


def figure3_network() -> Network:
    """Figure 3 (a system in S) -- reconstruction, see module docstring.

    NAMES = {a}.  ``p`` has a private variable ``v1``; ``q`` and ``z``
    share ``v2`` under the same name; ``z`` is distinguished by its
    initial state (see :func:`figure3_system`).

    * While ``z`` is silent, ``v2`` carries only ``q``'s writes, so ``p``
      and ``q`` behave identically -- and ``p`` never observes ``v2``, so
      it cannot tell whether ``z`` has executed.
    * ``Theta`` (bounded-fair S) still separates all three processors.
    * Hence ``p`` *mimics* ``q`` (witness subsystem: drop ``z``), and no
      distributed algorithm lets ``p`` learn its label under plain
      fairness.
    """
    return Network(
        ("a",),
        {
            "p": {"a": "v1"},
            "q": {"a": "v2"},
            "z": {"a": "v2"},
        },
    )


def figure3_system(schedule_class: ScheduleClass = ScheduleClass.FAIR) -> System:
    """Figure 3 with ``z`` marked by initial state 1 (p, q start at 0)."""
    return System(
        figure3_network(),
        {"z": 1},
        InstructionSet.S,
        schedule_class,
    )


def figure4_system(
    instruction_set: InstructionSet = InstructionSet.L,
    schedule_class: ScheduleClass = ScheduleClass.FAIR,
) -> System:
    """Figure 4: the five dining philosophers (uniform orientation)."""
    return dining_system(5, instruction_set=instruction_set, schedule_class=schedule_class)


def figure5_system(
    instruction_set: InstructionSet = InstructionSet.L,
    schedule_class: ScheduleClass = ScheduleClass.FAIR,
) -> System:
    """Figure 5: six dining philosophers, alternating orientation."""
    return dining_system(
        6,
        alternating=True,
        instruction_set=instruction_set,
        schedule_class=schedule_class,
    )
