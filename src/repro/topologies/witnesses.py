"""Witness systems for the model-power hierarchy (Sections 6 and 9).

The paper's conclusion claims the strict order

    L  >  Q  >  bounded-fair S  >  fair S.

Monotonicity (a stronger model solves whatever a weaker one does) follows
from the labeling rules; *strictness* needs one witness per adjacent pair:
a network+state on which the weaker model cannot solve selection while the
stronger one can.  This module supplies those witnesses; the hierarchy
benchmark re-derives the full decision table from them.

* **L vs Q** -- Figure 1: two processors sharing one variable under the
  same name.  Similar in Q (no selection); a lock race separates them in
  L, and every relabel version uniquely labels both.
* **Q vs bounded-fair S** -- Figure 2: variable ``v1`` has *two*
  n-neighbors and ``v2`` one.  ``peek`` exposes the multiplicity, so Q
  uniquely labels ``p3``; a ``read`` cannot (the SET environments collapse
  ``v1`` with ``v2``), so in bounded-fair S all three processors are
  similar.
* **bounded-fair S vs fair S** -- a two-component system (legal for
  bounded-fair schedules by the remark after Theorem 6): a lone processor
  ``p`` with private variables, plus twins ``q1``/``q2`` sharing two
  variables under *swapped* names.  The swap makes the sharing visible to
  SET environments (``p`` is uniquely labeled: selection in BF-S), yet
  under plain fairness ``p`` mimics ``q1`` (drop ``q2`` and ``q1``'s view
  is exactly ``p``'s) and the twins mimic each other, so *every* processor
  mimics another and fair S cannot select.
* **L2 vs L** -- two processors sharing two variables under swapped names:
  no variable has two same-name neighbors, so L cannot break the symmetry
  (all relabel versions pair them), but an indivisible two-variable lock
  has exactly one winner.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from ..core.names import NodeId, State
from ..core.network import Network
from .figures import figure1_network, figure2_network


def witness_l_vs_q() -> Tuple[Network, Optional[Mapping[NodeId, State]], str]:
    """Figure 1 separates L from Q."""
    return figure1_network(), None, "Figure 1: two processors, one shared variable"


def witness_q_vs_bounded_s() -> Tuple[Network, Optional[Mapping[NodeId, State]], str]:
    """Figure 2 separates Q from bounded-fair S."""
    return (
        figure2_network(),
        None,
        "Figure 2: multiplicity of v1's n-neighbors visible to peek, not read",
    )


def witness_bounded_s_vs_fair_s() -> Tuple[Network, Optional[Mapping[NodeId, State]], str]:
    """A two-component system separating bounded-fair S from fair S."""
    net = Network(
        ("a", "b"),
        {
            "p": {"a": "u_p", "b": "w_p"},
            "q1": {"a": "s", "b": "t"},
            "q2": {"a": "t", "b": "s"},
        },
    )
    return (
        net,
        None,
        "lone processor vs name-swapped twins (two components)",
    )


def witness_l2_vs_l() -> Tuple[Network, Optional[Mapping[NodeId, State]], str]:
    """Two processors sharing two variables under swapped names."""
    net = Network(
        ("a", "b"),
        {
            "p1": {"a": "v", "b": "w"},
            "p2": {"a": "w", "b": "v"},
        },
    )
    return net, None, "name-swapped pair: multi-lock race is the only separator"


ALL_WITNESSES = {
    ("Q", "L"): witness_l_vs_q,
    ("bounded-fair-S", "Q"): witness_q_vs_bounded_s,
    ("fair-S", "bounded-fair-S"): witness_bounded_s_vs_fair_s,
    ("L", "L2"): witness_l2_vs_l,
}
