"""Dining-philosopher tables (paper, Section 7).

The Dining Philosophers problem [D71]: ``n`` philosophers around a table,
one fork between every adjacent pair; a philosopher needs both adjacent
forks to eat, so neighbors never eat simultaneously.

Two interconnections appear in the paper:

* **Figure 4** (``n = 5``, uniform orientation): every philosopher's
  ``left``/``right`` forks alternate around the table.  The system is
  distributed and symmetric, and -- because 5 is prime -- Theorem 11 makes
  all philosophers similar even in L, which proves DP (no symmetric
  distributed deterministic solution).
* **Figure 5** (``n = 6``, alternating orientation): alternate
  philosophers turn their backs to the table so that each fork is the
  ``right`` (or ``left``) fork of *both* its users.  All philosophers are
  still graph-symmetric, but a lock race on the shared fork name separates
  neighbors, so a deterministic symmetric distributed solution exists
  (DP').
"""

from __future__ import annotations

from typing import Tuple

from ..core.names import NodeId
from ..core.network import Network
from ..core.system import InstructionSet, ScheduleClass, System
from ..exceptions import NetworkError
from .builders import alternating_ring, ring


def dining_network(n: int, alternating: bool = False, prefix: str = "phil") -> Network:
    """The fork-sharing network of an ``n``-philosopher table."""
    if n < 2:
        raise NetworkError("a dining table needs at least 2 philosophers")
    if alternating:
        return alternating_ring(n, prefix=prefix)
    return ring(n, prefix=prefix)


def dining_system(
    n: int,
    alternating: bool = False,
    instruction_set: InstructionSet = InstructionSet.L,
    schedule_class: ScheduleClass = ScheduleClass.FAIR,
    prefix: str = "phil",
) -> System:
    """An anonymous dining-philosophers system (all initial states equal)."""
    return System(
        dining_network(n, alternating, prefix),
        None,
        instruction_set,
        schedule_class,
    )


def philosophers(system: System) -> Tuple[NodeId, ...]:
    """The philosopher (processor) nodes of a dining system."""
    return system.processors


def forks(system: System) -> Tuple[NodeId, ...]:
    """The fork (variable) nodes of a dining system."""
    return system.variables


def adjacent_pairs(system: System) -> Tuple[Tuple[NodeId, NodeId], ...]:
    """Pairs of philosophers sharing a fork (must never eat together)."""
    pairs = []
    for fork in system.variables:
        users = sorted({p for p, _ in system.network.neighbors_of_variable(fork)}, key=repr)
        for i in range(len(users)):
            for j in range(i + 1, len(users)):
                pairs.append((users[i], users[j]))
    return tuple(sorted(set(pairs)))
