"""Checking Uniqueness and Stability of selection runs (Section 3).

A selection algorithm must, under *every* schedule of the system's class,
establish **Uniqueness** (exactly one processor ever sets ``selected``)
and maintain **Stability** (a selected processor stays selected).  This
module runs a candidate program under a battery of schedules and verifies
both properties empirically, reporting which processor won under each
schedule (different schedules may legitimately crown different winners).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.names import NodeId
from ..core.system import System
from .executor import Executor
from .program import Program
from .scheduler import (
    KBoundedFairScheduler,
    RandomFairScheduler,
    RoundRobinScheduler,
    Scheduler,
)


@dataclass(frozen=True)
class SelectionRun:
    """Outcome of one schedule.

    Attributes:
        schedule_name: human-readable scheduler description.
        winner: the selected processor, or None if none selected in time.
        steps_to_selection: step index at which the winner first appeared.
        unique: no step ever had two selected processors.
        stable: no processor ever dropped its selected flag.
    """

    schedule_name: str
    winner: Optional[NodeId]
    steps_to_selection: Optional[int]
    unique: bool
    stable: bool

    @property
    def ok(self) -> bool:
        return self.winner is not None and self.unique and self.stable


@dataclass(frozen=True)
class SelectionVerdict:
    """Aggregated outcome over all schedules."""

    runs: Tuple[SelectionRun, ...]

    @property
    def all_ok(self) -> bool:
        return all(r.ok for r in self.runs)

    @property
    def winners(self) -> Tuple[NodeId, ...]:
        return tuple(sorted({r.winner for r in self.runs if r.winner is not None}, key=repr))


def run_selection(
    system: System,
    program: Program,
    scheduler: Scheduler,
    schedule_name: str,
    max_steps: int = 100_000,
) -> SelectionRun:
    """Run one schedule, tracking Uniqueness/Stability step by step."""
    executor = Executor(system, program, scheduler)
    selected_ever: set = set()
    first_step: Optional[int] = None
    unique = True
    stable = True
    for i in range(max_steps):
        executor.step()
        now = set(executor.selected_processors())
        if len(now) > 1:
            unique = False
        if not selected_ever <= now:
            stable = False
        if now and first_step is None:
            first_step = i
        selected_ever |= now
        if now and i - (first_step or 0) > 2 * len(system.processors) ** 2:
            # Give laggards a window to (incorrectly) also select, then stop.
            break
    winner = next(iter(selected_ever)) if len(selected_ever) == 1 else None
    if len(selected_ever) > 1:
        unique = False
    return SelectionRun(
        schedule_name=schedule_name,
        winner=winner,
        steps_to_selection=first_step,
        unique=unique,
        stable=stable,
    )


def standard_schedules(
    system: System, seeds: Iterable[int] = (1, 2, 3)
) -> List[Tuple[str, Scheduler]]:
    """The default battery: round robin, k-bounded, and random fair."""
    procs = system.processors
    battery: List[Tuple[str, Scheduler]] = [
        ("round-robin", RoundRobinScheduler(procs)),
        ("reverse-round-robin", RoundRobinScheduler(tuple(reversed(procs)))),
    ]
    for seed in seeds:
        battery.append(
            (f"k-bounded(seed={seed})", KBoundedFairScheduler(procs, seed=seed))
        )
        battery.append(
            (f"random-fair(seed={seed})", RandomFairScheduler(procs, seed=seed))
        )
    return battery


def verify_selection_program(
    system: System,
    program: Program,
    schedules: Optional[Sequence[Tuple[str, Scheduler]]] = None,
    max_steps: int = 100_000,
) -> SelectionVerdict:
    """Run the battery and aggregate Uniqueness/Stability verdicts."""
    battery = list(schedules) if schedules is not None else standard_schedules(system)
    runs = [
        run_selection(system, program, sched, name, max_steps)
        for name, sched in battery
    ]
    return SelectionVerdict(tuple(runs))
