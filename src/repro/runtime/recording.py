"""Execution recording and ASCII timelines.

Watching the paper's arguments happen is half the point of an executable
reproduction.  :class:`RecordingExecutor` keeps every
:class:`~repro.runtime.executor.StepRecord`; :func:`render_timeline`
turns a recorded run into a per-processor character timeline, e.g. the
dining philosophers::

    phil0  ttwWEEr.ttwWEE...
    phil1  .twwwwwwwtwWEEr..

one column per own-step, letters chosen by a caller-supplied classifier
of local states.  The examples use it to show DP's deadlock freezing
every lane and DP''s meals interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.names import NodeId
from ..core.system import System
from .executor import Executor, StepRecord
from .program import LocalState, Program
from .scheduler import Scheduler


class RecordingExecutor(Executor):
    """An executor that keeps its step records and state history."""

    def __init__(
        self,
        system: System,
        program: Program,
        scheduler: Scheduler,
        strict: bool = True,
    ) -> None:
        super().__init__(system, program, scheduler, strict)
        self.records: List[StepRecord] = []
        #: per-processor local-state history, sampled after each own step
        self.histories: Dict[NodeId, List[LocalState]] = {
            p: [self.local[p]] for p in system.processors
        }

    def step(self) -> StepRecord:
        record = super().step()
        self.records.append(record)
        self.histories[record.processor].append(self.local[record.processor])
        return record

    def schedule_so_far(self) -> Tuple[NodeId, ...]:
        return tuple(r.processor for r in self.records)


def render_timeline(
    executor: RecordingExecutor,
    classify: Callable[[LocalState], str],
    width: Optional[int] = None,
) -> str:
    """One line per processor; one character per own step.

    Args:
        executor: a recorded run.
        classify: maps a local state to a single display character.
        width: truncate each lane to this many characters.
    """
    lanes = []
    name_width = max(len(str(p)) for p in executor.system.processors)
    for p in executor.system.processors:
        history = executor.histories[p][1:]  # skip the pre-run state
        chars = "".join(classify(state) for state in history)
        if width is not None:
            chars = chars[:width]
        lanes.append(f"{str(p).ljust(name_width)}  {chars}")
    return "\n".join(lanes)


def render_activity(
    executor: RecordingExecutor,
    active: Callable[[LocalState], bool],
    width: Optional[int] = None,
    on: str = "#",
    off: str = ".",
) -> str:
    """A timeline specialized to a boolean predicate (e.g. *is eating*)."""
    return render_timeline(
        executor,
        lambda state: on if active(state) else off,
        width=width,
    )


@dataclass(frozen=True)
class StepCensus:
    """Aggregate statistics of a recorded run."""

    steps: int
    per_processor: Dict[NodeId, int]
    per_action_type: Dict[str, int]


def census(executor: RecordingExecutor) -> StepCensus:
    """Count steps per processor and per action type."""
    per_proc: Dict[NodeId, int] = {}
    per_action: Dict[str, int] = {}
    for record in executor.records:
        per_proc[record.processor] = per_proc.get(record.processor, 0) + 1
        kind = type(record.action).__name__
        per_action[kind] = per_action.get(kind, 0) + 1
    return StepCensus(
        steps=len(executor.records),
        per_processor=per_proc,
        per_action_type=per_action,
    )
