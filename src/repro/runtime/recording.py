"""Execution recording and ASCII timelines.

Watching the paper's arguments happen is half the point of an executable
reproduction.  :class:`RecordingExecutor` keeps every
:class:`~repro.runtime.executor.StepRecord`; :func:`render_timeline`
turns a recorded run into a per-processor character timeline, e.g. the
dining philosophers::

    phil0  ttwWEEr.ttwWEE...
    phil1  .twwwwwwwtwWEEr..

one column per own-step, letters chosen by a caller-supplied classifier
of local states.  The examples use it to show DP's deadlock freezing
every lane and DP''s meals interleaving.

Recording is implemented on the structured-event stream of
:mod:`repro.obs`: the executor publishes a
:class:`~repro.obs.events.StepExecuted` event per step, and the recorder
is simply a sink attached to the executor's hub.  Additional sinks (a
JSONL trace writer, a metrics collector) can observe the same run by
passing ``sink=`` or attaching to ``executor.events``.

No-op steps — scheduled slots wasted on already-halted processors — are
kept in ``records`` (the schedule is the schedule) but excluded from
state histories, timelines, and per-action/per-processor census counts:
they execute no instruction, so counting them as ``Halt`` actions would
inflate the aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.names import NodeId
from ..core.system import System
from ..obs.events import Event, StepExecuted
from .executor import Executor, StepRecord
from .program import LocalState, Program
from .scheduler import Scheduler


class _Recorder:
    """The sink behind :class:`RecordingExecutor`'s bookkeeping."""

    __slots__ = ("_executor",)

    def __init__(self, executor: "RecordingExecutor") -> None:
        self._executor = executor

    def on_event(self, event: Event) -> None:
        if not isinstance(event, StepExecuted):
            return
        executor = self._executor
        record = event.record
        executor.records.append(record)
        if not record.noop:
            executor.histories[record.processor].append(
                executor.local[record.processor]
            )


class RecordingExecutor(Executor):
    """An executor that keeps its step records and state history."""

    def __init__(
        self,
        system: System,
        program: Program,
        scheduler: Scheduler,
        strict: bool = True,
        sink=None,
    ) -> None:
        super().__init__(system, program, scheduler, strict, sink=sink)
        self.records: List[StepRecord] = []
        #: per-processor local-state history, sampled after each own step
        self.histories: Dict[NodeId, List[LocalState]] = {
            p: [self.local[p]] for p in system.processors
        }
        self.events.attach(_Recorder(self))

    def _clone_extras(self, twin: Executor) -> None:
        twin.records = list(self.records)
        twin.histories = {k: list(v) for k, v in self.histories.items()}
        twin.events.attach(_Recorder(twin))

    def schedule_so_far(self) -> Tuple[NodeId, ...]:
        return tuple(r.processor for r in self.records)


def render_timeline(
    executor: RecordingExecutor,
    classify: Callable[[LocalState], str],
    width: Optional[int] = None,
) -> str:
    """One line per processor; one character per own step.

    Args:
        executor: a recorded run.
        classify: maps a local state to a single display character.
        width: truncate each lane to this many characters.

    A system with no processors renders as the empty string.
    """
    if not executor.system.processors:
        return ""
    lanes = []
    name_width = max(len(str(p)) for p in executor.system.processors)
    for p in executor.system.processors:
        history = executor.histories[p][1:]  # skip the pre-run state
        chars = "".join(classify(state) for state in history)
        if width is not None:
            chars = chars[:width]
        lanes.append(f"{str(p).ljust(name_width)}  {chars}")
    return "\n".join(lanes)


def render_activity(
    executor: RecordingExecutor,
    active: Callable[[LocalState], bool],
    width: Optional[int] = None,
    on: str = "#",
    off: str = ".",
) -> str:
    """A timeline specialized to a boolean predicate (e.g. *is eating*)."""
    return render_timeline(
        executor,
        lambda state: on if active(state) else off,
        width=width,
    )


@dataclass(frozen=True)
class StepCensus:
    """Aggregate statistics of a recorded run.

    ``steps`` counts every scheduled slot; ``per_processor`` and
    ``per_action_type`` count only *real* steps (an instruction actually
    executed), with wasted slots reported separately as ``noop_steps``.
    """

    steps: int
    per_processor: Dict[NodeId, int]
    per_action_type: Dict[str, int]
    noop_steps: int = 0


def census_records(records: Iterable[StepRecord]) -> StepCensus:
    """Count steps per processor and per action type over raw records."""
    per_proc: Dict[NodeId, int] = {}
    per_action: Dict[str, int] = {}
    total = 0
    noops = 0
    for record in records:
        total += 1
        if record.noop:
            noops += 1
            continue
        per_proc[record.processor] = per_proc.get(record.processor, 0) + 1
        kind = type(record.action).__name__
        per_action[kind] = per_action.get(kind, 0) + 1
    return StepCensus(
        steps=total,
        per_processor=per_proc,
        per_action_type=per_action,
        noop_steps=noops,
    )


def census(executor: RecordingExecutor) -> StepCensus:
    """Count steps per processor and per action type."""
    return census_records(executor.records)
