"""Runtime state of shared variables, per instruction set.

Two kinds of variables exist at runtime:

* :class:`PlainVariable` -- instruction sets S, L and L2: a single value
  plus (for L/L2) a lock bit.
* :class:`SubvalueVariable` -- instruction set Q: a *base* state (the
  variable's initial state, observable through ``peek``) plus one
  subvalue per processor that has ever ``post``-ed.  ``peek`` returns the
  unordered multiset of subvalues; the poster identities are never
  revealed, preserving anonymity, and the number of subvalues is only a
  lower bound on the variable's degree (the paper's stipulation).

Both expose ``snapshot()``: a hashable digest of the *observable* state,
used for configuration hashing (cycle detection) and for the paper's
"same state at the same time" checks.  Two Q variables holding equal
subvalue multisets have equal snapshots even if the posters differ --
states, not identities, is what similarity compares.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from ..core.names import NodeId, State
from ..exceptions import ExecutionError


def multiset_key(values) -> Tuple[Hashable, ...]:
    """Canonical hashable form of a multiset of hashable values."""
    return tuple(sorted(values, key=repr))


class PlainVariable:
    """A read/write variable with an optional lock bit (S, L, L2)."""

    __slots__ = ("node", "value", "locked", "lock_owner")

    def __init__(self, node: NodeId, initial: State) -> None:
        self.node = node
        self.value: Hashable = initial
        self.locked: bool = False
        self.lock_owner: Optional[NodeId] = None

    def read(self) -> Hashable:
        return self.value

    def write(self, value: Hashable) -> None:
        self.value = value

    def try_lock(self, owner: NodeId) -> bool:
        """Set the lock bit; False if it was already set (paper's lock)."""
        if self.locked:
            return False
        self.locked = True
        self.lock_owner = owner
        return True

    def unlock(self, owner: NodeId, strict: bool = True) -> None:
        """Reset the lock bit.

        The paper's ``unlock`` is unconditional; with ``strict`` we flag
        the programming error of unlocking a variable locked by someone
        else, which no well-formed program should do.
        """
        if strict and self.locked and self.lock_owner != owner:
            raise ExecutionError(
                f"processor {owner!r} unlocking {self.node!r} held by "
                f"{self.lock_owner!r}"
            )
        self.locked = False
        self.lock_owner = None

    def snapshot(self) -> Hashable:
        return ("plain", self.value, self.locked)


class SubvalueVariable:
    """A Q variable: base state plus per-processor subvalues."""

    __slots__ = ("node", "base", "subvalues")

    def __init__(self, node: NodeId, initial: State) -> None:
        self.node = node
        self.base: State = initial
        self.subvalues: Dict[NodeId, Hashable] = {}

    def post(self, processor: NodeId, value: Hashable) -> None:
        """Create/overwrite this processor's subvalue (paper's post)."""
        self.subvalues[processor] = value

    def peek(self) -> Tuple[State, Tuple[Hashable, ...]]:
        """The base state and the unordered multiset of subvalues."""
        return (self.base, multiset_key(self.subvalues.values()))

    def snapshot(self) -> Hashable:
        return ("subvalue", self.base, multiset_key(self.subvalues.values()))
