"""Execution traces and "infinitely often" detection.

Similarity speaks about infinite executions: a schedule causes nodes to
behave similarly when they have the same state at the same time
*infinitely often*.  For finite-state programs under oblivious periodic
schedulers (round-robin and friends), every execution eventually enters a
configuration cycle; properties that hold somewhere inside the cycle hold
infinitely often in the infinite execution.  This module runs executors
to their cycle and answers such questions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.names import NodeId
from ..exceptions import ExecutionError
from .executor import Configuration, Executor


@dataclass(frozen=True)
class CycleInfo:
    """A lasso-shaped execution: ``prefix`` then ``cycle`` forever.

    Attributes:
        configurations: all distinct configurations visited, in step order
            (sampled every ``stride`` steps).
        prefix_length: number of samples before the cycle starts.
        cycle_length: number of samples in the repeating cycle.
        stride: steps between samples (the scheduler's period, so that
            cycling is detected at matching scheduler phase).
    """

    configurations: Tuple[Configuration, ...]
    prefix_length: int
    cycle_length: int
    stride: int

    @property
    def cycle(self) -> Tuple[Configuration, ...]:
        return self.configurations[self.prefix_length :]


def run_until_cycle(
    executor: Executor,
    stride: Optional[int] = None,
    max_samples: int = 100_000,
    assume_periodic: bool = False,
) -> CycleInfo:
    """Run ``executor`` until a sampled configuration repeats.

    Samples the configuration every ``stride`` steps (default: one round,
    i.e. the number of processors) starting with the initial
    configuration.  Sound only for schedulers whose behavior is periodic
    in the step index (round-robin style): a repeated configuration then
    implies the whole execution repeats.  Stateful schedulers
    (deadline-driven, seeded-random, adaptive) carry hidden state outside
    the configuration, so a repeated configuration does *not* pin down the
    future and the returned lasso could diverge from the real run; unless
    ``assume_periodic`` is set, a scheduler whose
    :attr:`~repro.runtime.scheduler.Scheduler.periodic` property is False
    is rejected with :class:`ExecutionError` instead of silently returning
    a wrong answer.
    """
    if not (assume_periodic or executor.scheduler.periodic):
        raise ExecutionError(
            "run_until_cycle needs a periodic scheduler: "
            f"{type(executor.scheduler).__name__} keeps scheduling state "
            "outside the configuration, so a repeated configuration does "
            "not imply a repeating execution (pass assume_periodic=True "
            "to override)"
        )
    if stride is None:
        stride = len(executor.system.processors)
    seen: Dict[Configuration, int] = {}
    configs: List[Configuration] = []
    for sample in range(max_samples):
        config = executor.configuration()
        if config in seen:
            start = seen[config]
            return CycleInfo(
                configurations=tuple(configs),
                prefix_length=start,
                cycle_length=sample - start,
                stride=stride,
            )
        seen[config] = sample
        configs.append(config)
        executor.run(stride)
    raise ExecutionError(
        f"no configuration cycle within {max_samples} samples "
        f"(stride {stride}); is the program finite-state?"
    )


def states_equal_infinitely_often(
    executor_factory,
    nodes: Sequence[NodeId],
    stride: Optional[int] = None,
    max_samples: int = 100_000,
    assume_periodic: bool = False,
) -> bool:
    """Do all of ``nodes`` share one state at some sampled time, infinitely
    often?

    ``executor_factory`` builds a fresh executor (the run consumes it).
    True iff some configuration *inside the cycle* gives every node in
    ``nodes`` the same paper-level state.  Because the cycle repeats
    forever, one hit inside it means infinitely many hits in the infinite
    execution.

    The factory is invoked twice (cycle detection, then the probe
    re-run), and both runs must see the *same* schedule.  Schedulers are
    stateful, and a factory commonly closes over one scheduler instance
    shared by both executors -- so each run starts by resetting its
    scheduler to the initial scheduling state.
    """
    executor = executor_factory()
    executor.scheduler.reset()
    stride = stride or len(executor.system.processors)

    # Re-run and inspect node states at each sample inside the cycle.
    info = run_until_cycle(
        executor,
        stride=stride,
        max_samples=max_samples,
        assume_periodic=assume_periodic,
    )
    probe = executor_factory()
    probe.scheduler.reset()
    hits = []
    for sample in range(info.prefix_length + info.cycle_length):
        if sample >= info.prefix_length:
            states = {probe.node_state(n) for n in nodes}
            hits.append(len(states) == 1)
        probe.run(stride)
    return any(hits)


def lockstep_holds(
    executor: Executor,
    classes: Sequence[Sequence[NodeId]],
    rounds: int,
    stride: Optional[int] = None,
) -> bool:
    """Check Theorem 4's conclusion over a finite horizon.

    At every sampled round boundary, every class in ``classes`` must be
    state-uniform (all members share one paper-level state).  This is the
    *empirical validation* of a supersimilarity labeling: run any program
    under the class round-robin schedule and watch the classes stay in
    lockstep at every round.

    ``rounds`` rounds are executed and all ``rounds + 1`` surrounding
    boundaries are checked — including the one *after* the final
    ``run(stride)``, so a divergence introduced in the last round is
    caught rather than silently passing.
    """
    stride = stride or len(executor.system.processors)

    def classes_uniform() -> bool:
        for cls in classes:
            states = {executor.node_state(n) for n in cls}
            if len(states) > 1:
                return False
        return True

    for _ in range(rounds):
        if not classes_uniform():
            return False
        executor.run(stride)
    return classes_uniform()
