"""Instruction actions (paper, Section 2).

A *step* of a processor executes one instruction atomically.  Programs
(see :mod:`repro.runtime.program`) are state machines that, in each local
state, emit exactly one :class:`Action`; the executor performs it against
the shared variables and feeds the result back into the program's
transition function.

The actions mirror the paper's instruction sets:

========  =========  =================================================
action    sets       semantics
========  =========  =================================================
Read      S, L, L2   result = current value of the named variable
Write     S, L, L2   store a value into the named variable
Lock      L, L2      try to set the lock bit; result = success bool
Unlock    L, L2      reset the lock bit
MultiLock L2         indivisibly lock several names (all or nothing)
Peek      Q          result = (base state, multiset of subvalues)
Post      Q          store this processor's subvalue
Internal  all        local computation only
Halt      all        the processor is done; further steps are no-ops
========  =========  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Tuple

from ..core.names import Name


@dataclass(frozen=True)
class Action:
    """Base class for all actions."""


@dataclass(frozen=True)
class Read(Action):
    name: Name


@dataclass(frozen=True)
class Write(Action):
    name: Name
    value: Hashable


@dataclass(frozen=True)
class Lock(Action):
    name: Name


@dataclass(frozen=True)
class Unlock(Action):
    name: Name


@dataclass(frozen=True)
class MultiLock(Action):
    """Extended locking (Section 6): lock several names indivisibly.

    Succeeds (and acquires all) iff none of the named variables is
    currently locked; otherwise acquires nothing and reports failure.
    """

    names: Tuple[Name, ...]


@dataclass(frozen=True)
class Peek(Action):
    name: Name


@dataclass(frozen=True)
class Post(Action):
    name: Name
    value: Hashable


@dataclass(frozen=True)
class Internal(Action):
    """A step touching no shared variable (arbitrary local instruction)."""

    tag: Hashable = None


@dataclass(frozen=True)
class Halt(Action):
    """The processor has terminated; scheduled steps become no-ops.

    Halting does not remove the processor from schedules -- fairness is a
    property of schedules, and a halted processor simply wastes its steps,
    exactly as in the paper's model.
    """
