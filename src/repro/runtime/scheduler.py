"""Schedules and schedulers (paper, Section 2).

A *schedule* is a (possibly infinite) sequence of processor names; each
occurrence means that processor executes one atomic step.  The paper's
classes:

* **general** -- unrestricted: processors may be starved forever;
* **fair** -- every processor occurs infinitely often;
* **k-bounded fair** -- every processor occurs in every window of k steps.

A :class:`Scheduler` generates a schedule lazily, optionally *adaptively*
(the next choice may depend on the current configuration -- the adversary
of Theorem 1 needs that).  Finite prefixes can be validated against a
schedule class with :func:`is_fair_prefix` / :func:`is_k_bounded_prefix`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.labeling import Labeling
from ..core.names import NodeId
from ..exceptions import ScheduleError


class Scheduler(ABC):
    """Lazily produces the next processor to step."""

    @abstractmethod
    def next_processor(self, step_index: int, view) -> NodeId:
        """Pick the processor for step ``step_index``.

        ``view`` is the executor (read-only access to local states and
        variable snapshots); oblivious schedulers ignore it.
        """

    def reset(self) -> None:
        """Return to the initial scheduling state (default: stateless)."""

    def rebase(self, origin: int) -> None:
        """Adopt ``origin`` as the first step index this scheduler will see.

        Composite schedulers (:class:`ReplayScheduler`) call this when they
        hand control over mid-run: the inner scheduler keeps receiving the
        *true* executor step index (so adaptive choices and deadline
        comparisons agree with what ``view`` shows), but positional internal
        state -- round-robin cursors, staggered deadlines, nested replay
        prefixes -- is re-anchored at ``origin``.  Stateless and adaptive
        schedulers have nothing to re-anchor (default: no-op).
        """

    @property
    def periodic(self) -> bool:
        """Is the choice a pure function of ``step_index`` with a period?

        Cycle detection (:func:`repro.runtime.trace.run_until_cycle`)
        relies on this: a repeated *configuration* implies a repeating
        *execution* only when the scheduler carries no hidden state beyond
        the step index modulo its period.  Deadline- or RNG-driven
        schedulers must answer False (the default) so that cycle detection
        refuses to produce bogus lassos for them.
        """
        return False


class RoundRobinScheduler(Scheduler):
    """p0 p1 ... pn-1 p0 p1 ... -- the canonical n-bounded fair schedule."""

    def __init__(self, processors: Sequence[NodeId]) -> None:
        if not processors:
            raise ScheduleError("round robin needs at least one processor")
        self._order: Tuple[NodeId, ...] = tuple(processors)
        self._origin = 0

    def next_processor(self, step_index: int, view) -> NodeId:
        return self._order[(step_index - self._origin) % len(self._order)]

    def reset(self) -> None:
        self._origin = 0

    def rebase(self, origin: int) -> None:
        self._origin = origin

    @property
    def periodic(self) -> bool:
        return True


class ClassRoundRobinScheduler(Scheduler):
    """The schedule from the proof of Theorem 4.

    Processors are stepped in rounds; within a round, whole label classes
    run back-to-back (class order fixed, member order fixed).  Under a
    supersimilarity labeling this keeps same-labeled processors in
    lockstep: when one member of a class has taken its k-th step, so have
    all the others, and they observed label-equivalent results.
    """

    def __init__(self, processors: Sequence[NodeId], labeling: Labeling) -> None:
        if not processors:
            raise ScheduleError("class round robin needs at least one processor")
        classes: Dict[object, List[NodeId]] = {}
        for p in processors:
            classes.setdefault(labeling[p], []).append(p)
        order: List[NodeId] = []
        for label in sorted(classes, key=repr):
            order.extend(sorted(classes[label], key=repr))
        self._order = tuple(order)
        self._origin = 0

    def next_processor(self, step_index: int, view) -> NodeId:
        return self._order[(step_index - self._origin) % len(self._order)]

    def reset(self) -> None:
        self._origin = 0

    def rebase(self, origin: int) -> None:
        self._origin = origin

    @property
    def periodic(self) -> bool:
        return True


class RandomFairScheduler(Scheduler):
    """Seeded uniform choice; fair with probability 1.

    For *certainly* fair finite runs combine with a bounded-fair validity
    check, or use :class:`KBoundedFairScheduler`.
    """

    def __init__(self, processors: Sequence[NodeId], seed: int = 0) -> None:
        if not processors:
            raise ScheduleError("need at least one processor")
        self._procs = tuple(processors)
        self._seed = seed
        self._rng = random.Random(seed)

    def next_processor(self, step_index: int, view) -> NodeId:
        return self._rng.choice(self._procs)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class KBoundedFairScheduler(Scheduler):
    """Random schedule that is provably k-bounded fair.

    Keeps a *deadline* per processor -- the last step by which it must run
    again.  A processor whose deadline has arrived is forced (earliest
    deadline first), otherwise the choice is uniform.  Initial deadlines
    are staggered (``k - n``, ``k - n + 1``, ..., ``k - 1``), and a newly
    assigned deadline ``step + k`` exceeds every outstanding one, so
    deadlines stay pairwise distinct and at most one processor is ever due
    per step: forcing it is always enough to keep every window of ``k``
    steps containing every processor.  With ``k >= 2 * n`` the forcing is
    rare and the schedule looks adversarially random.
    """

    def __init__(self, processors: Sequence[NodeId], k: Optional[int] = None, seed: int = 0) -> None:
        if not processors:
            raise ScheduleError("need at least one processor")
        self._procs = tuple(processors)
        n = len(self._procs)
        self._k = k if k is not None else 2 * n
        if self._k < n:
            raise ScheduleError(f"k={self._k} < number of processors {n}: impossible")
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._origin = 0
        self._restagger()

    def rebase(self, origin: int) -> None:
        # Late start (e.g. as a ReplayScheduler fallback): the staggered
        # initial deadlines are re-anchored at ``origin`` so the first k
        # steps after the handoff are not one forced all-hands burst.
        self._origin = origin
        self._restagger()

    def _restagger(self) -> None:
        n = len(self._procs)
        self._deadline: Dict[NodeId, int] = {
            p: self._origin + self._k - n + i for i, p in enumerate(self._procs)
        }

    def next_processor(self, step_index: int, view) -> NodeId:
        due = [p for p in self._procs if self._deadline[p] <= step_index]
        if due:
            choice = min(due, key=lambda p: (self._deadline[p], repr(p)))
        else:
            choice = self._rng.choice(self._procs)
        self._deadline[choice] = step_index + self._k
        return choice

    @property
    def k(self) -> int:
        return self._k


class ReplayScheduler(Scheduler):
    """Replay an explicit finite schedule, then follow a fallback.

    The fallback always receives the **true** executor step index -- the
    same clock the executor and its ``view`` run on -- so adaptive or
    deadline-based fallbacks (:class:`AdaptiveScheduler`,
    :class:`KBoundedFairScheduler`) observe a consistent world.  Position
    sensitivity is handled by :meth:`Scheduler.rebase` instead: at the
    handoff the fallback's internal origin is re-anchored at the end of
    the prefix (round-robin cursors restart their rotation there,
    k-bounded deadlines are re-staggered from there).
    """

    def __init__(self, prefix: Sequence[NodeId], then: Optional[Scheduler] = None) -> None:
        self._prefix = tuple(prefix)
        self._then = then
        self._origin = 0
        self._handed_off = False

    def next_processor(self, step_index: int, view) -> NodeId:
        local = step_index - self._origin
        if local < len(self._prefix):
            return self._prefix[local]
        if self._then is None:
            raise ScheduleError("replay schedule exhausted and no fallback given")
        if not self._handed_off:
            self._then.rebase(self._origin + len(self._prefix))
            self._handed_off = True
        return self._then.next_processor(step_index, view)

    def reset(self) -> None:
        self._origin = 0
        self._handed_off = False
        if self._then is not None:
            self._then.reset()

    def rebase(self, origin: int) -> None:
        self._origin = origin
        self._handed_off = False

    @property
    def periodic(self) -> bool:
        # The prefix is positional, hence periodic in the degenerate
        # sense; an infinite run is periodic iff the fallback is.  With no
        # fallback the schedule is not even infinite, so: not periodic.
        return self._then is not None and self._then.periodic


class StarvationScheduler(Scheduler):
    """A *general* schedule: the given processors never run.

    This is the adversary of Theorem 1 -- legal only when the system's
    schedule class is GENERAL.
    """

    def __init__(self, processors: Sequence[NodeId], starved: Iterable[NodeId]) -> None:
        starved = frozenset(starved)
        self._active = tuple(p for p in processors if p not in starved)
        if not self._active:
            raise ScheduleError("cannot starve every processor")
        self._starved = starved
        self._origin = 0

    def next_processor(self, step_index: int, view) -> NodeId:
        return self._active[(step_index - self._origin) % len(self._active)]

    def reset(self) -> None:
        self._origin = 0

    def rebase(self, origin: int) -> None:
        self._origin = origin

    @property
    def periodic(self) -> bool:
        return True

    @property
    def starved(self) -> frozenset:
        return self._starved


class AdaptiveScheduler(Scheduler):
    """An adversary driven by a callback over the live configuration."""

    def __init__(self, choose: Callable[[int, object], NodeId]) -> None:
        self._choose = choose

    def next_processor(self, step_index: int, view) -> NodeId:
        return self._choose(step_index, view)


# ----------------------------------------------------------------------
# schedule-prefix validation
# ----------------------------------------------------------------------


def is_fair_prefix(schedule: Sequence[NodeId], processors: Sequence[NodeId]) -> bool:
    """Does the finite prefix mention every processor at least once?

    (Fairness proper is a property of infinite schedules; for a finite
    prefix this is the natural necessary check.)
    """
    return set(processors) <= set(schedule)


def is_k_bounded_prefix(
    schedule: Sequence[NodeId], processors: Sequence[NodeId], k: int
) -> bool:
    """Every window of ``k`` consecutive steps contains every processor."""
    procs = set(processors)
    if k < len(procs):
        return False
    for start in range(0, max(1, len(schedule) - k + 1)):
        window = set(schedule[start : start + k])
        if len(schedule) - start >= k and not procs <= window:
            return False
    return True
