"""Deterministic anonymous programs (paper, Section 2).

"We assume all processors in a system execute the same program.  This
means that processors in the same state execute the same instruction."

A :class:`Program` is therefore a pure state machine over *local states*:

* ``initial_state(state0)`` -- the local state a processor starts in,
  derived only from the node's initial state (never from its identity);
* ``next_action(state)`` -- the single instruction the processor executes
  next, a pure function of its local state (the program counter is part
  of the state);
* ``transition(state, action, result)`` -- the new local state after the
  executor performs the action and returns its result;
* ``is_selected(state)`` -- the ``selected_p`` flag of the selection
  problem, read off the local state.

Local states must be hashable: the executor snapshots whole-system
configurations for cycle detection, and the similarity experiments compare
local states across processors.

Determinism is enforced dynamically: the executor calls ``next_action``
once per step and will re-derive identical behavior for identical states,
and :func:`check_anonymous` can replay a program to verify purity.
"""

from __future__ import annotations

import random
import zlib
from abc import ABC, abstractmethod
from typing import Callable, Hashable, Optional, Sequence

from ..core.names import State
from .actions import Action, Internal, Lock, Peek, Post, Read, Unlock, Write

LocalState = Hashable


def _stable_digest(value: Hashable) -> int:
    """A digest stable across interpreter runs (unlike ``hash`` on str)."""
    return zlib.crc32(repr(value).encode()) % 1009


class Program(ABC):
    """A deterministic anonymous program."""

    @abstractmethod
    def initial_state(self, state0: State) -> LocalState:
        """Local state derived from the node's initial state only."""

    @abstractmethod
    def next_action(self, state: LocalState) -> Action:
        """The instruction to execute in ``state`` (pure)."""

    @abstractmethod
    def transition(self, state: LocalState, action: Action, result: Hashable) -> LocalState:
        """The state after executing ``action`` with ``result`` (pure)."""

    def is_selected(self, state: LocalState) -> bool:
        """Whether this local state has ``selected = true``."""
        return False


class FunctionalProgram(Program):
    """Build a program from three plain functions (handy in tests)."""

    def __init__(
        self,
        initial: Callable[[State], LocalState],
        action: Callable[[LocalState], Action],
        step: Callable[[LocalState, Action, Hashable], LocalState],
        selected: Optional[Callable[[LocalState], bool]] = None,
    ) -> None:
        self._initial = initial
        self._action = action
        self._step = step
        self._selected = selected

    def initial_state(self, state0: State) -> LocalState:
        return self._initial(state0)

    def next_action(self, state: LocalState) -> Action:
        return self._action(state)

    def transition(self, state: LocalState, action: Action, result: Hashable) -> LocalState:
        return self._step(state, action, result)

    def is_selected(self, state: LocalState) -> bool:
        return bool(self._selected and self._selected(state))


class IdleProgram(Program):
    """Every step is an internal no-op; the local state never changes."""

    def initial_state(self, state0: State) -> LocalState:
        return ("idle", state0)

    def next_action(self, state: LocalState) -> Action:
        return Internal("idle")

    def transition(self, state, action, result) -> LocalState:
        return state


class RandomProgramQ(Program):
    """A pseudo-random (but deterministic!) program over Q instructions.

    Used by the similarity-validation experiments: Theorem 4 promises that
    the class round-robin schedule keeps same-labeled nodes in equal
    states *for any program*, so we throw seeded-random-but-deterministic
    programs at it.  The action in each state is derived by hashing the
    state with the seed -- a pure function, hence a legal program.

    The program cycles through a bounded state space (a counter mod
    ``period`` plus the last peeked digest) so executions always reach a
    configuration cycle.
    """

    def __init__(self, names: Sequence, seed: int = 0, period: int = 6) -> None:
        self._names = tuple(names)
        self._seed = seed
        self._period = max(2, period)

    def initial_state(self, state0: State) -> LocalState:
        return (0, ("init", state0))

    def _rng(self, state: LocalState) -> random.Random:
        return random.Random(f"{self._seed}:{state!r}")

    def next_action(self, state: LocalState) -> Action:
        rng = self._rng(state)
        kind = rng.choice(["peek", "post", "internal"])
        name = rng.choice(self._names)
        if kind == "peek":
            return Peek(name)
        if kind == "post":
            counter, digest = state
            return Post(name, ("val", counter, digest))
        return Internal("spin")

    def transition(self, state: LocalState, action: Action, result) -> LocalState:
        counter, digest = state
        new_counter = (counter + 1) % self._period
        if isinstance(action, Peek):
            # Keep a bounded digest of what was observed.
            digest = ("peeked", _stable_digest(result))
        return (new_counter, digest)


class RandomProgramS(Program):
    """Seeded-random deterministic program over S instructions.

    Same purpose as :class:`RandomProgramQ` but with reads/writes; write
    values are pure functions of the local state, so same-labeled
    processors in lockstep write identical values.
    """

    def __init__(self, names: Sequence, seed: int = 0, period: int = 6) -> None:
        self._names = tuple(names)
        self._seed = seed
        self._period = max(2, period)

    def initial_state(self, state0: State) -> LocalState:
        return (0, ("init", state0))

    def next_action(self, state: LocalState) -> Action:
        rng = random.Random(f"{self._seed}:{state!r}")
        kind = rng.choice(["read", "write", "internal"])
        name = rng.choice(self._names)
        if kind == "read":
            return Read(name)
        if kind == "write":
            counter, digest = state
            return Write(name, ("w", counter, digest))
        return Internal("spin")

    def transition(self, state: LocalState, action: Action, result) -> LocalState:
        counter, digest = state
        new_counter = (counter + 1) % self._period
        if isinstance(action, Read):
            digest = ("read", _stable_digest(result))
        return (new_counter, digest)


class RandomProgramL(Program):
    """Seeded-random deterministic program over L instructions.

    Locks are used in a disciplined try-lock / act / unlock pattern so the
    program never wedges itself: the state remembers which name it holds.
    """

    def __init__(self, names: Sequence, seed: int = 0, period: int = 8) -> None:
        self._names = tuple(names)
        self._seed = seed
        self._period = max(3, period)

    def initial_state(self, state0: State) -> LocalState:
        return (0, ("init", state0), None)  # counter, digest, held name

    def next_action(self, state: LocalState) -> Action:
        counter, digest, held = state
        if held is not None:
            return Unlock(held)
        rng = random.Random(f"{self._seed}:{state!r}")
        kind = rng.choice(["read", "write", "lock", "internal"])
        name = rng.choice(self._names)
        if kind == "read":
            return Read(name)
        if kind == "write":
            return Write(name, ("w", counter, digest))
        if kind == "lock":
            return Lock(name)
        return Internal("spin")

    def transition(self, state: LocalState, action: Action, result) -> LocalState:
        counter, digest, held = state
        new_counter = (counter + 1) % self._period
        if isinstance(action, Read):
            digest = ("read", _stable_digest(result))
        elif isinstance(action, Lock):
            digest = ("locked", bool(result))
            if result:
                held = action.name
        elif isinstance(action, Unlock):
            held = None
        return (new_counter, digest, held)


def check_anonymous(program: Program, states: Sequence[State]) -> bool:
    """Sanity-check purity: identical inputs give identical outputs.

    Replays ``initial_state`` and ``next_action`` twice for each provided
    initial state and compares.  Catches programs that consult hidden
    mutable state or real randomness.
    """
    for s in states:
        a, b = program.initial_state(s), program.initial_state(s)
        if a != b:
            return False
        if program.next_action(a) != program.next_action(b):
            return False
    return True
