"""The step-level simulator.

An :class:`Executor` runs one anonymous program on every processor of a
system, following a scheduler.  Each step atomically executes one
instruction of one processor, exactly as in the paper's execution model.

The executor enforces the system's instruction set: a program that emits a
``Peek`` in a system declared with instruction set S is broken, and the
executor raises :class:`~repro.exceptions.ExecutionError` rather than
silently executing an illegal instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

from ..core.names import NodeId
from ..core.system import InstructionSet, System
from ..exceptions import ExecutionError
from ..obs.events import EventHub, StepExecuted
from .actions import (
    Action,
    Halt,
    Internal,
    Lock,
    MultiLock,
    Peek,
    Post,
    Read,
    Unlock,
    Write,
)
from .program import LocalState, Program
from .scheduler import Scheduler
from .variables import PlainVariable, SubvalueVariable

_ALLOWED = {
    InstructionSet.S: (Read, Write, Internal, Halt),
    InstructionSet.L: (Read, Write, Lock, Unlock, Internal, Halt),
    InstructionSet.L2: (Read, Write, Lock, Unlock, MultiLock, Internal, Halt),
    InstructionSet.Q: (Peek, Post, Internal, Halt),
}


@dataclass(frozen=True)
class StepRecord:
    """One executed step: who did what and what came back.

    ``noop`` marks a scheduled slot wasted on an already-halted
    processor: no instruction executed and no state changed.  The
    fairness bookkeeping still counts the slot (halted processors waste
    their steps, exactly as in the paper's model), but aggregations —
    census, timelines — must not mistake it for a real ``Halt`` action.
    """

    index: int
    processor: NodeId
    action: Action
    result: Hashable
    noop: bool = False


Configuration = Tuple[Tuple[Hashable, ...], Tuple[Hashable, ...]]


class Executor:
    """Runs ``program`` on every processor of ``system`` under ``scheduler``."""

    def __init__(
        self,
        system: System,
        program: Program,
        scheduler: Scheduler,
        strict: bool = True,
        sink=None,
    ) -> None:
        self.system = system
        self.program = program
        self.scheduler = scheduler
        self.strict = strict
        self.step_count = 0
        #: structured-event hub (:mod:`repro.obs`); emission is skipped
        #: entirely while no sink is attached.
        self.events = EventHub()
        if sink is not None:
            self.events.attach(sink)
        self.local: Dict[NodeId, LocalState] = {
            p: program.initial_state(system.state0(p)) for p in system.processors
        }
        self.halted: Dict[NodeId, bool] = {p: False for p in system.processors}
        if system.instruction_set.is_multiset:
            self.vars: Dict[NodeId, SubvalueVariable] = {
                v: SubvalueVariable(v, system.state0(v)) for v in system.variables
            }
        else:
            self.vars = {
                v: PlainVariable(v, system.state0(v)) for v in system.variables
            }

    # ------------------------------------------------------------------

    def _variable_for(self, processor: NodeId, name) -> object:
        return self.vars[self.system.n_nbr(processor, name)]

    def _execute(self, processor: NodeId, action: Action) -> Hashable:
        allowed = _ALLOWED[self.system.instruction_set]
        if not isinstance(action, allowed):
            raise ExecutionError(
                f"action {action!r} illegal under instruction set "
                f"{self.system.instruction_set.value}"
            )
        if isinstance(action, Read):
            return self._variable_for(processor, action.name).read()
        if isinstance(action, Write):
            self._variable_for(processor, action.name).write(action.value)
            return None
        if isinstance(action, Lock):
            return self._variable_for(processor, action.name).try_lock(processor)
        if isinstance(action, Unlock):
            self._variable_for(processor, action.name).unlock(processor, self.strict)
            return None
        if isinstance(action, MultiLock):
            # Distinct target variables in a deterministic order: several
            # names may resolve to one variable, and acquisition must not
            # depend on set-iteration (hash) order or traces would vary
            # across interpreter runs.
            distinct = {self.system.n_nbr(processor, n) for n in action.names}
            targets = [self.vars[node] for node in sorted(distinct, key=repr)]
            self_held = [
                v for v in targets if v.locked and v.lock_owner == processor
            ]
            if self_held and self.strict:
                held_names = [v.node for v in self_held]
                raise ExecutionError(
                    f"processor {processor!r} multi-locking variables it "
                    f"already holds: {held_names!r}"
                )
            if any(v.locked and v.lock_owner != processor for v in targets):
                return False  # someone else holds one: acquire nothing
            for v in targets:
                if v.locked:
                    continue  # self-held (non-strict): re-entrant success
                if not v.try_lock(processor):  # pragma: no cover - invariant
                    raise ExecutionError(
                        f"multi-lock acquisition of {v.node!r} failed "
                        f"despite the lock appearing free"
                    )
            return True
        if isinstance(action, Peek):
            return self._variable_for(processor, action.name).peek()
        if isinstance(action, Post):
            self._variable_for(processor, action.name).post(processor, action.value)
            return None
        if isinstance(action, (Internal, Halt)):
            return None
        raise ExecutionError(f"unknown action {action!r}")  # pragma: no cover

    def step(self) -> StepRecord:
        """Execute the next scheduled step and return its record."""
        processor = self.scheduler.next_processor(self.step_count, self)
        return self.step_as(processor)

    def step_as(self, processor: NodeId) -> StepRecord:
        """Execute one step of a *chosen* processor, bypassing the
        scheduler.

        The explicit-choice entry point for state-space searches (the
        Theorem-1 adversary explores all successors of a configuration);
        everything else about the step is identical to :meth:`step`.
        """
        if processor not in self.local:
            raise ExecutionError(f"scheduler picked unknown processor {processor!r}")
        if self.halted[processor]:
            record = StepRecord(self.step_count, processor, Halt(), None, noop=True)
            self.step_count += 1
            self._after_step(record)
            return record
        state = self.local[processor]
        action = self.program.next_action(state)
        if isinstance(action, Halt):
            self.halted[processor] = True
            result = None
        else:
            result = self._execute(processor, action)
            self.local[processor] = self.program.transition(state, action, result)
        record = StepRecord(self.step_count, processor, action, result)
        self.step_count += 1
        self._after_step(record)
        return record

    def _after_step(self, record: StepRecord) -> None:
        """Post-step hook: publish the record to the event hub."""
        if self.events.active:
            self.events.emit(StepExecuted(record))

    def run(self, steps: int) -> None:
        """Execute ``steps`` scheduled steps."""
        for _ in range(steps):
            self.step()

    def clone(self) -> "Executor":
        """An independent copy of the execution state.

        Local states are immutable (shared); variable runtime objects are
        re-created from their mutable fields.  The program is shared
        (pure); the scheduler is shared too -- use :meth:`step_as` on
        clones, since stateful schedulers are not forked.  The clone gets
        a fresh, empty event hub (observation sinks are not forked);
        subclasses fork their own bookkeeping via :meth:`_clone_extras`.
        """
        twin = object.__new__(type(self))
        twin.system = self.system
        twin.program = self.program
        twin.scheduler = self.scheduler
        twin.strict = self.strict
        twin.step_count = self.step_count
        twin.local = dict(self.local)
        twin.halted = dict(self.halted)
        twin.vars = {}
        for node, variable in self.vars.items():
            if isinstance(variable, SubvalueVariable):
                fresh = SubvalueVariable(node, variable.base)
                fresh.subvalues = dict(variable.subvalues)
            else:
                fresh = PlainVariable(node, variable.value)
                fresh.locked = variable.locked
                fresh.lock_owner = variable.lock_owner
            twin.vars[node] = fresh
        twin.events = EventHub()
        self._clone_extras(twin)
        return twin

    def _clone_extras(self, twin: "Executor") -> None:
        """Subclass hook: copy extra bookkeeping onto a fresh clone.

        Called at the end of :meth:`clone` with the base state already
        copied.  Subclasses that keep per-run state (recorders, PRNGs)
        override this instead of relying on ``clone`` knowing their
        attributes.
        """

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def configuration(self) -> Configuration:
        """A hashable snapshot of the entire system state.

        Processor local states in processor order, then variable snapshots
        in variable order.  Equal configurations imply identical future
        behavior under the same (oblivious) scheduler state.
        """
        proc_part = tuple(self.local[p] for p in self.system.processors)
        var_part = tuple(self.vars[v].snapshot() for v in self.system.variables)
        return (proc_part, var_part)

    def eligible_processors(self) -> Tuple[NodeId, ...]:
        """Processors that can still execute a real instruction.

        The paper's scheduler may select any processor at any step, but a
        halted processor only wastes the slot; for state-space exploration
        the *eligible* set is what matters (no eligible processor means
        the run is over).  System order, so enumeration is deterministic.
        """
        return tuple(p for p in self.system.processors if not self.halted[p])

    def exploration_state(self) -> Configuration:
        """An exact state snapshot for state-space search.

        :meth:`configuration` abstracts on purpose -- lock *ownership* and
        Q subvalue *attribution* are invisible to paper-level observers --
        but both determine future behavior (strict unlock and multi-lock
        checks consult the owner; a poster overwrites its own subvalue).
        This snapshot keeps them, encoding processors by their position in
        ``system.processors`` so that permuting similar processors acts on
        the snapshot by index permutation.  Halted flags ride along with
        the local states for the same reason.
        """
        index = {p: i for i, p in enumerate(self.system.processors)}
        proc_part = tuple(
            (self.local[p], self.halted[p]) for p in self.system.processors
        )
        var_part = []
        for v in self.system.variables:
            variable = self.vars[v]
            if isinstance(variable, SubvalueVariable):
                entries = tuple(
                    sorted((index[p], val) for p, val in variable.subvalues.items())
                )
                var_part.append(("subvalue", variable.base, entries))
            else:
                owner = variable.lock_owner
                var_part.append(
                    (
                        "plain",
                        variable.value,
                        variable.locked,
                        index[owner] if owner in index else -1,
                    )
                )
        return (proc_part, tuple(var_part))

    def successor(self, processor: NodeId) -> "Executor":
        """The executor one ``step_as(processor)`` later, as a fresh clone.

        The receiver is untouched; successive calls enumerate the
        successor configurations of the current state.
        """
        twin = self.clone()
        twin.step_as(processor)
        return twin

    def node_state(self, node: NodeId) -> Hashable:
        """The paper-level ``state(x)``: local state for processors, value
        snapshot for variables."""
        if node in self.local:
            return self.local[node]
        return self.vars[node].snapshot()

    def selected_processors(self) -> Tuple[NodeId, ...]:
        """Processors whose local state has ``selected = true``."""
        return tuple(
            p
            for p in self.system.processors
            if self.program.is_selected(self.local[p])
        )
