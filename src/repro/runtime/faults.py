"""Crash faults as schedules (the FLP reading of Theorem 1).

"A halting failure can be viewed as an infinite schedule where a faulty
processor appears only a finite number of times."  This module makes
crashes first-class:

* :class:`CrashScheduler` wraps any scheduler and stops scheduling a
  processor after its crash step -- producing exactly the general
  schedules of the quote; the result is *not* fair, which is the point.
* :func:`run_with_crash` executes a program under a crash and reports
  what happened to the survivors.

The interesting experiments: algorithms proved correct for fair
schedules (Algorithm 2, SELECT) visibly lose their guarantees when one
processor crashes at the wrong moment -- the same phenomenon Theorem 1
turns into an impossibility proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from ..core.names import NodeId
from ..core.system import System
from ..exceptions import ScheduleError
from ..obs.events import CrashManifested
from .executor import Executor
from .program import Program
from .scheduler import Scheduler


class CrashScheduler(Scheduler):
    """Schedule via ``base``, but crashed processors stop appearing.

    Args:
        base: the underlying scheduler.
        crash_at: mapping ``processor -> step index`` after which that
            processor is never scheduled again.  (A crash at 0 means the
            processor never runs at all.)

    When ``base`` picks a crashed processor the wrapper re-rolls by
    advancing a private round-robin over the survivors, so the returned
    schedule stays well-formed.

    With a ``sink`` attached (anything with ``on_event``), the scheduler
    emits one :class:`~repro.obs.events.CrashManifested` event per
    crashed processor, at the first scheduling decision made at or after
    its crash step.
    """

    def __init__(
        self,
        base: Scheduler,
        crash_at: Mapping[NodeId, int],
        processors: Iterable[NodeId],
        sink=None,
    ) -> None:
        self.base = base
        self.crash_at: Dict[NodeId, int] = dict(crash_at)
        self._procs = tuple(processors)
        ghosts = set(self.crash_at) - set(self._procs)
        if ghosts:
            # A crash plan naming a processor the system does not have is a
            # configuration error, not a silent no-op: accepting it would
            # let run_with_crash report ghost processors as crashed.
            raise ScheduleError(
                f"crash_at names unknown processors "
                f"{sorted(str(p) for p in ghosts)}"
            )
        survivors = [
            p for p in self._procs
            if p not in self.crash_at or self.crash_at[p] > 0
        ]
        if not survivors:
            # Nobody is alive even at step 0; there is no schedule at all.
            # (Everybody *eventually* crashing is fine for a finite run --
            # the crash steps may lie beyond the horizon.)
            raise ScheduleError("at least one processor must survive step 0")
        self._fallback = 0
        self._sink = sink
        self._manifested: set = set()

    def _alive(self, processor: NodeId, step_index: int) -> bool:
        limit = self.crash_at.get(processor)
        return limit is None or step_index < limit

    def _note_crashes(self, step_index: int) -> None:
        for p in self._procs:
            limit = self.crash_at.get(p)
            if limit is not None and step_index >= limit and p not in self._manifested:
                self._manifested.add(p)
                self._sink.on_event(CrashManifested(p, limit, step_index))

    def next_processor(self, step_index: int, view) -> NodeId:
        if self._sink is not None:
            self._note_crashes(step_index)
        choice = self.base.next_processor(step_index, view)
        if self._alive(choice, step_index):
            return choice
        survivors = [p for p in self._procs if self._alive(p, step_index)]
        if not survivors:
            raise ScheduleError(
                f"every processor has crashed by step {step_index}"
            )
        pick = survivors[self._fallback % len(survivors)]
        self._fallback += 1
        return pick

    def reset(self) -> None:
        self.base.reset()
        self._fallback = 0
        self._manifested.clear()

    def rebase(self, origin: int) -> None:
        self.base.rebase(origin)


@dataclass(frozen=True)
class CrashRunReport:
    """Outcome of a run with crashes.

    Attributes:
        steps: steps executed.
        crashed: the crashes that actually happened within the run, with
            their crash steps; configured crashes at or beyond ``steps``
            never manifested and are not reported.
        done: per-processor flags from the caller's predicate.
        selected: processors whose local state is selected at the end.
    """

    steps: int
    crashed: Tuple[Tuple[NodeId, int], ...]
    done: Dict[NodeId, bool]
    selected: Tuple[NodeId, ...]


def run_with_crash(
    system: System,
    program: Program,
    base_scheduler: Scheduler,
    crash_at: Mapping[NodeId, int],
    steps: int,
    done_predicate=lambda state: False,
    sink=None,
) -> CrashRunReport:
    """Run ``program`` under ``base_scheduler`` with crashes injected.

    ``sink`` (optional) observes the run: step events from the executor
    plus crash-manifestation events from the scheduler.
    """
    scheduler = CrashScheduler(base_scheduler, crash_at, system.processors, sink=sink)
    executor = Executor(system, program, scheduler, sink=sink)
    executor.run(steps)
    manifested = [(p, t) for p, t in crash_at.items() if t < steps]
    return CrashRunReport(
        steps=steps,
        crashed=tuple(sorted(manifested, key=lambda kv: repr(kv[0]))),
        done={p: done_predicate(executor.local[p]) for p in system.processors},
        selected=executor.selected_processors(),
    )
