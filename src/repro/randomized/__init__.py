"""Randomized symmetry breaking (Section 8)."""

from .analysis import (
    ir_expected_messages,
    ir_expected_phases,
    ir_no_tie_probability,
    lr_all_same_direction_probability,
)
from .coin_runtime import CoinExecutor, FlipCoin
from .itai_rodeh import ElectionResult, ElectionStats, elect, election_statistics
from .lehmann_rabin import (
    LehmannRabinProgram,
    LRReport,
    LRState,
    run_lehmann_rabin,
)

__all__ = [
    "CoinExecutor",
    "ElectionResult",
    "ElectionStats",
    "FlipCoin",
    "LRReport",
    "LRState",
    "LehmannRabinProgram",
    "elect",
    "ir_expected_messages",
    "ir_expected_phases",
    "ir_no_tie_probability",
    "lr_all_same_direction_probability",
    "election_statistics",
    "run_lehmann_rabin",
]
