"""Randomized programs: coin flips as an explicit instruction.

Section 8: "Randomized algorithms have been used to break symmetry in
distributed systems...  These algorithms can solve synchronization
problems that deterministic algorithms cannot."  In the paper's terms, a
coin flip is precisely a step whose outcome is *not* a function of the
processor's state -- which is why randomized programs escape the
similarity arguments: the round-robin schedule can no longer keep
same-labeled processors in lockstep, because their coins may differ.

We model this minimally: a :class:`FlipCoin` action whose result is a
fair random bit (or a uniform draw from a range), supplied by a
:class:`CoinExecutor` with a seeded generator.  Everything else about the
execution model is unchanged, so randomized and deterministic programs
run under the same schedulers and checkers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable

from ..runtime.actions import Action
from ..runtime.executor import Executor
from ..runtime.program import Program
from ..runtime.scheduler import Scheduler
from ..core.system import System


@dataclass(frozen=True)
class FlipCoin(Action):
    """Draw a uniform integer in ``range(sides)`` (default: a fair bit)."""

    sides: int = 2


class CoinExecutor(Executor):
    """An executor that also serves :class:`FlipCoin` actions.

    Coin outcomes come from a single seeded PRNG, so runs are reproducible
    while processors remain anonymous (no per-processor seeds -- identical
    states still flip *independent* coins, which is the whole point).
    """

    def __init__(
        self,
        system: System,
        program: Program,
        scheduler: Scheduler,
        seed: int = 0,
        strict: bool = True,
    ) -> None:
        super().__init__(system, program, scheduler, strict)
        self._rng = random.Random(seed)

    def _execute(self, processor, action: Action) -> Hashable:
        if isinstance(action, FlipCoin):
            return self._rng.randrange(action.sides)
        return super()._execute(processor, action)
