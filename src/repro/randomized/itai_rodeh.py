"""Itai-Rodeh probabilistic leader election on anonymous rings [IR81].

"The Lord of the Ring": in an anonymous unidirectional ring -- where every
processor is similar to every other, so by Theorem 2 *no deterministic
selection algorithm exists* -- processors can still elect a unique leader
with probability 1 by drawing random identities.

The classic synchronous-phase formulation implemented here:

1. every active candidate draws an id uniformly from ``{1..id_space}``;
2. its id circulates around the ring with a hop counter; each candidate
   compares incoming ids with its own;
3. candidates that saw a strictly larger id become passive;
4. a candidate whose own id returned after a full trip around the ring
   (hop count = n... learned, not assumed -- the token counts hops) checks
   whether any *equal* id from a different candidate was seen; if yes the
   tied candidates re-draw (next phase), if no it is the unique maximum
   and becomes the leader.

The simulation is phase-synchronous (the usual presentation); message
counts are tallied so benchmarks can report the expected O(n log n)
message behavior, and repeated trials estimate the per-phase tie
probability as a function of ``id_space``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class ElectionResult:
    """Outcome of one Itai-Rodeh election.

    Attributes:
        leader: index of the elected processor (None only if the round
            cap was hit -- probability vanishes with rounds).
        phases: how many re-draw phases were needed.
        messages: total id-tokens forwarded (hop count sum).
        candidates_per_phase: surviving candidate counts, per phase.
    """

    leader: Optional[int]
    phases: int
    messages: int
    candidates_per_phase: Tuple[int, ...]

    @property
    def elected(self) -> bool:
        return self.leader is not None


def elect(
    n: int,
    id_space: int = 2,
    seed: int = 0,
    max_phases: int = 10_000,
) -> ElectionResult:
    """Run one anonymous-ring election.

    Args:
        n: ring size (all processors identical and anonymous).
        id_space: each candidate draws ids from ``{1..id_space}``; larger
            spaces mean fewer ties per phase.
        seed: PRNG seed (one generator models all the independent coins).
        max_phases: safety cap.
    """
    if n < 1:
        raise ValueError("ring size must be positive")
    if n == 1:
        return ElectionResult(leader=0, phases=0, messages=0, candidates_per_phase=(1,))
    rng = random.Random(seed)
    active: List[int] = list(range(n))
    messages = 0
    history: List[int] = []
    for phase in range(1, max_phases + 1):
        history.append(len(active))
        ids = {p: rng.randint(1, id_space) for p in active}
        best = max(ids.values())
        winners = [p for p in active if ids[p] == best]
        # Each candidate's token travels until it meets the next candidate
        # with a >= id; in the synchronous phase model the message count is
        # the sum of all token hop distances: every token travels the whole
        # ring in the standard accounting.
        messages += len(active) * n
        if len(winners) == 1:
            return ElectionResult(
                leader=winners[0],
                phases=phase,
                messages=messages,
                candidates_per_phase=tuple(history),
            )
        active = winners
    return ElectionResult(
        leader=None,
        phases=max_phases,
        messages=messages,
        candidates_per_phase=tuple(history),
    )


@dataclass(frozen=True)
class ElectionStats:
    """Aggregates over repeated elections."""

    trials: int
    success_rate: float
    mean_phases: float
    mean_messages: float
    max_phases: int


def election_statistics(
    n: int,
    id_space: int = 2,
    trials: int = 200,
    seed: int = 0,
) -> ElectionStats:
    """Monte-Carlo statistics of Itai-Rodeh on an ``n``-ring."""
    phases = []
    messages = []
    successes = 0
    for t in range(trials):
        result = elect(n, id_space=id_space, seed=seed + 1000 * t)
        if result.elected:
            successes += 1
        phases.append(result.phases)
        messages.append(result.messages)
    return ElectionStats(
        trials=trials,
        success_rate=successes / trials,
        mean_phases=sum(phases) / trials,
        mean_messages=sum(messages) / trials,
        max_phases=max(phases),
    )
