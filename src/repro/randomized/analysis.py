"""Analytic companions to the randomized experiments.

Section 8 says randomization adds power; the *quantitative* side of that
claim is standard probability, reproduced here so the Monte-Carlo
benchmarks have closed-form shapes to compare against:

* :func:`ir_no_tie_probability` -- in one Itai-Rodeh phase with ``c``
  candidates drawing from ``{1..s}``, the probability that the maximum is
  unique (the phase elects);
* :func:`ir_expected_phases` -- expected number of phases via the
  absorbing-chain recurrence on the candidate count;
* :func:`lr_deadlock_free` -- the structural reason Lehmann-Rabin escapes
  the Figure-4 trap: in any reachable configuration where every
  philosopher holds one fork, at least one adjacent pair chose opposite
  first forks with probability 1 over time (the all-same-direction choice
  has probability 2^-n per retry round and is re-randomized each time).
"""

from __future__ import annotations

from functools import lru_cache
from math import comb
from typing import Dict, Tuple


def ir_no_tie_probability(candidates: int, id_space: int) -> float:
    """P(the maximum drawn id is unique) for one Itai-Rodeh phase.

    Exact enumeration over the maximum value m: the max equals m and is
    held by exactly one candidate.
    """
    if candidates <= 1:
        return 1.0
    c, s = candidates, id_space
    total = 0.0
    for m in range(1, s + 1):
        # exactly one candidate draws m, the rest draw < m
        total += c * (1 / s) * ((m - 1) / s) ** (c - 1)
    return total


@lru_cache(maxsize=None)
def _survivor_distribution(candidates: int, id_space: int) -> Tuple[Tuple[int, float], ...]:
    """Distribution of the number of max-holders in one phase."""
    c, s = candidates, id_space
    out: Dict[int, float] = {}
    for m in range(1, s + 1):
        for k in range(1, c + 1):
            # exactly k candidates draw m, the rest draw < m
            prob = comb(c, k) * (1 / s) ** k * ((m - 1) / s) ** (c - k)
            out[k] = out.get(k, 0.0) + prob
    return tuple(sorted(out.items()))


@lru_cache(maxsize=None)
def ir_expected_phases(candidates: int, id_space: int) -> float:
    """Expected phases until a unique leader, from ``candidates`` actives.

    Recurrence: E[c] = 1 + sum_k P(survivors = k, k >= 2) * E[k], with the
    self-loop (k = c) solved out analytically.
    """
    if candidates <= 1:
        return 0.0
    dist = dict(_survivor_distribution(candidates, id_space))
    self_loop = dist.get(candidates, 0.0)
    if self_loop >= 1.0:
        # id_space == 1 with >= 2 candidates: every phase is an all-way
        # tie, the election never terminates, and the recurrence would
        # divide by zero.
        raise ValueError(
            f"Itai-Rodeh never elects with id_space={id_space} and "
            f"{candidates} candidates: every draw ties, the expected "
            "number of phases is infinite"
        )
    rest = 1.0
    for k, p in dist.items():
        if 2 <= k < candidates:
            rest += p * ir_expected_phases(k, id_space)
    return rest / (1.0 - self_loop)


def ir_expected_messages(n: int, id_space: int) -> float:
    """Expected messages under the per-phase n-per-candidate accounting.

    E[messages] = n * E[sum over phases of active candidates]; computed
    with the same survivor recurrence.
    """

    @lru_cache(maxsize=None)
    def expected_candidate_rounds(c: int) -> float:
        if c <= 1:
            return 0.0
        dist = dict(_survivor_distribution(c, id_space))
        self_loop = dist.get(c, 0.0)
        if self_loop >= 1.0:
            raise ValueError(
                f"Itai-Rodeh never elects with id_space={id_space} and "
                f"{c} candidates: every draw ties, the expected message "
                "count is infinite"
            )
        rest = float(c)
        for k, p in dist.items():
            if 2 <= k < c:
                rest += p * expected_candidate_rounds(k)
        return rest / (1.0 - self_loop)

    return n * expected_candidate_rounds(n)


def lr_all_same_direction_probability(n: int) -> float:
    """P(every philosopher's current coin points the same way around).

    This is the only first-fork pattern that can produce the circular
    hold-and-wait; it is re-drawn on every retry, so the probability that
    the trap persists for r consecutive retry rounds is (2^-(n-1)) ** r
    -> 0: Lehmann-Rabin is deadlock-free with probability 1.
    """
    return 2.0 ** (-(n - 1))
