"""The Lehmann-Rabin free-choice dining philosophers [LR80].

The algorithm DP rules out deterministically: each hungry philosopher
*flips a coin* to decide which fork to try first, takes it when free,
then tries the second fork; if the second is busy it **releases the
first** and re-flips.  No hold-and-wait, no fixed asymmetry -- with
probability 1 some philosopher eats, on every table size, including the
prime-sized tables where Theorem 11 dooms every deterministic symmetric
program.

Running this side by side with
:class:`~repro.baselines.dp_deterministic.LeftFirstDiningProgram` on
Figure 4 is the paper's Section 8 punchline: "we can describe the added
power of randomization".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.names import NodeId
from ..core.system import System
from ..runtime.actions import Action, Internal, Lock, Unlock
from ..runtime.program import LocalState, Program
from ..runtime.scheduler import Scheduler
from .coin_runtime import CoinExecutor, FlipCoin

THINK = "think"
FLIP = "flip"
WAIT_FIRST = "wait-first"
TRY_SECOND = "try-second"
RELEASE_FIRST_RETRY = "release-first-retry"
EAT = "eat"
RELEASE_A = "release-a"
RELEASE_B = "release-b"

_FORKS = ("left", "right")


@dataclass(frozen=True)
class LRState:
    stage: str
    first: Optional[str] = None  # which fork was chosen first
    counter: int = 0
    meals: int = 0


class LehmannRabinProgram(Program):
    """Randomized dining: flip, take first, try second, back off."""

    def __init__(self, think_steps: int = 1, eat_steps: int = 1, meal_cap: int = 1000) -> None:
        self.think_steps = max(1, think_steps)
        self.eat_steps = max(1, eat_steps)
        self.meal_cap = meal_cap

    def initial_state(self, state0) -> LocalState:
        return LRState(stage=THINK)

    def next_action(self, state: LRState) -> Action:
        if state.stage == THINK:
            return Internal("think")
        if state.stage == FLIP:
            return FlipCoin(2)
        if state.stage == WAIT_FIRST:
            return Lock(state.first)
        if state.stage == TRY_SECOND:
            return Lock(_other(state.first))
        if state.stage == RELEASE_FIRST_RETRY:
            return Unlock(state.first)
        if state.stage == EAT:
            return Internal("eat")
        if state.stage == RELEASE_A:
            return Unlock(_other(state.first))
        return Unlock(state.first)  # RELEASE_B

    def transition(self, state: LRState, action: Action, result) -> LocalState:
        if state.stage == THINK:
            nxt = state.counter + 1
            if nxt >= self.think_steps:
                return LRState(FLIP, meals=state.meals)
            return LRState(THINK, counter=nxt, meals=state.meals)
        if state.stage == FLIP:
            return LRState(WAIT_FIRST, first=_FORKS[result], meals=state.meals)
        if state.stage == WAIT_FIRST:
            if result:
                return LRState(TRY_SECOND, first=state.first, meals=state.meals)
            return state  # wait for the first fork (blocked philosophers
            # keep re-trying; the coin is only re-flipped after back-off)
        if state.stage == TRY_SECOND:
            if result:
                return LRState(EAT, first=state.first, meals=state.meals)
            return LRState(RELEASE_FIRST_RETRY, first=state.first, meals=state.meals)
        if state.stage == RELEASE_FIRST_RETRY:
            return LRState(FLIP, meals=state.meals)  # back off and re-flip
        if state.stage == EAT:
            nxt = state.counter + 1
            if nxt >= self.eat_steps:
                return LRState(
                    RELEASE_A,
                    first=state.first,
                    meals=min(state.meals + 1, self.meal_cap),
                )
            return LRState(EAT, first=state.first, counter=nxt, meals=state.meals)
        if state.stage == RELEASE_A:
            return LRState(RELEASE_B, first=state.first, meals=state.meals)
        return LRState(THINK, meals=state.meals)

    @staticmethod
    def is_eating(state: LRState) -> bool:
        return isinstance(state, LRState) and state.stage == EAT

    @staticmethod
    def meals(state: LRState) -> int:
        return state.meals if isinstance(state, LRState) else 0


def _other(fork: str) -> str:
    return "right" if fork == "left" else "left"


@dataclass(frozen=True)
class LRReport:
    """Outcome of a Lehmann-Rabin run."""

    steps: int
    meals: dict
    safety_ok: bool

    @property
    def everyone_ate(self) -> bool:
        return all(m > 0 for m in self.meals.values())

    @property
    def total_meals(self) -> int:
        return sum(self.meals.values())


def run_lehmann_rabin(
    system: System,
    scheduler: Scheduler,
    steps: int,
    adjacent: Tuple[Tuple[NodeId, NodeId], ...],
    seed: int = 0,
    program: Optional[LehmannRabinProgram] = None,
) -> LRReport:
    """Run Lehmann-Rabin, checking eating exclusion along the way."""
    program = program or LehmannRabinProgram()
    executor = CoinExecutor(system, program, scheduler, seed=seed)
    safety_ok = True
    for _ in range(steps):
        executor.step()
        for a, b in adjacent:
            if LehmannRabinProgram.is_eating(
                executor.local[a]
            ) and LehmannRabinProgram.is_eating(executor.local[b]):
                safety_ok = False
    meals = {
        p: LehmannRabinProgram.meals(executor.local[p]) for p in system.processors
    }
    return LRReport(steps=steps, meals=meals, safety_ok=safety_ok)
