"""Serialization: systems to and from JSON.

Lets users define systems in files and feed them to the CLI or the
library without writing Python.  The format mirrors the paper's
quadruple Σ = (N, state₀, I, SP)::

    {
      "names": ["left", "right"],
      "edges": {"p0": {"left": "v0", "right": "v1"},
                "p1": {"left": "v1", "right": "v0"}},
      "state": {"p0": 1},
      "instruction_set": "Q",
      "schedule_class": "F"
    }

States must be JSON scalars (numbers, strings, booleans, null); richer
state spaces are a Python-API feature.  ``loads``/``dumps`` round-trip
(`tests/test_io.py` keeps them honest).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

from .core.network import Network
from .core.system import InstructionSet, ScheduleClass, System
from .exceptions import ReproError


class SerializationError(ReproError):
    """The JSON document does not describe a valid system."""


_ISETS = {i.value: i for i in InstructionSet}
_SCHEDS = {s.value: s for s in ScheduleClass}


def system_to_dict(system: System) -> Dict[str, Any]:
    """A JSON-ready description of ``system``.

    Raises:
        SerializationError: if node ids, names, or states are not JSON
            scalars.
    """
    def check_scalar(value, what):
        if value is not None and not isinstance(value, (str, int, float, bool)):
            raise SerializationError(
                f"{what} {value!r} is not JSON-serializable as a scalar"
            )
        return value

    net = system.network
    edges = {}
    for p in net.processors:
        check_scalar(p, "processor id")
        edges[str(p)] = {
            str(check_scalar(name, "name")): str(check_scalar(v, "variable id"))
            for name, v in net.neighbors_of_processor(p).items()
        }
    state = {}
    for node in system.nodes:
        value = system.state0(node)
        if value != 0:  # 0 is the documented default
            state[str(node)] = check_scalar(value, "state")
    return {
        "names": [str(n) for n in net.names],
        "edges": edges,
        "state": state,
        "instruction_set": system.instruction_set.value,
        "schedule_class": system.schedule_class.value,
    }


def mp_system_to_dict(mp) -> Dict[str, Any]:
    """A JSON-ready description of a message-passing system.

    The shape mirrors :func:`system_to_dict` in spirit: processors,
    directed channels with their port names, and non-default initial
    states.  Used by the MP trace header so a recorded run is
    self-describing.
    """

    def check_scalar(value, what):
        if value is not None and not isinstance(value, (str, int, float, bool)):
            raise SerializationError(
                f"{what} {value!r} is not JSON-serializable as a scalar"
            )
        return value

    channels = [
        {
            "from": str(check_scalar(c.sender, "processor id")),
            "to": str(c.receiver),
            "port": str(c.port),
            "out_port": str(c.out_port),
        }
        for c in mp.channels
    ]
    state = {}
    for p in mp.processors:
        value = mp.state0(p)
        if value != 0:  # 0 is the documented default
            state[str(p)] = check_scalar(value, "state")
    return {
        "processors": [str(p) for p in mp.processors],
        "channels": channels,
        "state": state,
    }


def system_from_dict(doc: Mapping[str, Any]) -> System:
    """Build a system from a parsed JSON document."""
    try:
        names = tuple(doc["names"])
        edges = {
            proc: dict(nbrs) for proc, nbrs in dict(doc["edges"]).items()
        }
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"missing or malformed field: {exc}") from exc
    try:
        iset = _ISETS[doc.get("instruction_set", "Q")]
    except KeyError:
        raise SerializationError(
            f"unknown instruction_set {doc.get('instruction_set')!r}; "
            f"pick from {sorted(_ISETS)}"
        ) from None
    try:
        sched = _SCHEDS[doc.get("schedule_class", "F")]
    except KeyError:
        raise SerializationError(
            f"unknown schedule_class {doc.get('schedule_class')!r}; "
            f"pick from {sorted(_SCHEDS)}"
        ) from None
    net = Network(names, edges)
    state = dict(doc.get("state", {}))
    return System(net, state, iset, sched)


def dumps(system: System, indent: Optional[int] = 2) -> str:
    """Serialize a system to a JSON string."""
    return json.dumps(system_to_dict(system), indent=indent, sort_keys=True)


def loads(text: str) -> System:
    """Parse a system from a JSON string."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return system_from_dict(doc)


def load(path: str) -> System:
    """Load a system from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


def dump(system: System, path: str, indent: Optional[int] = 2) -> None:
    """Write a system to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(system, indent))
        handle.write("\n")


def to_dot(system: System, title: str = "system") -> str:
    """A Graphviz DOT rendering of the system's bipartite graph.

    Processors are boxes, variables are ellipses, edges carry their
    names; non-default initial states are annotated.  Feed the output to
    ``dot -Tsvg`` (Graphviz is not a dependency -- this only produces
    text).
    """
    lines = [f'graph "{title}" {{', "  rankdir=LR;"]
    for p in system.network.processors:
        state = system.state0(p)
        label = f"{p}" + (f"\\nstate={state}" if state != 0 else "")
        lines.append(f'  "{p}" [shape=box, label="{label}"];')
    for v in system.network.variables:
        state = system.state0(v)
        label = f"{v}" + (f"\\nstate={state}" if state != 0 else "")
        lines.append(f'  "{v}" [shape=ellipse, label="{label}"];')
    for p in system.network.processors:
        for name, v in sorted(
            system.network.neighbors_of_processor(p).items(), key=lambda kv: repr(kv)
        ):
            lines.append(f'  "{p}" -- "{v}" [label="{name}"];')
    lines.append("}")
    return "\n".join(lines)
