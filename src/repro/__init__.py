"""repro: a reproduction of Johnson & Schneider,
"Symmetry and Similarity in Distributed Systems" (PODC 1985).

The package is organized as:

* :mod:`repro.core` -- the theory: systems, similarity labelings
  (Algorithm 1), graph symmetry, mimicry, families, selection decisions
  (Theorems 1-11).
* :mod:`repro.runtime` -- a step-level simulator for the paper's
  execution model (instruction sets S, L, L2, Q; schedules; traces).
* :mod:`repro.algorithms` -- the distributed algorithms as runnable
  programs: Algorithms 2-4 and SELECT, with their alibi machinery.
* :mod:`repro.topologies` -- builders and the paper's Figures 1-5.
* :mod:`repro.messaging` -- Section 6's message-passing and CSP models.
* :mod:`repro.randomized` -- Section 8's randomized symmetry breaking.
* :mod:`repro.baselines` -- comparison algorithms (deterministic DP',
  Chandy-Misra encapsulated asymmetry, Chang-Roberts with ids).
* :mod:`repro.analysis` -- the Theorem-1/FLP adversary and reporting.

Quickstart::

    from repro.core import System, InstructionSet, similarity_labeling, decide_selection
    from repro.topologies import ring

    system = System(ring(5), {"p0": 1}, InstructionSet.Q)
    theta = similarity_labeling(system)     # Algorithm 1
    decision = decide_selection(system)     # Theorems 2/3/6
"""

__version__ = "1.0.0"

from . import (
    algorithms,
    analysis,
    applications,
    baselines,
    core,
    messaging,
    randomized,
    runtime,
    topologies,
)

__all__ = [
    "algorithms",
    "analysis",
    "applications",
    "baselines",
    "core",
    "messaging",
    "randomized",
    "runtime",
    "topologies",
    "__version__",
]
