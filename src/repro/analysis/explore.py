"""Symmetry-reduced bounded exhaustive exploration of schedule space.

The runtime's schedulers pick *one* schedule per run; Theorem-style
claims quantify over *all* of them.  This module closes that gap with a
bounded model checker over the tree of scheduler choices: starting from
the initial configuration it enumerates, at every step, every eligible
processor (optionally restricted to prefixes of k-bounded schedules),
deduplicates visited configurations, checks invariants, and reports
either a *certificate* ("no violation is reachable within ``max_depth``
steps") or a *counterexample schedule* that replays byte-for-byte
through :class:`~repro.runtime.scheduler.ReplayScheduler` and the
:mod:`repro.obs` trace/replay loop.

**Symmetry reduction.**  The paper's programs are anonymous and
deterministic, so every automorphism ``σ`` of the system graph commutes
with the step relation: if ``c`` steps to ``c'`` under processor ``p``,
then ``σ·c`` steps to ``σ·c'`` under ``σ(p)``.  Configurations in one
orbit therefore have isomorphic futures, and the explorer deduplicates
by an exact Θ-orbit canonical *byte key*
(:class:`~repro.core.orbits.StabilizerChainCanonicalizer` over the
:mod:`repro.core.encoding` layer — a Schreier–Sims minimal-image search,
no enumeration cap), typically visiting a small fraction of the
unreduced space on symmetric families (rings, dining philosophers) while
returning the *identical verdict* — the built-in invariants (deadlock,
livelock, mutual exclusion, Θ-class lockstep) are all preserved by
automorphisms.  ``symmetry=False`` falls back to exact configurations
(the encoder's identity key).

**Determinism and sharding.**  BFS enqueues children in system processor
order, so discovery order is globally sorted by ``(depth, prefix)`` and
the first violation found is the lexicographically least counterexample.
Parallel runs are *level-synchronous*: a serial trunk explores to
``split_depth``, then each deeper BFS level fans its frontier out across
a ``ProcessPoolExecutor`` in fixed-size chunks.  Workers build their
scenario/canonicalizer context **once** (pool initializer, not per
task), the level's frontier is published through one
:class:`~multiprocessing.managers.SharedMemoryManager` block that every
worker attaches instead of receiving pickled payloads, and workers
reconstruct states by replaying schedule prefixes against a shared-path
cache (consecutive frontier entries share all but their last steps).
The parent merges chunk results in frontier order and owns the visited
set, so every state is expanded by exactly one worker exactly once —
parallel total work equals serial total work, unlike subtree sharding
whose overlapping shard subtrees multiply it.  Chunking is independent
of the worker count and the serial path walks the identical
trunk/level/chunk structure, so a sharded run reports the same verdict,
states and — after the bounded canonicalization re-search — the same
counterexample as the serial one, on any worker count and under any
``PYTHONHASHSEED``.  Finished levels stream to a JSONL checkpoint and
are not re-run on resume.

CLI: ``python -m repro explore --topology dining --size 5 ...`` and
``python -m repro bench-explore`` (``BENCH_explore.json``).
"""

from __future__ import annotations

import json
import os
import struct
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from hashlib import blake2b
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.encoding import StateEncoder
from ..core.names import NodeId
from ..core.orbits import StabilizerChainCanonicalizer
from ..core.similarity import processor_similarity_classes
from ..exceptions import ExploreError
from ..io import system_to_dict
from ..obs.scenarios import ScenarioBundle, build_scenario, normalize_spec
from ..obs.trace_io import TraceWriter
from ..runtime.executor import Executor
from ..runtime.scheduler import ReplayScheduler

_STRATEGIES = ("bfs", "dfs")
_FAIRNESS = ("none", "fair", "k-bounded")

#: Window-phase suffix for k-bounded keys (see :meth:`_Walker._key`).
_PHASE = struct.Struct(">I")

_DIGEST_SIZE = 16


def _digest(key: bytes) -> bytes:
    """A 128-bit stable digest of a state key: what visited sets, shard
    skip tables and reports store instead of the full key."""
    return blake2b(key, digest_size=_DIGEST_SIZE).digest()


# ----------------------------------------------------------------------
# invariant / probe / progress registries
# ----------------------------------------------------------------------
#
# Registries are keyed by name so specifications stay plain data (JSON
# checkpoints, pickle payloads).  Each entry is a factory
# ``(spec, bundle) -> check`` where ``check(executor, counts)`` returns a
# human-readable detail string on a hit and None otherwise.  Every
# registered check must be preserved by system automorphisms, or
# symmetry reduction would be unsound for it; live callables that cannot
# promise this can still be passed to :func:`run_explore` as
# ``extra_invariants`` / ``extra_probes`` (serial runs only).


def _eating_predicate(bundle: ScenarioBundle) -> Callable[[Any], bool]:
    is_eating = getattr(bundle.program, "is_eating", None)
    if is_eating is None:
        raise ExploreError(
            f"program {type(bundle.program).__name__} has no is_eating "
            "predicate; 'exclusion'/'eating' need a dining program"
        )
    return is_eating


def _exclusion_invariant(spec: "ExploreSpec", bundle: ScenarioBundle):
    """No two processors sharing a variable may eat simultaneously."""
    from ..topologies.dining import adjacent_pairs

    is_eating = _eating_predicate(bundle)
    pairs = adjacent_pairs(bundle.system)

    def check(executor: Executor, counts) -> Optional[str]:
        for a, b in pairs:
            if is_eating(executor.local[a]) and is_eating(executor.local[b]):
                return f"{a} and {b} eat simultaneously while sharing a fork"
        return None

    return check


def _lockstep_invariant(spec: "ExploreSpec", bundle: ScenarioBundle):
    """Θ-classes must be state-uniform whenever all step counts agree.

    Theorem 4 promises lockstep for *class* round robins -- the members
    of each Θ-class run back to back.  Under ``fairness="k-bounded"``
    with ``k`` equal to the processor count every window of ``k`` steps
    is a permutation round, so every balanced point (all step counts
    equal) is a round boundary; when the whole system is ONE Θ-class,
    every permutation round is a class round robin in some member order
    and the invariant can never legitimately fire.  With several
    classes, a permutation round that wedges a dissimilar processor
    *between* two class members can split their observations of shared
    variables, so a violation there marks the boundary of the theorem,
    not a bug (see ``test_permutation_rounds_can_split_interleaved_
    classes``).  Under looser fairness even round boundaries are lost
    (``p0 p0 p1 p1`` is balanced but its first "round" runs ``p0``
    twice) -- pair this invariant with the k-bounded restriction.
    """
    classes = [
        tuple(sorted(cls, key=repr))
        for cls in processor_similarity_classes(bundle.system)
    ]
    classes = [cls for cls in classes if len(cls) > 1]

    def check(executor: Executor, counts) -> Optional[str]:
        if counts is None or len(set(counts)) != 1:
            return None
        for cls in classes:
            states = {executor.local[p] for p in cls}
            if len(states) > 1:
                members = ", ".join(str(p) for p in cls)
                return (
                    f"Θ-class {{{members}}} holds {len(states)} distinct "
                    f"states after {counts[0]} balanced steps each"
                )
        return None

    check.needs_counts = True
    return check


def _uniform_probe(spec: "ExploreSpec", bundle: ScenarioBundle):
    """Hit when every processor holds one shared local state."""
    procs = bundle.system.processors

    def probe(executor: Executor, counts) -> Optional[str]:
        states = {executor.local[p] for p in procs}
        if len(states) == 1:
            return f"all processors share state {next(iter(states))!r}"
        return None

    return probe


def _selected_probe(spec: "ExploreSpec", bundle: ScenarioBundle):
    """Hit when some processor's state satisfies ``is_selected``."""

    def probe(executor: Executor, counts) -> Optional[str]:
        chosen = executor.selected_processors()
        if chosen:
            return "selected: " + ", ".join(str(p) for p in chosen)
        return None

    return probe


def _eating_progress(spec: "ExploreSpec", bundle: ScenarioBundle):
    is_eating = _eating_predicate(bundle)
    procs = bundle.system.processors

    def progress(executor: Executor) -> bool:
        return any(is_eating(executor.local[p]) for p in procs)

    return progress


def _selected_progress(spec: "ExploreSpec", bundle: ScenarioBundle):
    def progress(executor: Executor) -> bool:
        return bool(executor.selected_processors())

    return progress


INVARIANTS: Dict[str, Callable] = {
    "exclusion": _exclusion_invariant,
    "lockstep": _lockstep_invariant,
}

PROBES: Dict[str, Callable] = {
    "uniform": _uniform_probe,
    "selected": _selected_probe,
}

PROGRESS: Dict[str, Callable] = {
    "eating": _eating_progress,
    "selected": _selected_progress,
}


# ----------------------------------------------------------------------
# specification and result types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    """A counterexample: what failed, and the schedule prefix reaching it.

    ``schedule`` is the sequence of ``str(processor)`` choices from the
    initial configuration; replaying it through
    :class:`~repro.runtime.scheduler.ReplayScheduler` reproduces the
    violating configuration exactly.
    """

    kind: str  # "deadlock" | "livelock" | "invariant"
    invariant: str
    depth: int
    schedule: Tuple[str, ...]
    detail: str

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "invariant": self.invariant,
            "depth": self.depth,
            "schedule": list(self.schedule),
            "detail": self.detail,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "Violation":
        return cls(
            kind=doc["kind"],
            invariant=doc["invariant"],
            depth=int(doc["depth"]),
            schedule=tuple(doc["schedule"]),
            detail=doc["detail"],
        )


@dataclass(frozen=True)
class ExploreSpec:
    """The full specification of one bounded exploration.

    Attributes:
        scenario: a shared-variable scenario spec
            (:func:`repro.obs.scenarios.normalize_spec` vocabulary); the
            scheduler entry only matters for the fallback of replayed
            counterexamples — exploration enumerates choices itself.
        max_depth: schedule prefixes up to this length are explored.
        strategy: ``"bfs"`` (canonical counterexamples, sharding) or
            ``"dfs"`` (needed for livelock detection).
        fairness: ``"none"``, ``"fair"`` or ``"k-bounded"``.  Every
            finite prefix extends to a fair schedule, so ``"fair"``
            prunes nothing over a bounded horizon (it is accepted for
            explicitness); ``"k-bounded"`` restricts enumeration to
            prefixes of k-bounded schedules, where *every* processor —
            halted ones take no-op slots — must appear in every window
            of ``k`` consecutive choices.
        k: the window for ``"k-bounded"`` fairness.
        symmetry: deduplicate by Θ-orbit canonical form instead of exact
            configuration.
        invariants: names from :data:`INVARIANTS` checked at every
            visited configuration.
        probes: names from :data:`PROBES`; hits are recorded (up to
            ``probe_limit``) without stopping the search.
        check_deadlock: report a configuration as deadlocked when no
            processor can run, or when every eligible step leaves the
            configuration unchanged (circular wait).  Note that a system
            whose processors all *halt* normally is reported as a
            deadlock too — the detail string distinguishes the cases.
        check_livelock: detect cycles without progress (DFS only; needs
            ``progress``).  Sound but not complete: visited-state
            pruning can hide cycles, so absence of a report is not a
            livelock-freedom certificate.
        progress: name from :data:`PROGRESS` defining what "progress"
            means for livelock detection.
        restrict: explore exactly one schedule (a tuple of
            ``str(processor)`` choices) instead of branching — the
            degenerate mode used to cross-check single-run analyses and
            to verify counterexamples.  Deduplication is disabled, since
            a position in a fixed schedule determines its future.
        split_depth: serial trunk depth before sharding; ``0`` disables
            sharding.  Forced to 0 for DFS, livelock and restricted
            runs.
        probe_limit: cap on recorded probe hits.
        symmetry_limit: retained for spec/checkpoint compatibility; the
            stabilizer-chain canonicalizer is exact without enumerating
            the group, so no cap is applied any more.
    """

    scenario: Dict[str, Any]
    max_depth: int
    strategy: str = "bfs"
    fairness: str = "none"
    k: Optional[int] = None
    symmetry: bool = True
    invariants: Tuple[str, ...] = ()
    probes: Tuple[str, ...] = ()
    check_deadlock: bool = True
    check_livelock: bool = False
    progress: Optional[str] = None
    restrict: Optional[Tuple[str, ...]] = None
    split_depth: int = 2
    probe_limit: int = 32
    symmetry_limit: int = 2000

    def __post_init__(self) -> None:
        doc = normalize_spec(dict(self.scenario))
        if doc["crash_at"]:
            raise ExploreError(
                "exploration does not model crashes; drop crash_at from "
                "the scenario (a crashed processor is just one the "
                "explored schedules stop choosing)"
            )
        object.__setattr__(self, "scenario", doc)
        if self.strategy not in _STRATEGIES:
            raise ExploreError(
                f"unknown strategy {self.strategy!r}; pick from {_STRATEGIES}"
            )
        if self.fairness not in _FAIRNESS:
            raise ExploreError(
                f"unknown fairness {self.fairness!r}; pick from {_FAIRNESS}"
            )
        if self.fairness == "k-bounded":
            if self.k is None or int(self.k) < 1:
                raise ExploreError("k-bounded fairness needs k >= 1")
            object.__setattr__(self, "k", int(self.k))
        elif self.k is not None:
            raise ExploreError("k is only meaningful with fairness='k-bounded'")
        if self.max_depth < 0:
            raise ExploreError("max_depth must be >= 0")
        if self.split_depth < 0:
            raise ExploreError("split_depth must be >= 0")
        if self.probe_limit < 0:
            raise ExploreError("probe_limit must be >= 0")
        object.__setattr__(self, "invariants", tuple(self.invariants))
        object.__setattr__(self, "probes", tuple(self.probes))
        for name in self.invariants:
            if name not in INVARIANTS:
                raise ExploreError(
                    f"unknown invariant {name!r}; pick from {sorted(INVARIANTS)}"
                )
        for name in self.probes:
            if name not in PROBES:
                raise ExploreError(
                    f"unknown probe {name!r}; pick from {sorted(PROBES)}"
                )
        if self.progress is not None and self.progress not in PROGRESS:
            raise ExploreError(
                f"unknown progress predicate {self.progress!r}; "
                f"pick from {sorted(PROGRESS)}"
            )
        if self.check_livelock:
            if self.strategy != "dfs":
                raise ExploreError("check_livelock needs strategy='dfs'")
            if self.progress is None:
                raise ExploreError(
                    "check_livelock needs a progress predicate "
                    f"(pick from {sorted(PROGRESS)})"
                )
            if self.restrict is not None:
                raise ExploreError("check_livelock cannot combine with restrict")
        if self.restrict is not None:
            object.__setattr__(
                self, "restrict", tuple(str(p) for p in self.restrict)
            )

    def to_json(self) -> dict:
        return {
            "scenario": dict(self.scenario),
            "max_depth": self.max_depth,
            "strategy": self.strategy,
            "fairness": self.fairness,
            "k": self.k,
            "symmetry": self.symmetry,
            "invariants": list(self.invariants),
            "probes": list(self.probes),
            "check_deadlock": self.check_deadlock,
            "check_livelock": self.check_livelock,
            "progress": self.progress,
            "restrict": None if self.restrict is None else list(self.restrict),
            "split_depth": self.split_depth,
            "probe_limit": self.probe_limit,
            "symmetry_limit": self.symmetry_limit,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "ExploreSpec":
        doc = dict(doc)
        for key in ("invariants", "probes"):
            doc[key] = tuple(doc.get(key, ()))
        restrict = doc.get("restrict")
        doc["restrict"] = None if restrict is None else tuple(restrict)
        return cls(**doc)


@dataclass
class ExploreStats:
    """Counters of one exploration (summed across trunk and shards)."""

    visited: int = 0
    expanded: int = 0
    transitions: int = 0

    def to_json(self) -> dict:
        return dict(self.__dict__)

    def merge(self, doc: dict) -> None:
        for key, value in doc.items():
            setattr(self, key, getattr(self, key) + value)


@dataclass
class ExploreResult:
    """Outcome of one :func:`run_explore` call.

    ``violation is None`` means the bounded space is *certified*: no
    deadlock / livelock / invariant violation is reachable within
    ``spec.max_depth`` schedule steps (under the spec's fairness
    restriction).  ``unique_states`` counts distinct visited state
    digests — orbit representatives when symmetry reduction is on;
    ``state_digests`` is the sorted list itself (canonical encoded-state
    digests, identical across worker counts and hash seeds — the CI
    determinism artifact behind ``explore --states-output``).
    """

    spec: ExploreSpec
    violation: Optional[Violation]
    unique_states: int
    stats: ExploreStats
    probe_hits: List[dict]
    shards: int
    resumed_shards: int
    workers: int
    elapsed: float
    group_size: int
    truncated: bool = False
    state_digests: Tuple[str, ...] = ()

    @property
    def verdict(self) -> str:
        return "certified" if self.violation is None else "violation"

    @property
    def certified_depth(self) -> Optional[int]:
        return self.spec.max_depth if self.violation is None else None

    def report_doc(self) -> dict:
        """A deterministic JSON document: identical across worker counts
        and ``PYTHONHASHSEED`` values (no timings, no pool geometry)."""
        return {
            "kind": "explore-report",
            "spec": self.spec.to_json(),
            "verdict": self.verdict,
            "violation": None if self.violation is None else self.violation.to_json(),
            "unique_states": self.unique_states,
            "stats": self.stats.to_json(),
            "probe_hits": self.probe_hits,
            "shards": self.shards,
            "group_size": self.group_size,
        }

    def describe(self) -> str:
        if self.violation is not None:
            v = self.violation
            what = {
                "deadlock": "deadlock",
                "livelock": "livelock",
                "invariant": f"invariant {v.invariant!r} violated",
            }[v.kind]
            return (
                f"{what} at depth {v.depth} via "
                f"[{', '.join(v.schedule)}]: {v.detail}"
            )
        return (
            f"certified: no violation within {self.spec.max_depth} steps "
            f"({self.unique_states} distinct states, "
            f"automorphism group size {self.group_size})"
        )


# ----------------------------------------------------------------------
# the walker
# ----------------------------------------------------------------------


class _Checks:
    """Instantiated checks of one exploration, bound to one bundle."""

    def __init__(
        self,
        spec: ExploreSpec,
        bundle: ScenarioBundle,
        extra_invariants: Sequence[Callable] = (),
        extra_probes: Sequence[Callable] = (),
    ) -> None:
        self.invariants: List[Tuple[str, Callable]] = [
            (name, INVARIANTS[name](spec, bundle)) for name in spec.invariants
        ]
        for fn in extra_invariants:
            self.invariants.append((getattr(fn, "__name__", "extra"), fn))
        self.probes: List[Tuple[str, Callable]] = [
            (name, PROBES[name](spec, bundle)) for name in spec.probes
        ]
        for fn in extra_probes:
            self.probes.append((getattr(fn, "__name__", "extra"), fn))
        self.progress: Optional[Callable] = (
            PROGRESS[spec.progress](spec, bundle)
            if spec.progress is not None
            else None
        )
        self.needs_counts = any(
            getattr(fn, "needs_counts", False) for _name, fn in self.invariants
        )


class _KeyMaker:
    """State → byte key for one system: canonical under symmetry
    reduction, identity encoding otherwise.  Built once per process and
    shared by trunk and shard walkers.

    Under symmetry reduction the canonical key of a state is memoized by
    its *identity* key: the identity encoding determines the state
    exactly, so it determines the canonical image, and a memo hit skips
    the whole minimal-image search.  The memo is sound by construction
    and can be pre-seeded from a persistent store (``orbits`` namespace,
    keyed by the system fingerprint) so canonicalization work done by any
    earlier run — another process, another CLI invocation, the serving
    layer — is never repeated.  Freshly computed pairs are kept in
    ``fresh`` for the caller to persist.
    """

    def __init__(self, system, symmetry: bool) -> None:
        self.encoder = StateEncoder(system)
        self.canon: Optional[StabilizerChainCanonicalizer] = (
            StabilizerChainCanonicalizer(system, encoder=self.encoder)
            if symmetry
            else None
        )
        self.group_size = self.canon.group_size if self.canon is not None else 1
        self.truncated = False  # the chain is exact; nothing to truncate
        self.memo: Dict[bytes, bytes] = {}
        self.fresh: Dict[bytes, bytes] = {}
        self.memo_hits = 0
        self.memo_misses = 0

    def key(self, proc_part, var_part, vectors: Tuple) -> bytes:
        """The (canonical or identity) byte key of one state."""
        if self.canon is None:
            return self.encoder.identity_key(proc_part, var_part, vectors)
        ident = self.encoder.identity_key(proc_part, var_part, vectors)
        cached = self.memo.get(ident)
        if cached is not None:
            self.memo_hits += 1
            return cached
        self.memo_misses += 1
        key = self.canon.canonical_key(proc_part, var_part, vectors)
        self.memo[ident] = key
        self.fresh[ident] = key
        return key

    def seed_memo(self, pairs: Dict[bytes, bytes]) -> None:
        """Pre-load identity→canonical pairs (does not mark them fresh)."""
        self.memo.update(pairs)

    def drain_fresh(self) -> Dict[bytes, bytes]:
        """Pairs computed since the last drain (for persistence)."""
        fresh, self.fresh = self.fresh, {}
        return fresh


class _Node:
    """One node of the choice tree."""

    __slots__ = ("executor", "depth", "schedule", "ages", "counts", "key",
                 "digest", "children", "progress")

    def __init__(self, executor, depth, schedule, ages, counts) -> None:
        self.executor = executor
        self.depth = depth
        self.schedule = schedule  # tuple of NodeId choices from the root
        self.ages = ages          # per-processor steps since last scheduled
        self.counts = counts      # per-processor executed (non-noop) steps
        self.key = None           # canonical byte key
        self.digest = None        # 16-byte digest of the key
        self.children: Optional[List["_Node"]] = None
        self.progress = False


class _Walker:
    """BFS/DFS over the choice tree of one shard (or one level chunk)."""

    def __init__(
        self,
        spec: ExploreSpec,
        bundle: ScenarioBundle,
        keys: _KeyMaker,
        checks: _Checks,
    ) -> None:
        self.spec = spec
        self.bundle = bundle
        self.keys = keys
        self.checks = checks
        self.procs: Tuple[NodeId, ...] = tuple(bundle.system.processors)
        self.by_str = {str(p): p for p in self.procs}
        self.index = {p: i for i, p in enumerate(self.procs)}
        self.track_ages = spec.fairness == "k-bounded"
        self.track_counts = checks.needs_counts
        self.stats = ExploreStats()
        self.digests: Set[bytes] = set()
        self.seen_digests: Set[bytes] = set()  # dedup set incl. frontier
        self.probe_hits: List[dict] = []
        self.violation: Optional[Violation] = None

    # -- node construction ---------------------------------------------

    def _root_light(self) -> _Node:
        executor = Executor(
            self.bundle.system, self.bundle.program, self.bundle.base_scheduler
        )
        n = len(self.procs)
        return _Node(
            executor,
            0,
            (),
            (1,) * n if self.track_ages else None,
            (0,) * n if self.track_counts else None,
        )

    def _root_node(self, prefix: Sequence[str]) -> _Node:
        node = self._root_light()
        node.key = self._key(node)
        node.digest = _digest(node.key)
        for p_str in prefix:
            try:
                proc = self.by_str[p_str]
            except KeyError:
                raise ExploreError(
                    f"schedule prefix names unknown processor {p_str!r}"
                ) from None
            node = self._child(node, proc, node.executor.successor(proc))
        return node

    def _step_light(self, node: _Node, proc: NodeId, twin: Executor) -> _Node:
        """The successor node *without* its canonical key — replaying a
        schedule prefix only needs the endpoint's key."""
        i = self.index[proc]
        ages = node.ages
        if ages is not None:
            ages = tuple(1 if j == i else a + 1 for j, a in enumerate(ages))
        counts = node.counts
        if counts is not None and not node.executor.halted[proc]:
            counts = tuple(c + 1 if j == i else c for j, c in enumerate(counts))
        return _Node(twin, node.depth + 1, node.schedule + (proc,), ages, counts)

    def _child(self, node: _Node, proc: NodeId, twin: Executor) -> _Node:
        child = self._step_light(node, proc, twin)
        child.key = self._key(child)
        child.digest = _digest(child.key)
        return child

    def _key(self, node: _Node) -> bytes:
        proc_part, var_part = node.executor.exploration_state()
        vectors: List[Tuple] = []
        if node.ages is not None:
            vectors.append(node.ages)
        if node.counts is not None:
            vectors.append(node.counts)
        key = self.keys.key(proc_part, var_part, tuple(vectors))
        if self.spec.k is not None:
            # States inside an incomplete first window are not mergeable
            # with window-active ones: the schedule-position phase is
            # part of a state's future under the k-bounded restriction.
            return key + _PHASE.pack(min(node.depth, self.spec.k - 1))
        return key

    # -- choice enumeration --------------------------------------------

    def _choices(self, node: _Node) -> Tuple[NodeId, ...]:
        spec = self.spec
        if spec.restrict is not None:
            if node.depth < len(spec.restrict):
                return (self.by_str[spec.restrict[node.depth]],)
            return ()
        if self.track_ages:
            # An age of k means the processor must be scheduled *now* or
            # some window of k choices misses it.  Valid prefixes keep
            # every age <= k, so at most one processor can be overdue
            # per parent (ages are pairwise distinct among the overdue
            # candidates' increments); two overdue means a dead branch.
            k = spec.k
            overdue = [p for p, a in zip(self.procs, node.ages) if a >= k]
            if not overdue:
                return self.procs
            if len(overdue) == 1:
                return (overdue[0],)
            return ()
        return node.executor.eligible_processors()

    # -- visiting ------------------------------------------------------

    def _visit(self, node: _Node) -> Optional[Violation]:
        """Check a newly discovered node and materialize its children.

        All checks happen at *discovery* time, so BFS reports the
        ``(depth, prefix)``-least violation and deadlock is detected at
        ``max_depth`` leaves too (successors are computed, not enqueued).
        """
        spec = self.spec
        checks = self.checks
        executor = node.executor
        self.stats.visited += 1
        self.digests.add(node.digest)
        schedule = tuple(str(p) for p in node.schedule)
        if checks.progress is not None:
            node.progress = checks.progress(executor)
        for name, fn in checks.probes:
            if len(self.probe_hits) >= spec.probe_limit:
                break
            detail = fn(executor, node.counts)
            if detail:
                self.probe_hits.append(
                    {
                        "probe": name,
                        "depth": node.depth,
                        "schedule": list(schedule),
                        "detail": detail,
                    }
                )
        for name, fn in checks.invariants:
            detail = fn(executor, node.counts)
            if detail:
                node.children = []
                return Violation("invariant", name, node.depth, schedule, detail)

        runnable = executor.eligible_processors()
        if spec.check_deadlock and not runnable:
            node.children = []
            return Violation(
                "deadlock", "", node.depth, schedule,
                "every processor has halted; no step is possible",
            )
        choices = self._choices(node) if node.depth < spec.max_depth else ()
        to_expand = set(choices)
        if spec.check_deadlock:
            to_expand.update(runnable)
        successors: Dict[NodeId, Executor] = {}
        if to_expand:
            self.stats.expanded += 1
            for proc in self.procs:
                if proc in to_expand:
                    successors[proc] = executor.successor(proc)
                    self.stats.transitions += 1
        if spec.check_deadlock and runnable:
            before = executor.exploration_state()
            if all(
                successors[p].exploration_state() == before for p in runnable
            ):
                node.children = []
                return Violation(
                    "deadlock", "", node.depth, schedule,
                    "no eligible step changes the configuration "
                    f"(circular wait among {len(runnable)} processors)",
                )
        node.children = [
            self._child(node, proc, successors[proc]) for proc in choices
        ]
        return None

    # -- traversals ----------------------------------------------------

    def run_bfs(
        self, prefix: Sequence[str], collect_at: Optional[int] = None
    ) -> List[Tuple[Tuple[str, ...], bytes]]:
        """BFS from ``prefix``.  With ``collect_at`` set, children at that
        depth are not visited; their (deduplicated, discovery-ordered)
        ``(schedule, digest)`` pairs are returned as the first parallel
        frontier."""
        spec = self.spec
        dedup = spec.restrict is None
        root = self._root_node(prefix)
        visited = {root.digest} if dedup else None
        frontier: List[Tuple[Tuple[str, ...], bytes]] = []
        queue = deque([root])
        while queue:
            node = queue.popleft()
            violation = self._visit(node)
            if violation is not None:
                self.violation = violation
                return frontier
            children = node.children or []
            node.children = None
            node.executor = None  # free: children carry their own clones
            for child in children:
                if dedup:
                    if child.digest in visited:
                        continue
                    visited.add(child.digest)
                if collect_at is not None and child.depth >= collect_at:
                    frontier.append(
                        (tuple(str(p) for p in child.schedule), child.digest)
                    )
                    continue
                queue.append(child)
        if dedup:
            self.seen_digests = visited
        return frontier

    def run_dfs(self, prefix: Sequence[str]) -> None:
        """DFS from ``prefix``; detects no-progress cycles when asked.

        A state is re-expanded when reached at a strictly smaller depth
        than before (more remaining budget), so bounded-depth coverage
        matches BFS.  A child closing a cycle back onto the current path
        with no progress flag anywhere in the looped segment is a
        livelock lasso.
        """
        spec = self.spec
        dedup = spec.restrict is None
        livelock = spec.check_livelock
        root = self._root_node(prefix)
        visited: Dict[bytes, int] = {root.digest: root.depth} if dedup else None
        violation = self._visit(root)
        if violation is not None:
            self.violation = violation
            return
        path: List[_Node] = [root]
        on_path: Dict[bytes, int] = {root.digest: 0}
        stack: List[Tuple[_Node, Iterator[_Node]]] = [
            (root, iter(root.children or []))
        ]
        while stack:
            node, children = stack[-1]
            child = next(children, None)
            if child is None:
                stack.pop()
                if livelock:
                    popped = path.pop()
                    on_path.pop(popped.digest, None)
                continue
            if livelock and child.digest in on_path:
                start = on_path[child.digest]
                segment = path[start:]
                if not any(n.progress for n in segment):
                    self.violation = Violation(
                        "livelock", "",
                        child.depth,
                        tuple(str(p) for p in child.schedule),
                        f"schedule loops back to the state at depth "
                        f"{segment[0].depth} (cycle length "
                        f"{child.depth - segment[0].depth}) with no progress",
                    )
                    return
                continue
            if dedup:
                prev = visited.get(child.digest)
                if prev is not None and prev <= child.depth:
                    continue
                visited[child.digest] = child.depth
            violation = self._visit(child)
            if violation is not None:
                self.violation = violation
                return
            if child.children:
                if livelock:
                    on_path[child.digest] = len(path)
                    path.append(child)
                stack.append((child, iter(child.children)))

    # -- level-synchronous expansion -----------------------------------

    def expand_chunk(self, entries: Sequence[Sequence]) -> dict:
        """Visit one chunk of a BFS level's frontier.

        Each entry is ``[schedule, digest-hex]``; the state is rebuilt by
        replaying the schedule from the root.  Consecutive frontier
        entries are in BFS discovery order and share long common
        prefixes, so a path cache (``path[d]`` = the replayed node after
        ``d`` steps) turns replay into "pop the divergent suffix, step
        the new one".  The digest comes from the parent (it was computed
        when this state was discovered as a child), so no canonical key
        is recomputed for the frontier state itself — only its children
        get fresh keys.

        Returns per-state results (violation + ``(choice, digest)`` child
        pairs) plus this chunk's probe hits and stats; stops at the first
        violating state, mirroring what a serial walk would visit.
        """
        states: List[dict] = []
        path: List[_Node] = []
        for sched, dhex in entries:
            prefix = tuple(sched)
            common = 0
            limit = min(len(prefix), len(path) - 1) if path else 0
            while (
                common < limit
                and str(path[common + 1].schedule[common]) == prefix[common]
            ):
                common += 1
            if not path:
                path = [self._root_light()]
            del path[common + 1:]
            node = path[common]
            for p_str in prefix[common:]:
                try:
                    proc = self.by_str[p_str]
                except KeyError:
                    raise ExploreError(
                        f"frontier schedule names unknown processor {p_str!r}"
                    ) from None
                node = self._step_light(
                    node, proc, node.executor.successor(proc)
                )
                path.append(node)
            node.digest = bytes.fromhex(dhex)
            violation = self._visit(node)
            children = node.children or []
            node.children = None
            states.append(
                {
                    "violation": None
                    if violation is None
                    else violation.to_json(),
                    "children": [
                        [str(c.schedule[-1]), c.digest.hex()] for c in children
                    ],
                }
            )
            if violation is not None:
                break
        return {
            "states": states,
            "probes": self.probe_hits,
            "stats": self.stats.to_json(),
        }


# ----------------------------------------------------------------------
# shards, levels, checkpoints, worker payloads
# ----------------------------------------------------------------------

#: Frontier states handed to one worker task.  Fixed — independent of
#: the worker count — so the chunk structure (and with it probe caps and
#: per-chunk stats) is identical on every pool geometry.
_CHUNK = 32


def _chunk_spans(count: int) -> List[Tuple[int, int]]:
    return [(i, min(i + _CHUNK, count)) for i in range(0, count, _CHUNK)]


def _explore_shard(
    spec: ExploreSpec,
    bundle: ScenarioBundle,
    keys: _KeyMaker,
    checks: _Checks,
    prefix: Tuple[str, ...],
) -> dict:
    """Exhaust one whole subtree serially (the ``split == 0`` path:
    DFS, livelock, restricted walks, and unsplit BFS)."""
    walker = _Walker(spec, bundle, keys, checks)
    if spec.strategy == "dfs":
        walker.run_dfs(prefix)
    else:
        walker.run_bfs(prefix)
    return {
        "violation": None if walker.violation is None else walker.violation.to_json(),
        "digests": sorted(d.hex() for d in walker.digests),
        "probes": walker.probe_hits,
        "stats": walker.stats.to_json(),
    }


#: Per-worker context: built once by :func:`_pool_init`, reused by every
#: level chunk the worker picks up (the scenario bundle and the
#: stabilizer chain are the expensive parts — rebuilding them per task
#: would dominate the task itself).
_WORKER: Dict[str, Any] = {}


def _pool_init(spec_doc: dict) -> None:
    """Pool-worker initializer: build the shared per-process context."""
    spec = ExploreSpec.from_json(spec_doc)
    bundle = build_scenario(spec.scenario)
    keys = _KeyMaker(bundle.system, spec.symmetry)
    checks = _Checks(spec, bundle)
    _WORKER.update(
        spec=spec, bundle=bundle, keys=keys, checks=checks, frontier={}
    )


def _run_level_chunk(shm_name: str, nbytes: int, start: int, end: int) -> dict:
    """Worker entry point for one frontier chunk.

    The level's whole frontier travels once per worker through a shared
    memory block (attached and JSON-decoded on first touch, cached under
    its block name for the level's remaining chunks); the pickled task
    payload is just ``(block, span)``.
    """
    w = _WORKER
    cache = w["frontier"]
    entries = cache.get(shm_name)
    if entries is None:
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(name=shm_name)
        try:
            blob = bytes(block.buf[:nbytes])
        finally:
            block.close()
        cache.clear()  # previous levels' frontiers are dead
        entries = json.loads(blob.decode("utf-8"))
        cache[shm_name] = entries
    walker = _Walker(w["spec"], w["bundle"], w["keys"], w["checks"])
    return walker.expand_chunk(entries[start:end])


def _json_normalize(doc):
    """A document as JSON round-trips it (tuples to lists, keys to str)."""
    return json.loads(json.dumps(doc, sort_keys=True))


def _load_checkpoint(
    path: str, spec: ExploreSpec
) -> Tuple[Dict[Tuple[str, ...], dict], Dict[int, dict]]:
    """Completed work recorded in ``path``: whole-subtree shards (keyed
    by schedule prefix) and finished BFS levels (keyed by depth)."""
    shards: Dict[Tuple[str, ...], dict] = {}
    levels: Dict[int, dict] = {}
    if not os.path.exists(path):
        return shards, levels
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ExploreError(
                    f"checkpoint {path}:{line_no} is not valid JSON: {exc}"
                ) from None
            if doc.get("kind") == "explore-checkpoint":
                # Compare in JSON-normalized space: tuple-valued spec
                # fields (scenario marks, restrict walks) survive as
                # tuples in memory but round-trip to lists on disk, and a
                # raw dict compare would falsely reject a valid resume.
                if _json_normalize(doc["spec"]) != _json_normalize(spec.to_json()):
                    raise ExploreError(
                        f"checkpoint {path} records a different exploration "
                        f"spec; delete it or change the spec"
                    )
            elif doc.get("kind") == "shard":
                shards[tuple(doc["shard"])] = doc["result"]
            elif doc.get("kind") == "level":
                levels[int(doc["depth"])] = doc["result"]
    return shards, levels


class _CheckpointWriter:
    """Appends completion lines to the checkpoint JSONL file."""

    def __init__(self, path: str, spec: ExploreSpec, fresh: bool) -> None:
        self._fh = open(path, "a")
        if fresh:
            self._write({"kind": "explore-checkpoint", "spec": spec.to_json()})

    def _write(self, doc: dict) -> None:
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()

    def shard_done(self, prefix: Tuple[str, ...], result: dict) -> None:
        self._write({"kind": "shard", "shard": list(prefix), "result": result})

    def level_done(self, depth: int, result: dict) -> None:
        self._write({"kind": "level", "depth": depth, "result": result})

    def close(self) -> None:
        self._fh.close()


def _emit_progress(hub, shard: str, doc: dict, resumed: bool) -> None:
    if hub is None or not hub.active:
        return
    from ..obs.events import ExplorationProgress

    stats = doc["stats"]
    hub.emit(
        ExplorationProgress(
            shard=shard,
            visited=stats["visited"],
            expanded=stats["expanded"],
            transitions=stats["transitions"],
            violation=doc["violation"] is not None,
            resumed=resumed,
        )
    )


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------


def _merge_orbit_docs(existing: dict, new: dict) -> dict:
    """Store-level merge of two orbit-memo maps (plain union: both sides
    map identity keys to *the* canonical key, so agreement is free)."""
    merged = dict(existing.get("map", {}))
    merged.update(new.get("map", {}))
    return {"map": merged}


def _orbit_store_key(system) -> bytes:
    """The ``orbits``-namespace store key of one system: its content
    fingerprint (hash-seed independent, equal for equal systems)."""
    from ..perf.batch import system_fingerprint

    return bytes.fromhex(system_fingerprint(system))


def _load_orbit_memo(store, system, keys: _KeyMaker) -> int:
    """Seed ``keys`` from the persisted orbit memo; pairs loaded."""
    from ..store import NS_ORBITS

    store.register_merge(NS_ORBITS, _merge_orbit_docs)
    doc = store.get(NS_ORBITS, _orbit_store_key(system))
    if doc is None:
        return 0
    pairs = {
        bytes.fromhex(ident): bytes.fromhex(canon)
        for ident, canon in doc.get("map", {}).items()
    }
    keys.seed_memo(pairs)
    return len(pairs)


def _save_orbit_memo(store, system, keys: _KeyMaker) -> int:
    """Persist freshly computed identity→canonical pairs; pairs saved."""
    from ..store import NS_ORBITS

    fresh = keys.drain_fresh()
    if not fresh:
        return 0
    store.register_merge(NS_ORBITS, _merge_orbit_docs)
    store.put(
        NS_ORBITS,
        _orbit_store_key(system),
        {"map": {ident.hex(): canon.hex() for ident, canon in fresh.items()}},
    )
    store.flush()
    return len(fresh)


def _canonical_violation(
    spec: ExploreSpec,
    violation: Violation,
    extra_invariants: Sequence[Callable],
) -> Violation:
    """Normalize a found violation to the global ``(depth, prefix)``-least
    one via a bounded unreduced BFS re-search.

    Symmetry reduction, DFS order, and shard-local dedup can each make
    the *first found* violation depend on traversal mode; the bounded
    re-search (depth capped at the found violation's depth, so it always
    terminates and always finds something at least as shallow) makes the
    reported counterexample mode-independent.
    """
    base = replace(
        spec,
        symmetry=False,
        strategy="bfs",
        max_depth=violation.depth,
        check_livelock=False,
        progress=None,
        probes=(),
        split_depth=0,
    )
    result = run_explore(base, workers=0, extra_invariants=extra_invariants)
    return result.violation if result.violation is not None else violation


def run_explore(
    spec: ExploreSpec,
    workers: Optional[int] = None,
    checkpoint: Optional[str] = None,
    hub=None,
    extra_invariants: Sequence[Callable] = (),
    extra_probes: Sequence[Callable] = (),
    store=None,
) -> ExploreResult:
    """Explore the bounded schedule space of a scenario.

    Args:
        spec: the exploration specification.
        workers: process-pool size.  ``None`` picks ``min(4, cpu_count)``;
            ``0``/``1`` forces the serial in-process path.  Verdict and
            counterexample are identical on every worker count.
        checkpoint: optional JSONL path; completed shards are appended as
            they finish and are not re-run on resume (same spec only).
        hub: optional :class:`~repro.obs.events.EventHub` receiving
            ``ExplorationProgress`` per shard and ``InvariantViolated``
            for the merged verdict.
        extra_invariants / extra_probes: live ``(executor, counts) ->
            Optional[str]`` callables checked alongside the registered
            names.  They cannot cross the process-pool pickle boundary,
            so they force the serial path; an invariant may opt into
            per-processor step counts with a truthy ``needs_counts``
            attribute.
        store: optional persistent store — a
            :class:`~repro.store.ContentStore` or a directory path.  The
            parent's canonicalization memo is pre-seeded from the
            ``orbits`` namespace (keyed by the system fingerprint) and
            freshly computed identity→canonical pairs are persisted back,
            so repeated explorations of the same system skip the
            minimal-image searches entirely.  Pool workers keep their own
            in-process memos and do not consult the store (the parent's
            trunk plus merge already carries the bulk of repeat traffic);
            the verdict never depends on the store.

    Returns:
        An :class:`ExploreResult`; its :meth:`~ExploreResult.report_doc`
        is byte-stable across worker counts and hash seeds.
    """
    t0 = time.perf_counter()
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    if workers <= 1:
        workers = 0
    if (extra_invariants or extra_probes) and workers:
        raise ExploreError(
            "extra invariants/probes are live callables and cannot cross "
            "the process-pool boundary; run with workers<=1"
        )

    bundle = build_scenario(spec.scenario)
    n = len(bundle.system.processors)
    if spec.k is not None and spec.k < n:
        raise ExploreError(
            f"k={spec.k} is smaller than the {n} processors: every window "
            "of k choices must contain all of them, so no k-bounded "
            "schedule exists"
        )
    keys = _KeyMaker(bundle.system, spec.symmetry)
    checks = _Checks(spec, bundle, extra_invariants, extra_probes)
    if store is not None:
        if isinstance(store, str):
            from ..store import ContentStore

            store = ContentStore(store)
        if spec.symmetry:
            _load_orbit_memo(store, bundle.system, keys)

    # Level-synchronous fan-out needs BFS; DFS order, livelock cycles
    # and restricted single-schedule walks are whole-tree properties.
    if spec.restrict is not None or spec.check_livelock or spec.strategy == "dfs":
        split = 0
    else:
        split = min(spec.split_depth, spec.max_depth)

    completed_shards: Dict[Tuple[str, ...], dict] = {}
    completed_levels: Dict[int, dict] = {}
    writer: Optional[_CheckpointWriter] = None
    if checkpoint:
        completed_shards, completed_levels = _load_checkpoint(checkpoint, spec)
        writer = _CheckpointWriter(
            checkpoint, spec, fresh=not (completed_shards or completed_levels)
        )

    stats = ExploreStats()
    digests: Set[str] = set()
    hits: List[dict] = []
    violation: Optional[Violation] = None
    resumed = 0
    shards = 0

    try:
        if split == 0:
            workers = 0
            shards = 1
            if () in completed_shards:
                doc = completed_shards[()]
                resumed = 1
                _emit_progress(hub, "root", doc, resumed=True)
            else:
                doc = _explore_shard(spec, bundle, keys, checks, ())
                if writer:
                    writer.shard_done((), doc)
                _emit_progress(hub, "root", doc, resumed=False)
            stats.merge(doc["stats"])
            digests.update(doc["digests"])
            hits.extend(doc["probes"])
            if doc["violation"] is not None:
                violation = Violation.from_json(doc["violation"])
        else:
            # Serial trunk to the split depth; its violation (if any) is
            # strictly shallower than anything a level could report.
            trunk = _Walker(spec, bundle, keys, checks)
            frontier = trunk.run_bfs((), collect_at=split)
            stats.merge(trunk.stats.to_json())
            digests.update(d.hex() for d in trunk.digests)
            hits.extend(trunk.probe_hits)
            _emit_progress(
                hub,
                "trunk",
                {
                    "violation": None
                    if trunk.violation is None
                    else trunk.violation.to_json(),
                    "stats": trunk.stats.to_json(),
                },
                resumed=False,
            )
            if trunk.violation is not None:
                violation = trunk.violation
                frontier = []
            shards = len(frontier)
            # The parent owns deduplication: every digest ever admitted
            # to a frontier lands here, so each state is expanded by
            # exactly one chunk exactly once — parallel total work
            # equals serial total work.
            visited: Set[bytes] = set(trunk.seen_digests)

            smm = None
            pool = None
            if workers and frontier and not all(
                split + i in completed_levels
                for i in range(spec.max_depth - split + 1)
            ):
                from multiprocessing.managers import SharedMemoryManager

                smm = SharedMemoryManager()
                smm.start()
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_pool_init,
                    initargs=(spec.to_json(),),
                )
            else:
                workers = 0
            try:
                depth = split
                while frontier and violation is None:
                    if depth in completed_levels:
                        doc = completed_levels[depth]
                        resumed += 1
                        _emit_progress(hub, f"depth-{depth}", doc, resumed=True)
                    else:
                        chunks = _chunk_spans(len(frontier))
                        frontier_doc = [
                            [list(sched), digest.hex()]
                            for sched, digest in frontier
                        ]
                        if pool is None:
                            chunk_docs = []
                            for s, e in chunks:
                                walker = _Walker(spec, bundle, keys, checks)
                                cdoc = walker.expand_chunk(frontier_doc[s:e])
                                chunk_docs.append(cdoc)
                                if any(
                                    x["violation"] is not None
                                    for x in cdoc["states"]
                                ):
                                    break
                        else:
                            # Publish the frontier once per level; tasks
                            # carry only (block, span).
                            blob = json.dumps(frontier_doc).encode("utf-8")
                            block = smm.SharedMemory(size=len(blob))
                            block.buf[: len(blob)] = blob
                            chunk_docs = [
                                f.result()
                                for f in [
                                    pool.submit(
                                        _run_level_chunk,
                                        block.name,
                                        len(blob),
                                        s,
                                        e,
                                    )
                                    for s, e in chunks
                                ]
                            ]
                        # Merge chunks in frontier order; the first
                        # violation is the (depth, prefix)-least of the
                        # level, and later chunks are discarded exactly
                        # as a serial walk would never have run them.
                        lstats = ExploreStats()
                        lprobes: List[dict] = []
                        lviolation: Optional[dict] = None
                        expanded: List[str] = []
                        children: List[Tuple[Tuple[str, ...], str]] = []
                        for (s, _e), cdoc in zip(chunks, chunk_docs):
                            lstats.merge(cdoc["stats"])
                            lprobes.extend(cdoc["probes"])
                            for offset, sdoc in enumerate(cdoc["states"]):
                                sched, digest = frontier[s + offset]
                                expanded.append(digest.hex())
                                if sdoc["violation"] is not None:
                                    lviolation = sdoc["violation"]
                                    break
                                for p_str, chex in sdoc["children"]:
                                    children.append((sched + (p_str,), chex))
                            if lviolation is not None:
                                break
                        nxt: List[List] = []
                        if lviolation is None:
                            for sched, chex in children:
                                child_digest = bytes.fromhex(chex)
                                if child_digest in visited:
                                    continue
                                visited.add(child_digest)
                                nxt.append([list(sched), chex])
                        doc = {
                            "stats": lstats.to_json(),
                            "probes": lprobes,
                            "violation": lviolation,
                            "expanded": expanded,
                            "frontier": nxt,
                        }
                        if writer:
                            writer.level_done(depth, doc)
                        _emit_progress(
                            hub, f"depth-{depth}", doc, resumed=False
                        )
                    stats.merge(doc["stats"])
                    digests.update(doc["expanded"])
                    hits.extend(doc["probes"])
                    if doc["violation"] is not None:
                        violation = Violation.from_json(doc["violation"])
                        break
                    frontier = [
                        (tuple(sched), bytes.fromhex(dhex))
                        for sched, dhex in doc["frontier"]
                    ]
                    # No-op on a fresh level (dedup already updated it);
                    # rebuilds the set when replaying checkpointed ones.
                    visited.update(d for _, d in frontier)
                    depth += 1
            finally:
                if pool is not None:
                    pool.shutdown()
                if smm is not None:
                    smm.shutdown()
    finally:
        if writer:
            writer.close()
        if store is not None and spec.symmetry:
            _save_orbit_memo(store, bundle.system, keys)

    seen_hits: Set[str] = set()
    unique_hits: List[dict] = []
    for hit in sorted(
        hits, key=lambda h: (h["depth"], h["schedule"], h["probe"])
    ):
        fingerprint = json.dumps(hit, sort_keys=True)
        if fingerprint in seen_hits:
            continue
        seen_hits.add(fingerprint)
        unique_hits.append(hit)
    unique_hits = unique_hits[: spec.probe_limit]

    if (
        violation is not None
        and spec.restrict is None
        and violation.kind != "livelock"
        and (spec.symmetry or spec.strategy == "dfs" or split > 0)
    ):
        violation = _canonical_violation(spec, violation, extra_invariants)

    if violation is not None and hub is not None and hub.active:
        from ..obs.events import InvariantViolated

        hub.emit(
            InvariantViolated(
                violation_kind=violation.kind,
                invariant=violation.invariant,
                depth=violation.depth,
                schedule=",".join(violation.schedule),
                detail=violation.detail,
            )
        )

    return ExploreResult(
        spec=spec,
        violation=violation,
        unique_states=len(digests),
        stats=stats,
        probe_hits=unique_hits,
        shards=shards,
        resumed_shards=resumed,
        workers=workers,
        elapsed=time.perf_counter() - t0,
        group_size=keys.group_size,
        truncated=keys.truncated,
        state_digests=tuple(sorted(digests)),
    )


def explore_with_profiles(
    spec: ExploreSpec,
    profiler: Callable[[Executor], Any],
) -> Tuple[ExploreResult, List[Any]]:
    """Serial exploration that applies ``profiler`` to every visited
    orbit representative, returning ``(result, profiles)``.

    This is the parametric layer's channel into the walker: the
    profiler rides as an extra probe that records and never *hits*, so
    it sees every discovered state (violation states included) without
    touching ``probe_hits`` or the verdict.  ``spec.probes`` must be
    empty -- a registered probe could fill ``probe_limit`` and silence
    the collector mid-walk -- and the profile list preserves discovery
    order (one entry per unique state under the spec's dedup).
    """
    if spec.probes:
        raise ExploreError(
            "explore_with_profiles needs spec.probes=(): a registered "
            "probe hitting probe_limit would silence the profile collector"
        )
    if spec.probe_limit <= 0:
        raise ExploreError(
            "explore_with_profiles needs probe_limit > 0 so the collector "
            "probe is consulted at all"
        )
    profiles: List[Any] = []

    def _profile_collector(executor: Executor, counts) -> Optional[str]:
        profiles.append(profiler(executor))
        return None

    result = run_explore(spec, workers=0, extra_probes=(_profile_collector,))
    return result, profiles


# ----------------------------------------------------------------------
# counterexample traces
# ----------------------------------------------------------------------


def write_counterexample(
    result: ExploreResult, path: str, sample_every: Optional[int] = None
) -> Dict[str, Any]:
    """Replay the counterexample schedule into a ``"kind": "explore"``
    trace file that the obs replay loop can verify byte-for-byte.

    The header carries the scenario (under ``"run"``), the exploration
    spec, and the violation document, so
    :func:`repro.obs.replay.replay_trace` can both re-execute the
    schedule *and* re-establish that the final configuration violates
    what the explorer said it violates.
    """
    if result.violation is None:
        raise ExploreError(
            "no violation to write: the exploration certified the bounded space"
        )
    violation = result.violation
    spec = result.spec
    with open(path, "w", encoding="utf-8") as handle:
        writer = TraceWriter(handle)
        bundle = build_scenario(spec.scenario)
        by_str = {str(p): p for p in bundle.system.processors}
        try:
            prefix = [by_str[p] for p in violation.schedule]
        except KeyError as exc:
            raise ExploreError(
                f"counterexample schedule names unknown processor {exc}"
            ) from None
        executor = Executor(
            bundle.system, bundle.program, ReplayScheduler(prefix), sink=writer
        )
        if sample_every is None:
            sample_every = max(1, len(bundle.system.processors))
        header = {
            "kind": "explore",
            "run": dict(spec.scenario),
            "explore": spec.to_json(),
            "violation": violation.to_json(),
        }
        writer.write_header(
            header, system_to_dict(bundle.system), len(prefix), sample_every
        )
        writer.sample(executor)
        samples = 1
        for i in range(len(prefix)):
            executor.step()
            if (i + 1) % sample_every == 0:
                writer.sample(executor)
                samples += 1
        digest = writer.write_end(executor)
    return {
        "path": path,
        "steps": len(prefix),
        "samples": samples,
        "sample_every": sample_every,
        "final_digest": digest,
        "lines": writer.lines_written,
    }


def _verify_livelock(spec: ExploreSpec, violation: Violation) -> Optional[str]:
    """Re-walk a livelock lasso and confirm the loop and its stagnation."""
    bundle = build_scenario(spec.scenario)
    keys = _KeyMaker(bundle.system, spec.symmetry)
    checks = _Checks(spec, bundle)
    walker = _Walker(spec, bundle, keys, checks)
    node = walker._root_node(())
    keys = [node.key]
    flags = [checks.progress(node.executor) if checks.progress else False]
    for p_str in violation.schedule:
        proc = walker.by_str.get(p_str)
        if proc is None:
            return f"schedule names unknown processor {p_str!r}"
        node = walker._child(node, proc, node.executor.successor(proc))
        keys.append(node.key)
        flags.append(checks.progress(node.executor) if checks.progress else False)
    start = keys.index(keys[-1])
    if start == len(keys) - 1:
        return "the schedule closes no cycle: its final state is new"
    if any(flags[start:-1]):
        return "the looped segment makes progress; not a livelock"
    return None


def verify_counterexample(header: Dict[str, Any]) -> Optional[str]:
    """Independently re-establish a recorded counterexample.

    ``header`` is the scenario document of a ``"kind": "explore"`` trace
    (carrying ``explore`` and ``violation`` entries).  Deadlocks and
    invariant violations are re-checked by a restricted exploration that
    walks exactly the recorded schedule; livelocks by re-walking the
    lasso.  Returns None on success, or a human-readable mismatch.
    """
    try:
        spec = ExploreSpec.from_json(header["explore"])
        violation = Violation.from_json(header["violation"])
    except (KeyError, TypeError) as exc:
        return f"malformed explore header: {exc}"
    if violation.kind == "livelock":
        return _verify_livelock(spec, violation)
    check = replace(
        spec,
        restrict=violation.schedule,
        max_depth=violation.depth,
        symmetry=False,
        strategy="bfs",
        check_livelock=False,
        progress=None,
        probes=(),
        split_depth=0,
    )
    result = run_explore(check, workers=0)
    got = result.violation
    if got is None:
        return (
            f"replaying the schedule found no violation within depth "
            f"{violation.depth}"
        )
    if (got.kind, got.invariant, got.depth, got.schedule) != (
        violation.kind,
        violation.invariant,
        violation.depth,
        violation.schedule,
    ):
        return (
            f"replayed violation disagrees with the recorded one: "
            f"{got.to_json()!r} != {violation.to_json()!r}"
        )
    return None
