"""Theorem 1: the general-schedule adversary (and its FLP reading).

    "There is no selection algorithm for a system in S with general
    schedules."

The proof constructs, for any candidate program, a schedule violating the
specification: take a finite execution ``epsilon`` after which ``p``'s
next step would select it; because that step assigns a local flag (a read
or internal instruction), it changes no shared variable, so a ``p``-free
continuation ``rho`` that selects some ``q`` after ``epsilon`` still
behaves identically after ``epsilon . p`` -- and ``epsilon . p . rho``
selects both.  (The paper notes this subsumes the impossibility of
consensus with one faulty processor [FLP83]: a crash is a general
schedule in which the faulty processor appears only finitely often.)

We implement the adversary *constructively*: given any deterministic
finite-state program in S, :func:`refute_selection` produces either

* a **starvation witness** -- a schedule (typically one processor looping
  alone, which general schedules permit) whose configurations cycle
  without ever selecting anyone; pumped forever it never selects; or
* a **double-selection witness** -- a schedule prefix after which two
  processors are simultaneously selected, built exactly as in the proof
  and *verified by replay* (we do not assume the selecting step is
  shared-state-silent; we check the combined schedule really
  double-selects).

Theorem 1 guarantees every candidate falls to one of the two; the
benchmark runs a zoo of candidate programs and shows the adversary
defeats each.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from ..core.names import NodeId
from ..core.system import System
from ..runtime.executor import Executor
from ..runtime.program import Program
from ..runtime.scheduler import ReplayScheduler, RoundRobinScheduler


@dataclass(frozen=True)
class Refutation:
    """A schedule defeating a claimed selection algorithm.

    Attributes:
        kind: ``"double-selection"`` or ``"starvation"``.
        schedule: the violating finite schedule.  Double-selection: after
            replaying it, two processors are selected.  Starvation: its
            configurations close a selection-free cycle, so pumping it
            forever is a general schedule under which nobody is ever
            selected.
        selected: processors selected at the end of the schedule.
    """

    kind: str
    schedule: Tuple[NodeId, ...]
    selected: Tuple[NodeId, ...]


def _replay(system: System, program: Program, schedule: Tuple[NodeId, ...]) -> Executor:
    executor = Executor(
        system,
        program,
        ReplayScheduler(schedule, RoundRobinScheduler(system.processors)),
    )
    executor.run(len(schedule))
    return executor


def _selected(executor: Executor) -> FrozenSet[NodeId]:
    return frozenset(executor.selected_processors())


def _single_processor_starvation(
    system: System, program: Program, max_steps: int
) -> Optional[Refutation]:
    """Starve everyone but one processor -- legal under general schedules.

    If the lone processor's run cycles without any selection, pumping the
    cycle is an infinite selection-free schedule.
    """
    for p in system.processors:
        executor = Executor(
            system, program, ReplayScheduler((p,) * max_steps)
        )
        seen = {executor.configuration()}
        schedule: List[NodeId] = []
        starved = None
        for _ in range(max_steps):
            executor.step()
            schedule.append(p)
            if _selected(executor):
                break
            config = executor.configuration()
            if config in seen:
                starved = Refutation("starvation", tuple(schedule), ())
                break
            seen.add(config)
        if starved is not None:
            return starved
    return None


def refute_selection(
    system: System,
    program: Program,
    max_configs: int = 20_000,
    max_single_steps: int = 5_000,
) -> Optional[Refutation]:
    """Find a general-schedule violation of the selection specification.

    Tries the cheap starvation adversary first, then searches reachable
    configurations breadth-first for the proof's epsilon/p/rho
    construction.  Returns None only if the search bounds were exhausted
    (cannot happen for a finite-state program under large enough bounds,
    by Theorem 1).
    """
    starvation = _single_processor_starvation(system, program, max_single_steps)
    if starvation is not None:
        return starvation

    # BFS over configurations with executor forking (clone + step_as):
    # each edge costs one step instead of replaying the whole prefix.
    root = _replay(system, program, ())
    seen = {root.configuration()}
    queue: deque = deque([(root, ())])
    explored = 0
    while queue and explored < max_configs:
        base, schedule = queue.popleft()
        explored += 1
        base_selected = _selected(base)
        if len(base_selected) >= 2:
            return Refutation(
                "double-selection", tuple(schedule), tuple(sorted(base_selected, key=repr))
            )
        for p in system.processors:
            nxt = base.clone()
            nxt.step_as(p)
            extended = tuple(schedule) + (p,)
            nxt_selected = _selected(nxt)
            if p in nxt_selected and p not in base_selected:
                # p's step selects it; look for a p-free selecting
                # continuation of the *pre-step* configuration (the
                # epsilon of the proof), then verify the combination.
                rho = _find_selection_avoiding(
                    base, avoid=p, max_configs=max_configs
                )
                if rho is not None:
                    combined = extended + rho
                    final = _replay(system, program, combined)
                    final_selected = _selected(final)
                    if len(final_selected) >= 2:
                        return Refutation(
                            "double-selection",
                            combined,
                            tuple(sorted(final_selected, key=repr)),
                        )
            config = nxt.configuration()
            if config not in seen:
                seen.add(config)
                queue.append((nxt, extended))
    return None


def _find_selection_avoiding(
    base: Executor,
    avoid: NodeId,
    max_configs: int,
) -> Optional[Tuple[NodeId, ...]]:
    """A continuation of ``base``'s configuration avoiding ``avoid`` that
    selects someone (necessarily not ``avoid``), or None."""
    others = [p for p in base.system.processors if p != avoid]
    if not others:
        return None
    seen = {base.configuration()}
    queue: deque = deque([(base, ())])
    explored = 0
    while queue and explored < max_configs:
        executor, suffix = queue.popleft()
        explored += 1
        if _selected(executor) - {avoid}:
            return tuple(suffix)
        for p in others:
            nxt = executor.clone()
            nxt.step_as(p)
            config = nxt.configuration()
            if config in seen:
                # Selection states still matter even on revisits; check
                # before discarding.
                if _selected(nxt) - {avoid}:
                    return tuple(suffix) + (p,)
                continue
            seen.add(config)
            queue.append((nxt, tuple(suffix) + (p,)))
    return None


def crash_as_schedule(
    system: System, crashed: NodeId, steps_before_crash: int = 0
) -> List[NodeId]:
    """A general-schedule prefix modeling a crash of ``crashed``.

    The FLP reading: "a halting failure can be viewed as an infinite
    schedule where a faulty processor appears only a finite number of
    times".  The returned prefix gives the faulty processor its last few
    steps; extend it round-robin over the others forever.
    """
    prefix: List[NodeId] = []
    order = list(system.processors)
    i = 0
    while sum(1 for x in prefix if x == crashed) < steps_before_crash:
        prefix.append(order[i % len(order)])
        i += 1
    return prefix
