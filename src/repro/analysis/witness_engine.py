"""Sharded, cache-backed separation-witness sweep engine.

:func:`repro.analysis.witness_search.find_witnesses` regenerates the
paper's hierarchy separations by exhausting small systems.  The search
space grows as ``variables ** (processors * names)`` and every candidate
pays a selection decision under two models, so the serial loop tops out
around three processors.  This module turns the sweep into a production
job with the same observable behavior:

* **Sharding** -- the enumeration space is partitioned by
  *slot-assignment prefix*: each shard fixes the variable choices of the
  first one or two ``(processor, name)`` slots and exhausts the rest.
  Shards are independent, so they all fan out across a
  ``ProcessPoolExecutor`` at once (plain-data payloads across the pickle
  boundary — a task is just the shard key — with results merged in the
  parent).
* **Decision caching** -- ``decide_selection`` is an isomorphism
  invariant, so one decision settles an entire iso class.  The
  :class:`DecisionCache` buckets candidates by canonical form —
  byte-encoded via :func:`repro.core.encoding.encode_value`, so keys are
  compact, hash-seed independent and never depend on ``repr``
  formatting — and confirms membership with the exact
  :func:`are_isomorphic` matcher before reusing a decision; hits and
  misses are counted per lookup.  Pool workers build their cache *once*
  (a pool initializer seeds it from one shared-memory snapshot of the
  parent's cache) and keep it across every shard they pick up; each
  finished shard returns only its journal of *new* decisions, which the
  parent folds in and checkpoints — no per-wave snapshot/merge barriers.
* **Sharded dedup** -- the single unbounded ``seen`` dict of the serial
  loop is replaced by a hash-partitioned :class:`DedupIndex` whose
  partitions are dropped with their shard, plus a final cross-shard
  dedup pass over the (few) surviving witnesses.
* **Checkpointed streaming** -- each finished shard appends one JSONL
  line (records + decisions + counters) to an optional checkpoint file;
  an interrupted sweep resumes without re-deciding finished shards.
* **Deterministic output** -- shard results are merged in shard-plan
  order (a sorted merge on the shard index), which reproduces the serial
  enumeration order exactly: a sharded sweep returns the *identical*
  witness list as the serial one, on any worker count and under any
  ``PYTHONHASHSEED``.

Progress is observable: pass an :class:`~repro.obs.events.EventHub` and
the engine emits :class:`~repro.obs.events.WitnessSearchProgress` per
completed shard and :class:`~repro.obs.events.WitnessFound` per witness
in the final (deterministic) order.

CLI: ``python -m repro witness Q L --workers 4 --checkpoint sweep.jsonl``
and ``python -m repro bench-witness`` (``BENCH_witness.json``).
"""

from __future__ import annotations

import json
import os
import time
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.encoding import encode_value
from ..core.hierarchy import MODEL_AXIS
from ..core.network import Network
from ..core.quotient import are_isomorphic, canonical_form
from ..core.selection import decide_selection
from ..core.system import InstructionSet, ScheduleClass, System
from ..exceptions import WitnessSearchError

_MODEL_BY_NAME = {label: (iset, sched) for label, iset, sched in MODEL_AXIS}

#: A shard key: ``(n_processors, n_names, assignment_prefix)``.
ShardKey = Tuple[int, int, Tuple[int, ...]]


# ----------------------------------------------------------------------
# plain-data candidate descriptions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WitnessRecord:
    """A plain-data description of one enumerated candidate.

    Everything the sweep needs to rebuild the candidate deterministically
    (in any process, under any hash seed): the block dimensions, the
    slot-assignment tuple (variable index per ``(processor, name)`` slot
    in processor-major order) and the optionally marked node.  Records
    cross the pickle boundary and the JSONL checkpoint; systems are
    rebuilt from them on demand.
    """

    n_processors: int
    n_names: int
    assignment: Tuple[int, ...]
    mark: Optional[str] = None

    def network(self) -> Network:
        procs = [f"p{i}" for i in range(self.n_processors)]
        names = [f"n{i}" for i in range(self.n_names)]
        slots = [(p, n) for p in procs for n in names]
        edges: Dict[str, Dict[str, str]] = {p: {} for p in procs}
        for (p, n), v in zip(slots, self.assignment):
            edges[p][n] = f"v{v}"
        return Network(names, edges)

    def system(self, iset: InstructionSet, sched: ScheduleClass) -> System:
        state = {self.mark: 1} if self.mark is not None else {}
        return System(self.network(), state, iset, sched)

    def to_json(self) -> dict:
        return {
            "p": self.n_processors,
            "n": self.n_names,
            "a": list(self.assignment),
            "mark": self.mark,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "WitnessRecord":
        return cls(
            n_processors=doc["p"],
            n_names=doc["n"],
            assignment=tuple(doc["a"]),
            mark=doc["mark"],
        )


@dataclass(frozen=True)
class SweepSpec:
    """The full specification of one witness sweep.

    ``limit=None`` exhausts the bounded space; an integer stops the
    (merged, deduplicated) witness list at that many entries, matching
    the serial searcher's ``limit`` semantics exactly.
    """

    weaker: str
    stronger: str
    max_processors: int = 3
    max_names: int = 2
    max_variables: int = 3
    allow_marks: bool = False
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        for label in (self.weaker, self.stronger):
            if label not in _MODEL_BY_NAME:
                raise WitnessSearchError(
                    f"unknown model label {label!r}; pick from "
                    f"{sorted(_MODEL_BY_NAME)}"
                )

    @property
    def weak_model(self) -> Tuple[InstructionSet, ScheduleClass]:
        return _MODEL_BY_NAME[self.weaker]

    @property
    def strong_model(self) -> Tuple[InstructionSet, ScheduleClass]:
        return _MODEL_BY_NAME[self.stronger]

    def to_json(self) -> dict:
        return {
            "weaker": self.weaker,
            "stronger": self.stronger,
            "max_processors": self.max_processors,
            "max_names": self.max_names,
            "max_variables": self.max_variables,
            "allow_marks": self.allow_marks,
            "limit": self.limit,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "SweepSpec":
        return cls(**doc)


# ----------------------------------------------------------------------
# decision cache and dedup index
# ----------------------------------------------------------------------


def _candidate_form(probe: System) -> bytes:
    """The byte-encoded canonical form of a candidate: the cache/dedup
    key.  Encoded bytes are hash-seed independent and compare by content,
    not by how ``repr`` spells the nested form tuple."""
    return encode_value(canonical_form(probe))


def _form_to_wire(form) -> str:
    """Checkpoint/JSON representation of a form key.

    Byte keys are tagged explicitly (``"b:" + hex``) so the inverse
    never has to guess: an untagged wire string is, by construction, a
    legacy key from an older checkpoint.
    """
    return "b:" + form.hex() if isinstance(form, bytes) else str(form)


def _form_from_wire(wire: str):
    """Inverse of :func:`_form_to_wire`, tolerating both legacy shapes.

    * ``"b:<hex>"`` — the current tagged encoding of a byte key.
    * bare even-length hex — checkpoints from the first byte-encoded
      release, which wrote ``form.hex()`` untagged; decoded to bytes.
    * anything else — a pre-encoding ``repr``-string form, kept verbatim
      as its own bucket key.  Such entries never match new lookups,
      costing a cache miss, not correctness.

    The explicit tag is what makes this safe: without it, a repr-string
    key that *happened* to be even-length hex would be silently decoded
    into a bogus byte bucket and could never round-trip.
    """
    if wire.startswith("b:"):
        try:
            return bytes.fromhex(wire[2:])
        except ValueError:
            raise WitnessSearchError(
                f"malformed byte-form key {wire!r} (not hex after 'b:')"
            ) from None
    try:
        return bytes.fromhex(wire)
    except ValueError:
        return wire


class _CacheEntry:
    """One isomorphism class: a representative record plus its decisions."""

    __slots__ = ("form", "record", "decisions", "_system")

    def __init__(
        self,
        form,
        record: WitnessRecord,
        decisions: Optional[Dict[str, bool]] = None,
    ) -> None:
        self.form = form
        self.record = record
        self.decisions: Dict[str, bool] = dict(decisions or {})
        self._system: Optional[System] = None

    def probe(self, iset: InstructionSet, sched: ScheduleClass) -> System:
        # Rebuild when the requested model differs from the cached one:
        # a cache shared across model pairs would otherwise hand a
        # stale-model system to the isomorphism matcher.
        if (
            self._system is None
            or self._system.instruction_set is not iset
            or self._system.schedule_class is not sched
        ):
            self._system = self.record.system(iset, sched)
        return self._system


class DecisionCache:
    """Memoized ``decide_selection`` outcomes per (canonical form, model).

    The selection decision is invariant under system isomorphism, so one
    entry settles a whole iso class.  Canonical forms (byte-encoded; see
    :func:`_candidate_form`) are invariant but not *complete*
    (quotient-identical non-isomorphic systems exist), so a form keys a
    bucket of iso classes and the exact :func:`are_isomorphic` matcher
    confirms membership before a decision is reused.  ``hits``/
    ``misses`` count decision lookups (one per candidate per model), the
    cache-effectiveness numbers recorded in ``BENCH_witness.json``.

    Entries are plain data (record + ``{model label: possible}``), so
    the cache snapshots losslessly across the pickle boundary and into
    JSONL checkpoints.  Every *newly computed* decision is also appended
    to a journal; :meth:`drain_journal` hands the delta since the last
    drain to whoever needs to replicate it (the parent merging worker
    results, the checkpoint writer) without re-serializing the whole
    cache.

    Attaching a :class:`~repro.store.ContentStore` makes the cache
    *load-through/write-behind*: the first lookup of a canonical form
    consults the store's ``decisions`` namespace and folds any persisted
    bucket in (so a decision computed by any earlier process — another
    CLI run, a pool worker, the serving layer — counts as a hit, never a
    recompute), and every freshly computed decision is staged back to
    the store, flushed in batches.  ``store_hits``/``store_misses``
    count those first-touch bucket loads.
    """

    def __init__(self, store=None) -> None:
        self._buckets: Dict[object, List[_CacheEntry]] = {}
        self._journal: List[Tuple[object, WitnessRecord, str, bool]] = []
        self.hits = 0
        self.misses = 0
        self.store_hits = 0
        self.store_misses = 0
        self._store = None
        self._store_seen: set = set()
        if store is not None:
            self.attach_store(store)

    def attach_store(self, store) -> None:
        """Back this cache with a persistent :class:`ContentStore`."""
        from ..store import NS_DECISIONS

        store.register_merge(NS_DECISIONS, _merge_decision_docs)
        self._store = store

    def detach_store(self) -> None:
        """Drop the store handle (degraded mode): lookups and new
        decisions stay memory-only; un-flushed write-behind entries are
        abandoned with it.  Safe to call storeless; idempotent."""
        self._store = None

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    # -- store backing -------------------------------------------------

    def _bucket_doc(self, form: bytes) -> dict:
        """The persistent document of one form bucket (decided entries)."""
        return {
            "entries": sorted(
                (
                    [entry.record.to_json(), dict(entry.decisions)]
                    for entry in self._buckets.get(form, ())
                    if entry.decisions
                ),
                key=lambda item: json.dumps(item[0], sort_keys=True),
            )
        }

    def _load_through(self, form) -> None:
        """First-touch load of a form's persisted bucket, if any."""
        if (
            self._store is None
            or not isinstance(form, bytes)
            or form in self._store_seen
        ):
            return
        self._store_seen.add(form)
        from ..store import NS_DECISIONS

        doc = self._store.get(NS_DECISIONS, form)
        if doc is None:
            self.store_misses += 1
            return
        self.store_hits += 1
        wire = _form_to_wire(form)
        self.merge(
            [
                (wire, record_doc, decisions)
                for record_doc, decisions in doc.get("entries", ())
            ]
        )

    def _write_behind(self, form) -> None:
        if self._store is None or not isinstance(form, bytes):
            return
        from ..store import NS_DECISIONS

        self._store.put(NS_DECISIONS, form, self._bucket_doc(form))

    def flush_store(self) -> None:
        """Flush staged write-behind entries to disk (no-op storeless)."""
        if self._store is not None:
            self._store.flush()

    # -- lookups -------------------------------------------------------

    def entry_for(
        self,
        form: bytes,
        record: WitnessRecord,
        probe: System,
        iset: InstructionSet,
        sched: ScheduleClass,
    ) -> _CacheEntry:
        """The iso-class entry of ``probe``, created if novel."""
        self._load_through(form)
        bucket = self._buckets.setdefault(form, [])
        for entry in bucket:
            if entry.record == record or are_isomorphic(
                probe, entry.probe(iset, sched)
            ):
                return entry
        entry = _CacheEntry(form, record)
        entry._system = probe
        bucket.append(entry)
        return entry

    def decide(self, entry: _CacheEntry, label: str) -> bool:
        """The selection decision for ``entry`` under model ``label``."""
        cached = entry.decisions.get(label)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        iset, sched = _MODEL_BY_NAME[label]
        possible = decide_selection(entry.record.system(iset, sched)).possible
        entry.decisions[label] = possible
        self._journal.append((entry.form, entry.record, label, possible))
        self._write_behind(entry.form)
        return possible

    # -- snapshots and journals (cross-process / checkpoint form) ------

    def snapshot(self) -> List[Tuple[str, dict, Dict[str, bool]]]:
        """Every decided entry, in wire form, sorted for determinism."""
        return sorted(
            (
                (_form_to_wire(form), entry.record.to_json(), dict(entry.decisions))
                for form, bucket in self._buckets.items()
                for entry in bucket
                if entry.decisions
            ),
            key=lambda item: (item[0], json.dumps(item[1], sort_keys=True)),
        )

    def drain_journal(self) -> List[Tuple[str, dict, Dict[str, bool]]]:
        """Decisions computed since the last drain, in wire form (one
        entry per (form, record), labels folded together)."""
        delta: Dict[Tuple[str, WitnessRecord], Dict[str, bool]] = {}
        for form, record, label, possible in self._journal:
            delta.setdefault((_form_to_wire(form), record), {})[label] = possible
        self._journal.clear()
        return [
            (wire, record.to_json(), decisions)
            for (wire, record), decisions in delta.items()
        ]

    def merge(self, snapshot: Sequence[Tuple[str, dict, Dict[str, bool]]]) -> None:
        """Fold a snapshot or journal delta in (no journal entries are
        produced: replicated decisions are not news to replicate again).
        Entries are matched by exact record equality (cheap); a
        same-class different-representative entry just coexists in the
        bucket and still iso-matches on lookup."""
        for wire, record_doc, decisions in snapshot:
            form = _form_from_wire(wire)
            record = WitnessRecord.from_json(record_doc)
            bucket = self._buckets.setdefault(form, [])
            for entry in bucket:
                if entry.record == record:
                    for label, possible in decisions.items():
                        entry.decisions.setdefault(label, possible)
                    break
            else:
                bucket.append(_CacheEntry(form, record, decisions))


def _merge_decision_docs(existing: dict, new: dict) -> dict:
    """Store-level merge of two persisted form buckets (union of entries,
    union of each entry's decisions) — concurrent writers extend, never
    clobber, one another."""
    merged: Dict[str, Tuple[dict, Dict[str, bool]]] = {}
    for doc in (existing, new):
        for record_doc, decisions in doc.get("entries", ()):
            key = json.dumps(record_doc, sort_keys=True)
            if key in merged:
                merged[key][1].update(decisions)
            else:
                merged[key] = (record_doc, dict(decisions))
    return {
        "entries": [
            [record_doc, decisions]
            for _key, (record_doc, decisions) in sorted(merged.items())
        ]
    }


class DedupIndex:
    """Hash-partitioned isomorphism dedup for one shard's lifetime.

    Buckets candidates by byte-encoded canonical form into ``partitions``
    separate dicts (the partition is a CRC of the form bytes — already
    hash-seed independent, so layouts agree across processes) and settles
    form collisions with the exact matcher.  Each shard owns one index
    and drops it when the shard completes, bounding resident dedup state
    by the shard -- not the sweep -- size; the engine's merge pass dedups
    the surviving witnesses across shards.
    """

    def __init__(self, partitions: int = 16) -> None:
        self._parts: List[Dict[bytes, List[System]]] = [
            {} for _ in range(max(1, partitions))
        ]

    def seen_before(self, form: bytes, probe: System) -> bool:
        """True if an isomorphic candidate was indexed earlier; indexes
        ``probe`` otherwise."""
        part = self._parts[zlib.crc32(form) % len(self._parts)]
        bucket = part.setdefault(form, [])
        if any(are_isomorphic(probe, prior) for prior in bucket):
            return True
        bucket.append(probe)
        return False

    def __len__(self) -> int:
        return sum(len(b) for part in self._parts for b in part.values())


# ----------------------------------------------------------------------
# shard plan and per-shard sweep
# ----------------------------------------------------------------------


def _prefix_len(slots: int) -> int:
    """Assignment-prefix length fixed per shard: enough slots to split a
    big block across workers, zero for blocks too small to shard."""
    if slots <= 1:
        return 0
    if slots <= 3:
        return 1
    return 2


def shard_plan(spec: SweepSpec) -> List[ShardKey]:
    """The deterministic shard list, in serial enumeration order.

    Shards are ordered exactly like the serial loops (processors
    ascending, names ascending, prefixes lexicographic), so concatenating
    shard outputs in plan order reproduces the serial candidate order.
    The plan depends only on the spec -- never on the worker count -- so
    checkpoints written by any run resume under any other.
    """
    plan: List[ShardKey] = []
    for n_procs in range(1, spec.max_processors + 1):
        for n_names in range(1, spec.max_names + 1):
            k = _prefix_len(n_procs * n_names)
            for prefix in product(range(spec.max_variables), repeat=k):
                plan.append((n_procs, n_names, prefix))
    return plan


def _iter_shard_records(spec: SweepSpec, shard: ShardKey) -> Iterator[WitnessRecord]:
    """All candidate records of one shard, in serial enumeration order."""
    n_procs, n_names, prefix = shard
    slots = n_procs * n_names
    for rest in product(range(spec.max_variables), repeat=slots - len(prefix)):
        assignment = tuple(prefix) + rest
        used = sorted(set(assignment))
        if used != list(range(len(used))):
            continue  # not a dense variable prefix; isomorphic duplicate
        marks: List[Optional[str]] = [None]
        if spec.allow_marks:
            marks += [f"p{i}" for i in range(n_procs)]
            marks += [f"v{j}" for j in range(len(used))]
        for mark in marks:
            yield WitnessRecord(n_procs, n_names, assignment, mark)


@dataclass
class ShardStats:
    """Counters of one shard run (summed into :class:`SweepResult`)."""

    enumerated: int = 0
    novel: int = 0
    dedup_skips: int = 0
    witnesses: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    store_hits: int = 0
    store_misses: int = 0

    def to_json(self) -> dict:
        return dict(self.__dict__)

    @classmethod
    def from_json(cls, doc: dict) -> "ShardStats":
        return cls(**doc)


def _sweep_shard(
    spec: SweepSpec, shard: ShardKey, cache: DecisionCache
) -> Tuple[List[WitnessRecord], ShardStats]:
    """Exhaust one shard: dedup, decide (through the cache), collect hits."""
    w_iset, w_sched = spec.weak_model
    stats = ShardStats()
    hits_before, misses_before = cache.hits, cache.misses
    shits_before, smisses_before = cache.store_hits, cache.store_misses
    dedup = DedupIndex()
    found: List[WitnessRecord] = []
    for record in _iter_shard_records(spec, shard):
        stats.enumerated += 1
        probe = record.system(w_iset, w_sched)
        form = _candidate_form(probe)
        if dedup.seen_before(form, probe):
            stats.dedup_skips += 1
            continue
        stats.novel += 1
        entry = cache.entry_for(form, record, probe, w_iset, w_sched)
        if cache.decide(entry, spec.weaker):
            continue  # the weaker model already solves it
        if cache.decide(entry, spec.stronger):
            found.append(record)
    stats.witnesses = len(found)
    stats.cache_hits = cache.hits - hits_before
    stats.cache_misses = cache.misses - misses_before
    stats.store_hits = cache.store_hits - shits_before
    stats.store_misses = cache.store_misses - smisses_before
    return found, stats


#: Per-worker context: the spec plus one persistent :class:`DecisionCache`
#: built by :func:`_pool_init` and kept warm across every shard this
#: worker picks up — later shards reuse earlier shards' decisions without
#: any per-task snapshot/merge traffic.
_WORKER: Dict[str, object] = {}


def _pool_init(
    spec_doc: dict,
    shm_name: Optional[str],
    nbytes: int,
    store_root: Optional[str] = None,
) -> None:
    """Pool-worker initializer: build the spec once and seed the
    persistent cache from the parent's snapshot, published through one
    shared-memory block instead of pickled per task.  With a store root,
    each worker opens its own handle on the shared on-disk store, so
    decisions persisted by any earlier run load through."""
    spec = SweepSpec.from_json(spec_doc)
    cache = DecisionCache()
    if store_root is not None:
        from ..store import ContentStore

        cache.attach_store(ContentStore(store_root))
    if shm_name is not None and nbytes:
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(name=shm_name)
        try:
            blob = bytes(block.buf[:nbytes])
        finally:
            block.close()
        cache.merge(json.loads(blob.decode("utf-8")))
    _WORKER.update(spec=spec, cache=cache)


def _run_shard_task(shard_doc) -> tuple:
    """Worker entry point (module-level so it pickles); the payload is
    just the shard key, and the result carries only the journal of
    decisions this shard newly computed."""
    spec: SweepSpec = _WORKER["spec"]
    cache: DecisionCache = _WORKER["cache"]
    cache.drain_journal()  # discard leftovers of an aborted earlier task
    found, stats = _sweep_shard(spec, _shard_from_doc(shard_doc), cache)
    cache.flush_store()  # new decisions become visible to other workers
    return (
        shard_doc,
        [r.to_json() for r in found],
        stats.to_json(),
        cache.drain_journal(),
    )


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------


def _json_normalize(doc):
    """A document as JSON round-trips it (tuples to lists, keys to str)."""
    return json.loads(json.dumps(doc, sort_keys=True))


def _shard_doc(shard: ShardKey) -> list:
    return [shard[0], shard[1], list(shard[2])]


def _shard_from_doc(doc) -> ShardKey:
    return (doc[0], doc[1], tuple(doc[2]))


def _load_checkpoint(
    path: str, spec: SweepSpec
) -> Dict[ShardKey, Tuple[List[WitnessRecord], ShardStats, list]]:
    """Completed shards recorded in ``path`` (empty if the file is new)."""
    completed: Dict[ShardKey, Tuple[List[WitnessRecord], ShardStats, list]] = {}
    if not os.path.exists(path):
        return completed
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise WitnessSearchError(
                    f"checkpoint {path}:{line_no} is not valid JSON: {exc}"
                ) from None
            if doc.get("kind") == "witness-sweep":
                # Normalize both sides through a JSON round-trip before
                # comparing: the on-disk spec is pure JSON (tuples became
                # lists), while the in-memory ``to_json()`` may still
                # carry tuple-valued fields — comparing raw dicts would
                # falsely reject a valid resume.
                if _json_normalize(doc["spec"]) != _json_normalize(spec.to_json()):
                    raise WitnessSearchError(
                        f"checkpoint {path} records a different sweep spec "
                        f"({doc['spec']!r}); delete it or change the spec"
                    )
            elif doc.get("kind") == "shard":
                completed[_shard_from_doc(doc["shard"])] = (
                    [WitnessRecord.from_json(r) for r in doc["records"]],
                    ShardStats.from_json(doc["counters"]),
                    [tuple(e) for e in doc.get("cache", [])],
                )
    return completed


class _CheckpointWriter:
    """Appends shard-completion lines to the checkpoint JSONL file."""

    def __init__(self, path: str, spec: SweepSpec, fresh: bool) -> None:
        self._fh = open(path, "a")
        if fresh:
            self._write({"kind": "witness-sweep", "spec": spec.to_json()})

    def _write(self, doc: dict) -> None:
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()

    def shard_done(
        self,
        shard: ShardKey,
        records: List[WitnessRecord],
        stats: ShardStats,
        cache_delta: list,
    ) -> None:
        self._write(
            {
                "kind": "shard",
                "shard": _shard_doc(shard),
                "records": [r.to_json() for r in records],
                "counters": stats.to_json(),
                "cache": [list(e) for e in cache_delta],
            }
        )

    def close(self) -> None:
        self._fh.close()


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------


@dataclass
class SweepResult:
    """Outcome of one :func:`run_sweep` call.

    ``witnesses`` is the deterministic merged list (serial order);
    ``records`` are their plain-data descriptions, and the counters
    aggregate every executed shard (resumed shards contribute their
    checkpointed counters).
    """

    witnesses: List["Witness"]
    records: List[WitnessRecord]
    stats: ShardStats
    shards: int
    resumed_shards: int
    workers: int
    elapsed: float
    cache: DecisionCache = field(repr=False, default_factory=DecisionCache)


def _merge_results(
    spec: SweepSpec,
    per_shard: List[List[WitnessRecord]],
) -> List[WitnessRecord]:
    """Sorted merge of shard outputs: concatenate in shard-plan order and
    drop cross-shard isomorphic duplicates, keeping first occurrences --
    exactly the serial searcher's global-dedup semantics."""
    w_iset, w_sched = spec.weak_model
    kept: List[WitnessRecord] = []
    kept_probes: Dict[bytes, List[System]] = {}
    for records in per_shard:
        for record in records:
            probe = record.system(w_iset, w_sched)
            form = _candidate_form(probe)
            bucket = kept_probes.setdefault(form, [])
            if any(are_isomorphic(probe, prior) for prior in bucket):
                continue
            bucket.append(probe)
            kept.append(record)
            if spec.limit is not None and len(kept) >= spec.limit:
                return kept
    return kept


def _emit_progress(hub, shard: ShardKey, stats: ShardStats, resumed: bool) -> None:
    if hub is None or not hub.active:
        return
    from ..obs.events import WitnessSearchProgress

    hub.emit(
        WitnessSearchProgress(
            shard=f"{shard[0]}x{shard[1]}:{','.join(map(str, shard[2])) or '-'}",
            enumerated=stats.enumerated,
            novel=stats.novel,
            witnesses=stats.witnesses,
            cache_hits=stats.cache_hits,
            cache_misses=stats.cache_misses,
            resumed=resumed,
        )
    )


def run_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    cache: Optional[DecisionCache] = None,
    checkpoint: Optional[str] = None,
    hub=None,
    store=None,
) -> SweepResult:
    """Run a witness sweep, sharded and cached.

    Args:
        spec: the sweep specification (models, bounds, marks, limit).
        workers: process-pool size.  ``None`` picks ``min(4, cpu_count)``
            but stays serial on a single-core host; ``0`` or ``1`` forces
            the serial in-process path.  The witness list is identical on
            every worker count.
        cache: an optional :class:`DecisionCache` to consult and fill;
            keep one alive across calls (e.g. sweeping several model
            pairs over the same bounds) to reuse decisions.
        checkpoint: optional JSONL path.  Completed shards are appended
            as they finish; if the file already exists (for the same
            spec) those shards are not re-run.
        hub: optional :class:`~repro.obs.events.EventHub` for
            ``WitnessSearchProgress`` / ``WitnessFound`` events.
        store: optional persistent decision store — a
            :class:`~repro.store.ContentStore` or a directory path.  The
            cache loads decisions through it and writes new ones behind,
            so sweeps share work across processes and runs; pool workers
            open their own handles on the same directory.

    Returns:
        A :class:`SweepResult` whose ``witnesses`` match the serial
        searcher's output exactly (same systems, same order).
    """
    from .witness_search import Witness

    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    if workers <= 1:
        workers = 0
    cache = cache if cache is not None else DecisionCache()
    store_root: Optional[str] = None
    if store is not None:
        if isinstance(store, str):
            from ..store import ContentStore

            store = ContentStore(store)
        store_root = store.root
        cache.attach_store(store)

    t0 = time.perf_counter()
    plan = shard_plan(spec)
    completed: Dict[ShardKey, Tuple[List[WitnessRecord], ShardStats, list]] = {}
    writer: Optional[_CheckpointWriter] = None
    if checkpoint:
        completed = _load_checkpoint(checkpoint, spec)
        for _records, _stats, cache_delta in completed.values():
            cache.merge(cache_delta)
        writer = _CheckpointWriter(checkpoint, spec, fresh=not completed)

    total = ShardStats()
    per_shard: Dict[ShardKey, List[WitnessRecord]] = {}
    resumed = 0

    def account(shard: ShardKey, records: List[WitnessRecord], stats: ShardStats) -> None:
        per_shard[shard] = records
        for key, value in stats.to_json().items():
            setattr(total, key, getattr(total, key) + value)

    plan_set = set(plan)
    for shard, (records, stats, _delta) in completed.items():
        if shard in plan_set:
            resumed += 1
            account(shard, records, stats)
            _emit_progress(hub, shard, stats, resumed=True)

    todo = [shard for shard in plan if shard not in per_shard]
    try:
        if workers == 0 or len(todo) <= 1:
            workers = 0
            cache.drain_journal()  # only journal what *this* sweep decides
            for shard in todo:
                found, stats = _sweep_shard(spec, shard, cache)
                account(shard, found, stats)
                if writer:
                    writer.shard_done(shard, found, stats, cache.drain_journal())
                _emit_progress(hub, shard, stats, resumed=False)
                if spec.limit is not None:
                    merged_so_far = _merge_results(
                        spec, [per_shard[s] for s in plan if s in per_shard]
                    )
                    if len(merged_so_far) >= spec.limit:
                        break
        else:
            # Submit every shard at once: workers keep one persistent
            # cache each (seeded from the parent's via shared memory),
            # so there is no wave barrier to re-synchronize snapshots at
            # — the parent just folds each shard's decision journal in
            # as it completes.
            from multiprocessing.managers import SharedMemoryManager

            with SharedMemoryManager() as smm:
                seed = json.dumps(cache.snapshot()).encode("utf-8")
                shm_name: Optional[str] = None
                if seed and seed != b"[]":
                    block = smm.SharedMemory(size=len(seed))
                    block.buf[: len(seed)] = seed
                    shm_name = block.name
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_pool_init,
                    initargs=(spec.to_json(), shm_name, len(seed), store_root),
                ) as pool:
                    futures = {
                        pool.submit(_run_shard_task, _shard_doc(shard)): shard
                        for shard in todo
                    }
                    not_done = set(futures)
                    while not_done:
                        done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                        for future in done:
                            shard = futures[future]
                            _doc, record_docs, stats_doc, delta = future.result()
                            records = [WitnessRecord.from_json(r) for r in record_docs]
                            stats = ShardStats.from_json(stats_doc)
                            cache.merge(delta)
                            account(shard, records, stats)
                            if writer:
                                writer.shard_done(shard, records, stats, delta)
                            _emit_progress(hub, shard, stats, resumed=False)
    finally:
        if writer:
            writer.close()
        cache.flush_store()

    merged = _merge_results(spec, [per_shard[s] for s in plan if s in per_shard])
    s_iset, s_sched = spec.strong_model
    witnesses = [
        Witness(record.system(s_iset, s_sched), spec.weaker, spec.stronger)
        for record in merged
    ]
    if hub is not None and hub.active:
        from ..obs.events import WitnessFound

        for index, witness in enumerate(witnesses):
            hub.emit(
                WitnessFound(
                    index=index,
                    weaker=spec.weaker,
                    stronger=spec.stronger,
                    description=witness.describe(),
                )
            )
    return SweepResult(
        witnesses=witnesses,
        records=merged,
        stats=total,
        shards=len(plan),
        resumed_shards=resumed,
        workers=workers,
        elapsed=time.perf_counter() - t0,
        cache=cache,
    )
