"""Parameterized verification with cutoff detection: verify once,
conclude for all n.

The paper's headline results quantify over *every* member of a topology
family -- "DP-n deadlocks", "Theorem 4 holds on every unmarked ring" --
while the explorer (:mod:`repro.analysis.explore`) checks one size at a
time.  This module lifts the per-instance machinery to symbolic families
(:class:`repro.core.families.TopologyFamily`) with the classic cutoff
recipe, mechanized the way *Regular Symmetry Patterns* mechanizes
parameterized symmetry groups:

1. **Abstract.**  Every reachable state of the size-``n`` member is
   mapped to a *counter-abstracted profile*: per (Θ-class, local state,
   halted) triple, the number of processors in that configuration, with
   counts at or above a threshold ω collapsed to "many"; variable states
   abstract their owner/poster references to Θ-class indices the same
   way.  Θ-classes themselves are named *size-independently* by
   ω-bounded refinement over the similarity quotient, so profiles of
   different sizes live in one shared alphabet.

2. **Detect.**  Each probed size runs *twice*: a **verdict run** at the
   property's own depth rule (e.g. ``2n`` -- deep enough to reach the
   DP-n deadlock) and a **structure run** collecting abstract profiles
   at a fixed ``structure_depth`` that does *not* grow with ``n``.
   Fixing the structure depth is what makes stabilization provable
   rather than hopeful: one transition moves one processor, so a
   population count seeded at ``n`` (all-initial processors, untouched
   variables) stays at least ``n - structure_depth`` -- abstracted to
   "many" whenever ``n >= structure_depth + ω``.  From that size on,
   a bounded-degree family's depth-``d`` reachable profiles mention
   only the bounded neighborhood the schedule has touched plus the
   ω-pool, so the profile *set* is literally ``n``-invariant.  Sizes
   are probed in family order (respecting ``step`` and structural
   ``period``) until a full period of consecutive sizes is
   Θ-quotient-isomorphic to its successor period -- equal abstract
   reachable structure, equal verdict, equal violation kind.  The
   first size of the stable run is the **cutoff**.

3. **Certify.**  Emit a :class:`CutoffCertificate` claiming the
   property for all admissible ``n >= cutoff``, and let
   :func:`verify_cutoff` independently re-check it at
   ``cutoff + step`` and ``cutoff + 2*step``: a fresh *unreduced*
   exploration (exact-configuration dedup, no symmetry reduction, no
   shared caches) at each size must reproduce the claimed verdict, and
   a fresh profile run must reproduce the stable fingerprint of its
   residue.

The certificate is inductive evidence in the bounded-abstraction sense,
and honest about it: ``claim`` quantifies over the explored depth rule
(e.g. ``2n+2``) and the ω used, both recorded in the JSON document.

The same stabilization loop, minus the explorer, powers
:class:`LabelingSchema`: a similarity labeling as a function of ``n``,
with the stabilization size and the per-period class-count growth
recorded, and :meth:`LabelingSchema.instantiate` delegating to the real
refinement engine at any size.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, replace
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..core.encoding import encode_value, fingerprint
from ..core.families import TopologyFamily, parametric_family
from ..core.labeling import Labeling
from ..core.quotient import quotient_system
from ..core.refinement import compute_similarity_labeling
from ..core.system import System
from ..exceptions import ParametricError
from .explore import ExploreSpec, explore_with_profiles, run_explore

#: Default counter-abstraction threshold: counts 0 and 1 stay exact,
#: anything larger is "many" -- the classic 0/1/∞ counter abstraction.
#: Two is the smallest ω that separates "nobody" from "exactly one"
#: (selection!), and small ω means early stabilization: profiles are
#: provably n-invariant once n >= structure_depth + ω.
OMEGA_DEFAULT = 2

#: Default depth of the fixed-depth structure run.  Must not grow with
#: n (see the module docstring); 2 keeps the expected cutoff at
#: structure_depth + ω = 4, where the verify sizes are still cheap to
#: explore unreduced.
STRUCTURE_DEPTH_DEFAULT = 2

_MANY = "ω"


def _abs_count(count: int, omega: int) -> Hashable:
    return count if count < omega else _MANY


def abstract_value(value: Hashable, omega: int) -> Hashable:
    """ω-threshold every integer inside a state value, recursively.

    Local states and variable values may embed unbounded counters --
    meal counts, program counters, lock-order positions -- that grow
    with the exploration depth, and the depth rule grows with ``n``.
    Left alone they would make the abstract alphabet infinite and
    stabilization impossible; thresholding them is the value-level half
    of the counter abstraction (the profile counts are the other half).
    Booleans, strings and small ints pass through unchanged, so
    size-independent control states keep their identity.
    """
    if value is None or isinstance(value, (bool, str, bytes, float)):
        return value
    if isinstance(value, int):
        if -omega < value < omega:
            return value
        return (_MANY, value >= 0)
    if isinstance(value, tuple):
        return tuple(abstract_value(v, omega) for v in value)
    if isinstance(value, frozenset):
        return frozenset(abstract_value(v, omega) for v in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.replace(
            value,
            **{
                f.name: abstract_value(getattr(value, f.name), omega)
                for f in dataclasses.fields(value)
            },
        )
    return value


# ----------------------------------------------------------------------
# depth rules
# ----------------------------------------------------------------------

_DEPTH_RE = re.compile(r"^(?:(\d*)n)?([+-]?\d+)?$")


def eval_depth(rule: str, n: int) -> int:
    """Evaluate a linear depth rule like ``"2n"``, ``"2n+2"``, ``"8"``.

    Depth bounds must travel in JSON certificates, so they are strings
    in a tiny linear grammar ``[A]n[+-B]`` rather than callables.
    """
    text = rule.replace(" ", "")
    match = _DEPTH_RE.match(text)
    if not match or text in ("", "+", "-"):
        raise ParametricError(
            f"bad depth rule {rule!r}; expected forms like '2n+2', 'n', '8'"
        )
    coeff_s, const_s = match.groups()
    coeff = 0 if "n" not in text else int(coeff_s) if coeff_s else 1
    const = int(const_s) if const_s else 0
    depth = coeff * n + const
    if depth <= 0:
        raise ParametricError(f"depth rule {rule!r} gives {depth} at n={n}")
    return depth


# ----------------------------------------------------------------------
# size-independent Θ-class structure
# ----------------------------------------------------------------------


def class_structure(
    system: System, omega: int = OMEGA_DEFAULT
) -> Tuple[Dict[Any, int], Tuple[Hashable, ...]]:
    """Name the Θ-classes of a system in a size-independent alphabet.

    Starts from the similarity quotient and colors each class with
    ``(kind, initial state, ω-abstracted size)``, then refines at most
    ω times by the ω-abstracted multiset of quotient edges in current
    colors.  Bounding the refinement is what keeps the alphabet finite
    across sizes: in a marked ring the distance-``d`` classes are
    pairwise distinguishable for every ``d``, but after ω rounds all
    classes further than ω steps from the mark share a color, so the
    color alphabet stops growing with ``n`` while still separating
    everything a bounded observer can see.

    Returns ``(node_to_index, colors)``: every node mapped to the rank
    of its class color, plus the sorted color tuple itself (the
    structural fingerprint material).  Classes sharing a color share an
    index -- a sound merge, coarser never lies.
    """
    theta = compute_similarity_labeling(system).labeling
    q = quotient_system(system, theta)

    color: Dict[Hashable, Hashable] = {}
    for label, size, state in q.pclasses:
        color[label] = ("P", state, _abs_count(size, omega))
    for label, size, state in q.vclasses:
        color[label] = ("V", state, _abs_count(size, omega))

    for _round in range(omega):
        new_color: Dict[Hashable, Hashable] = {}
        for label in color:
            incident = tuple(
                sorted(
                    (
                        ("out", e.name, repr(color[e.vlabel]), _abs_count(e.count, omega))
                        for e in q.edges
                        if e.plabel == label
                    )
                )
                + sorted(
                    (
                        ("in", e.name, repr(color[e.plabel]), _abs_count(e.count, omega))
                        for e in q.edges
                        if e.vlabel == label
                    )
                )
            )
            new_color[label] = (color[label], incident)
        if len(set(new_color.values())) == len(set(color.values())):
            # partition stopped refining; keep the pre-round colors
            # (they induce the same classes with shorter encodings)
            break
        color = new_color

    distinct = sorted({encode_value(c) for c in color.values()})
    rank = {enc: i for i, enc in enumerate(distinct)}
    node_to_index = {
        node: rank[encode_value(color[theta[node]])] for node in system.nodes
    }
    colors = tuple(distinct)
    return node_to_index, colors


class StateAbstraction:
    """Counter abstraction of exploration states for one member system.

    :meth:`profile` folds an executor snapshot
    (:meth:`repro.runtime.executor.Executor.exploration_state`) into a
    size-independent byte string: processor counts per (class, local
    state, halted) with ω-thresholding, variable states with owners and
    subvalue posters abstracted to class indices and multiplicities
    ω-thresholded.  Equal profiles across members of *different* sizes
    mean "a bounded observer cannot tell these global states apart".
    """

    def __init__(self, system: System, omega: int = OMEGA_DEFAULT) -> None:
        self.omega = omega
        node_index, colors = class_structure(system, omega)
        self.colors = colors
        self._proc_class = tuple(node_index[p] for p in system.processors)
        self._var_class = tuple(node_index[v] for v in system.variables)

    def structure_fingerprint(self) -> str:
        """Fingerprint of the initial Θ-class structure alone."""
        return fingerprint(self.colors)

    def _proc_ref(self, index: int) -> Hashable:
        return self._proc_class[index] if index >= 0 else None

    def profile_value(self, executor) -> Hashable:
        """The abstract profile as a plain value (for tests/debugging)."""
        proc_part, var_part = executor.exploration_state()
        omega = self.omega

        proc_counts: Dict[Hashable, int] = {}
        for cls, (local, halted) in zip(self._proc_class, proc_part):
            key = (cls, abstract_value(local, omega), halted)
            proc_counts[key] = proc_counts.get(key, 0) + 1
        proc_items = tuple(
            sorted(
                ((key, _abs_count(c, omega)) for key, c in proc_counts.items()),
                key=encode_value,
            )
        )

        var_counts: Dict[Hashable, int] = {}
        for cls, entry in zip(self._var_class, var_part):
            if entry[0] == "subvalue":
                _tag, base, posted = entry
                base = abstract_value(base, omega)
                sub_counts: Dict[Hashable, int] = {}
                for proc_index, val in posted:
                    sub_key = (self._proc_ref(proc_index), abstract_value(val, omega))
                    sub_counts[sub_key] = sub_counts.get(sub_key, 0) + 1
                folded = tuple(
                    sorted(
                        (
                            (sub_key, _abs_count(c, omega))
                            for sub_key, c in sub_counts.items()
                        ),
                        key=encode_value,
                    )
                )
                key = (cls, "subvalue", base, folded)
            else:
                _tag, value, locked, owner = entry
                key = (
                    cls,
                    "plain",
                    abstract_value(value, omega),
                    locked,
                    self._proc_ref(owner),
                )
            var_counts[key] = var_counts.get(key, 0) + 1
        var_items = tuple(
            sorted(
                ((key, _abs_count(c, omega)) for key, c in var_counts.items()),
                key=encode_value,
            )
        )
        return (proc_items, var_items)

    def profile(self, executor) -> bytes:
        return encode_value(self.profile_value(executor))


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PropertySpec:
    """One verifiable parameterized property.

    ``expect`` states the *claim shape*: ``"violation"`` properties
    assert every member fails the same way (DP-n deadlocks),
    ``"certified"`` properties assert every member passes to the depth
    bound.  ``k_bounded`` requests the Theorem-4 fairness restriction
    with ``k`` equal to the member's processor count.
    """

    name: str
    claim: str
    depth_rule: str
    expect: str  # "violation" | "certified"
    invariants: Tuple[str, ...] = ()
    check_deadlock: bool = True
    k_bounded: bool = False
    violation_kind: Optional[str] = None  # required shape when expect=violation


PROPERTIES: Dict[str, PropertySpec] = {
    "deadlock": PropertySpec(
        name="deadlock",
        claim="reaches the circular-hold deadlock in every member",
        depth_rule="2n",
        expect="violation",
        violation_kind="deadlock",
    ),
    "deadlock-free": PropertySpec(
        name="deadlock-free",
        claim="no deadlock, exclusion breach, or stuck schedule to the "
        "depth bound in any member",
        # A constant bound, not "2n": the claim is bounded-depth freedom
        # for every size, and a constant keeps the unreduced verify runs
        # at cutoff+step and cutoff+2*step affordable on large members.
        depth_rule="6",
        expect="certified",
        invariants=("exclusion",),
    ),
    "lockstep": PropertySpec(
        name="lockstep",
        claim="Θ-classes stay state-uniform at every balanced point of "
        "every k-bounded schedule (Theorem 4, sharpened)",
        depth_rule="2n",
        expect="certified",
        invariants=("lockstep",),
        check_deadlock=False,
        k_bounded=True,
    ),
}


def property_spec(name: str) -> PropertySpec:
    try:
        return PROPERTIES[name]
    except KeyError:
        raise ParametricError(
            f"unknown property {name!r}; pick from {sorted(PROPERTIES)}"
        ) from None


def member_explore_spec(
    family: TopologyFamily, prop: PropertySpec, n: int
) -> ExploreSpec:
    """The exploration spec of one member under one property."""
    scenario = family.scenario(n)
    system = family.instantiate(n)
    k = len(system.processors) if prop.k_bounded else None
    return ExploreSpec(
        scenario=scenario,
        max_depth=eval_depth(prop.depth_rule, n),
        fairness="k-bounded" if prop.k_bounded else "none",
        k=k,
        invariants=prop.invariants,
        probes=(),
        check_deadlock=prop.check_deadlock,
    )


# ----------------------------------------------------------------------
# cutoff detection
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SizeRecord:
    """What one explored size contributed to cutoff detection.

    ``depth``/``unique_states`` describe the verdict run (the property's
    own depth rule); ``structure_depth``/``profile_count`` describe the
    fixed-depth structure run whose profile set feeds the fingerprint.
    """

    size: int
    verdict: str
    violation_kind: Optional[str]
    unique_states: int
    profile_count: int
    depth: int
    structure_depth: int
    fingerprint: str  # abstract reachable structure + verdict shape

    def to_json(self) -> Dict[str, Any]:
        return {
            "size": self.size,
            "verdict": self.verdict,
            "violation_kind": self.violation_kind,
            "unique_states": self.unique_states,
            "profile_count": self.profile_count,
            "depth": self.depth,
            "structure_depth": self.structure_depth,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class CutoffCertificate:
    """A "holds for all n >= cutoff" certificate.

    The certificate is exactly as strong as its ingredients, all of
    which it records: the property's depth rule (claims are bounded-
    depth claims), the abstraction threshold ω, the structural period,
    and the per-size records whose fingerprint run stabilized.  The
    soundness argument is the standard cutoff induction: once a full
    period of consecutive sizes is Θ-quotient-isomorphic (in the
    ω-bounded abstract alphabet) to the next period, larger members
    keep reproducing the same abstract reachable structure, so the
    verdict -- a function of that structure -- is size-invariant from
    the cutoff on.  :func:`verify_cutoff` spot-checks the induction
    base independently.
    """

    family: str
    property: str
    cutoff: int
    period: int
    step: int
    omega: int
    structure_depth: int
    depth_rule: str
    verdict: str
    violation_kind: Optional[str]
    stable_fingerprints: Tuple[str, ...]  # one per residue in the period
    records: Tuple[SizeRecord, ...]

    @property
    def claim(self) -> str:
        prop = property_spec(self.property)
        sizes = (
            f"all n >= {self.cutoff}"
            if self.step == 1
            else f"all n >= {self.cutoff} with n ≡ {self.cutoff % self.step} (mod {self.step})"
        )
        return (
            f"{self.family}: {prop.claim} -- for {sizes}, "
            f"to depth {self.depth_rule} (ω={self.omega})"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "property": self.property,
            "cutoff": self.cutoff,
            "period": self.period,
            "step": self.step,
            "omega": self.omega,
            "structure_depth": self.structure_depth,
            "depth_rule": self.depth_rule,
            "verdict": self.verdict,
            "violation_kind": self.violation_kind,
            "stable_fingerprints": list(self.stable_fingerprints),
            "claim": self.claim,
            "records": [r.to_json() for r in self.records],
        }


def _explore_size(
    family: TopologyFamily,
    prop: PropertySpec,
    n: int,
    omega: int,
    structure_depth: int,
) -> SizeRecord:
    spec = member_explore_spec(family, prop, n)
    # Verdict run: the property's own depth rule, symmetry-reduced.
    result = run_explore(spec, workers=0)
    violation_kind = None if result.violation is None else result.violation.kind
    # Structure run: fixed depth, so the abstract profile set can
    # stabilize across sizes (see the module docstring).
    system = family.instantiate(n)
    abstraction = StateAbstraction(system, omega)
    _, profiles = explore_with_profiles(
        replace(spec, max_depth=structure_depth), abstraction.profile
    )
    reachable = tuple(sorted(set(profiles)))
    fp = fingerprint(
        (
            abstraction.structure_fingerprint(),
            reachable,
            result.verdict,
            violation_kind,
            None if result.violation is None else result.violation.invariant,
        )
    )
    return SizeRecord(
        size=n,
        verdict=result.verdict,
        violation_kind=violation_kind,
        unique_states=result.unique_states,
        profile_count=len(reachable),
        depth=spec.max_depth,
        structure_depth=structure_depth,
        fingerprint=fp,
    )


def _check_claim_shape(prop: PropertySpec, record: SizeRecord) -> None:
    if prop.expect == "violation":
        if record.verdict != "violation" or (
            prop.violation_kind is not None
            and record.violation_kind != prop.violation_kind
        ):
            raise ParametricError(
                f"property {prop.name!r} expects every member to fail with "
                f"{prop.violation_kind!r}, but size {record.size} produced "
                f"verdict {record.verdict!r} "
                f"(violation kind {record.violation_kind!r}); "
                "this family does not satisfy the property uniformly"
            )
    else:
        if record.verdict != "certified":
            raise ParametricError(
                f"property {prop.name!r} expects every member certified, but "
                f"size {record.size} produced verdict {record.verdict!r} "
                f"(violation kind {record.violation_kind!r})"
            )


def detect_cutoff(
    family_name: str,
    property_name: str,
    start: Optional[int] = None,
    max_sizes: int = 8,
    omega: int = OMEGA_DEFAULT,
    structure_depth: int = STRUCTURE_DEPTH_DEFAULT,
) -> CutoffCertificate:
    """Explore sizes until the abstract reachable structure stabilizes.

    Sizes are probed in family order; stabilization at index ``i``
    means every size in the period starting there has the same
    fingerprint as its successor one period later.  Raises
    :class:`~repro.exceptions.ParametricError` if the verdict is not
    uniform across probed sizes or nothing stabilizes within
    ``max_sizes``.
    """
    family = parametric_family(family_name)
    prop = property_spec(property_name)
    period = max(1, family.period)
    if max_sizes < 2 * period:
        raise ParametricError(
            f"max_sizes={max_sizes} cannot cover two periods of "
            f"{period} size(s); raise it to at least {2 * period}"
        )
    sizes = family.sizes(max_sizes, start)
    records: List[SizeRecord] = []
    for i, n in enumerate(sizes):
        records.append(_explore_size(family, prop, n, omega, structure_depth))
        _check_claim_shape(prop, records[-1])
        # stabilized at index i0 if records i0..i0+period-1 each match
        # the record one period later -- needs i >= i0 + 2*period - 1
        i0 = i - 2 * period + 1
        if i0 < 0:
            continue
        if all(
            records[i0 + j].fingerprint == records[i0 + period + j].fingerprint
            for j in range(period)
        ):
            stable = records[: i0 + 2 * period]
            return CutoffCertificate(
                family=family_name,
                property=property_name,
                cutoff=records[i0].size,
                period=period,
                step=family.step,
                omega=omega,
                structure_depth=structure_depth,
                depth_rule=prop.depth_rule,
                verdict=records[i0].verdict,
                violation_kind=records[i0].violation_kind,
                stable_fingerprints=tuple(
                    records[i0 + j].fingerprint for j in range(period)
                ),
                records=tuple(stable),
            )
    raise ParametricError(
        f"family {family_name!r} did not stabilize for property "
        f"{property_name!r} within sizes {list(sizes)}; the abstract "
        f"reachable structure is still changing (raise max_sizes or ω)"
    )


def verify_cutoff(
    certificate: CutoffCertificate, extra_sizes: int = 2
) -> Optional[str]:
    """Independently re-check a certificate above its cutoff.

    For the ``extra_sizes`` admissible sizes directly above the cutoff
    (``cutoff + step``, ``cutoff + 2*step``, ...), (a) a fresh
    *unreduced* exploration (exact dedup, no symmetry reduction -- a
    different engine mode than detection used) must reproduce the
    certified verdict and violation kind, and (b) a fresh profile run
    must land on the stable fingerprint of the matching residue.
    Returns ``None`` on success or a message naming the first mismatch
    (the :func:`repro.analysis.explore.verify_counterexample`
    convention).
    """
    family = parametric_family(certificate.family)
    prop = property_spec(certificate.property)
    for j in range(1, extra_sizes + 1):
        n = certificate.cutoff + j * certificate.step
        spec = member_explore_spec(family, prop, n)
        unreduced = run_explore(replace(spec, symmetry=False), workers=0)
        kind = None if unreduced.violation is None else unreduced.violation.kind
        if unreduced.verdict != certificate.verdict or kind != certificate.violation_kind:
            return (
                f"unreduced re-check at n={n} returned verdict "
                f"{unreduced.verdict!r} (violation kind {kind!r}), but the "
                f"certificate promises {certificate.verdict!r} "
                f"({certificate.violation_kind!r})"
            )
        record = _explore_size(
            family, prop, n, certificate.omega, certificate.structure_depth
        )
        index = (n - certificate.cutoff) // certificate.step
        expected = certificate.stable_fingerprints[index % certificate.period]
        if record.fingerprint != expected:
            return (
                f"abstract structure at n={n} has fingerprint "
                f"{record.fingerprint}, but the certificate's stable "
                f"fingerprint for its residue is {expected}"
            )
    return None


# ----------------------------------------------------------------------
# labeling schemas: similarity labelings as functions of n
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LabelingSchema:
    """A similarity labeling as a function of ``n``.

    Records where the ω-bounded class structure stabilized and how the
    class *count* grows from there (``slope`` classes per period --
    constant growth is what "the labeling is a function of n" means
    mechanically).  :meth:`instantiate` always delegates to the real
    refinement engine, so the schema can never drift from the ground
    truth it summarizes; what the schema adds is the *prediction*
    (:meth:`predicted_classes`) and the stabilization evidence.
    """

    family: str
    omega: int
    period: int
    step: int
    stabilized_at: int  # size where the fingerprint run starts
    checked_to: int  # largest size probed
    stable_fingerprints: Tuple[str, ...]  # per residue in the period
    base_counts: Tuple[int, ...]  # class counts at the stabilization period
    slope: int  # class-count growth per period

    def instantiate(self, n: int) -> Labeling:
        """The real similarity labeling of the size-``n`` member."""
        family = parametric_family(self.family)
        return compute_similarity_labeling(family.instantiate(n)).labeling

    def class_count(self, n: int) -> int:
        """Ground truth: distinct similarity classes at size ``n``."""
        return len(self.instantiate(n).labels)

    def predicted_classes(self, n: int) -> int:
        """The affine prediction for ``n`` at or above the cutoff."""
        if n < self.stabilized_at:
            raise ParametricError(
                f"size {n} is below the schema's stabilization size "
                f"{self.stabilized_at}; instantiate it directly instead"
            )
        index = (n - self.stabilized_at) // self.step
        residue = index % self.period
        periods = index // self.period
        return self.base_counts[residue] + self.slope * periods

    def to_json(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "omega": self.omega,
            "period": self.period,
            "step": self.step,
            "stabilized_at": self.stabilized_at,
            "checked_to": self.checked_to,
            "stable_fingerprints": list(self.stable_fingerprints),
            "base_counts": list(self.base_counts),
            "slope": self.slope,
        }


def compute_labeling_schema(
    family_name: str,
    start: Optional[int] = None,
    max_sizes: int = 8,
    omega: int = OMEGA_DEFAULT,
) -> LabelingSchema:
    """Run partition refinement at increasing n until the ω-bounded
    class structure stabilizes; emit the labeling-as-a-function-of-n.

    Stabilization requires a full period of sizes whose structural
    fingerprints equal their successors one period later *and* whose
    class counts grow by a constant per period from there on.
    """
    family = parametric_family(family_name)
    period = max(1, family.period)
    if max_sizes < 2 * period + 1:
        raise ParametricError(
            f"max_sizes={max_sizes} cannot witness constant growth over "
            f"period {period}; raise it to at least {2 * period + 1}"
        )
    sizes = family.sizes(max_sizes, start)
    fps: List[str] = []
    counts: List[int] = []
    for n in sizes:
        system = family.instantiate(n)
        node_index, colors = class_structure(system, omega)
        theta = compute_similarity_labeling(system).labeling
        fps.append(fingerprint(colors))
        counts.append(len(theta.labels))

    total = len(sizes)
    for i0 in range(total - 2 * period):
        fp_stable = all(
            fps[j] == fps[j + period] for j in range(i0, total - period)
        )
        if not fp_stable:
            continue
        slopes = {
            counts[j + period] - counts[j] for j in range(i0, total - period)
        }
        if len(slopes) != 1:
            continue
        return LabelingSchema(
            family=family_name,
            omega=omega,
            period=period,
            step=family.step,
            stabilized_at=sizes[i0],
            checked_to=sizes[-1],
            stable_fingerprints=tuple(fps[i0 + j] for j in range(period)),
            base_counts=tuple(counts[i0 + j] for j in range(period)),
            slope=slopes.pop(),
        )
    raise ParametricError(
        f"family {family_name!r} labeling structure did not stabilize "
        f"within sizes {list(sizes)} (ω={omega}); raise max_sizes or ω"
    )


# ----------------------------------------------------------------------
# the full parametric run (CLI entry)
# ----------------------------------------------------------------------


def run_parametric(
    family_name: str,
    property_name: str,
    start: Optional[int] = None,
    max_sizes: int = 8,
    omega: int = OMEGA_DEFAULT,
    structure_depth: int = STRUCTURE_DEPTH_DEFAULT,
    verify_extra: int = 2,
    schema: bool = True,
) -> Dict[str, Any]:
    """Detect a cutoff, independently verify it, and (optionally)
    compute the labeling schema; returns the JSON report document."""
    certificate = detect_cutoff(
        family_name,
        property_name,
        start=start,
        max_sizes=max_sizes,
        omega=omega,
        structure_depth=structure_depth,
    )
    verify_error = verify_cutoff(certificate, extra_sizes=verify_extra)
    doc: Dict[str, Any] = {
        "certificate": certificate.to_json(),
        "verify_cutoff": {
            "extra_sizes": verify_extra,
            "confirmed": verify_error is None,
            "error": verify_error,
        },
    }
    if schema:
        doc["labeling_schema"] = compute_labeling_schema(
            family_name, start=start, max_sizes=max_sizes, omega=omega
        ).to_json()
    return doc
