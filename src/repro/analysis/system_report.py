"""One-call dossiers: everything the library can say about a system.

`full_report(network, state)` runs the whole analysis stack -- similarity
per model, graph symmetry and its gap, the quotient, selection decisions
across the hierarchy, and the application decisions -- and renders it as
one text document.  The CLI exposes it as ``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..core.hierarchy import POWER_ORDER, selection_across_models
from ..core.names import NodeId, State
from ..core.network import Network
from ..core.quotient import quotient_system
from ..core.similarity import similarity_labeling
from ..core.symmetry import is_symmetric_system, symmetry_gap
from ..core.system import InstructionSet, System
from .reporting import format_table, yesno


@dataclass(frozen=True)
class SystemReport:
    """The assembled dossier (also renderable as text)."""

    description: str
    processor_classes: int
    variable_classes: int
    symmetric: bool
    gap: int
    decisions: Mapping[str, bool]
    renaming: bool
    committee_sizes: tuple
    text: str

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.text


def full_report(
    network: Network,
    state: Optional[Mapping[NodeId, State]] = None,
    description: str = "",
) -> SystemReport:
    """Analyze ``network``+``state`` under every model and summarize."""
    from ..applications import committee_possible, renaming_possible

    q_system = System(network, state, InstructionSet.Q)
    theta = similarity_labeling(q_system)
    quotient = quotient_system(q_system, theta)
    symmetric = is_symmetric_system(q_system)
    gap_report = symmetry_gap(q_system)
    model_report = selection_across_models(network, state, description)
    decisions = {
        m: model_report.decisions[m].possible for m in POWER_ORDER
    }
    renaming = renaming_possible(q_system)
    n = len(q_system.processors)
    committee_sizes = tuple(
        k for k in range(n + 1) if committee_possible(q_system, k)
    )

    lines = []
    title = description or repr(network)
    lines.append(f"=== system dossier: {title} ===")
    lines.append("")
    lines.append(
        f"nodes: {len(q_system.processors)} processors, "
        f"{len(q_system.variables)} variables, NAMES = {list(network.names)}"
    )
    lines.append(
        f"similarity classes: {quotient.processor_class_count} processor, "
        f"{quotient.variable_class_count} variable"
    )
    blocks = [
        "{" + ",".join(sorted(map(str, b & set(q_system.processors)))) + "}"
        for b in theta.blocks
        if b & set(q_system.processors)
    ]
    lines.append(f"processor classes: {' '.join(blocks)}")
    lines.append(
        f"graph-symmetric: {yesno(symmetric)}; "
        f"similar-but-not-symmetric pairs: {len(gap_report.merged_but_not_symmetric)}"
    )
    lines.append("")
    lines.append(
        format_table(
            ["model"] + list(POWER_ORDER),
            [("selection possible",) + tuple(yesno(decisions[m]) for m in POWER_ORDER)],
        )
    )
    lines.append("")
    lines.append(f"renaming possible (Q): {yesno(renaming)}")
    lines.append(
        "committee sizes possible (Q): "
        + (",".join(map(str, committee_sizes)) or "-")
    )
    text = "\n".join(lines)
    return SystemReport(
        description=title,
        processor_classes=quotient.processor_class_count,
        variable_classes=quotient.variable_class_count,
        symmetric=symmetric,
        gap=gap_report.gap,
        decisions=decisions,
        renaming=renaming,
        committee_sizes=committee_sizes,
        text=text,
    )
