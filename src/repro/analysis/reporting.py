"""Paper-style text tables for benchmark and experiment output.

Every benchmark prints its findings through these helpers so that
``pytest benchmarks/ --benchmark-only`` regenerates the qualitative
content of the paper (the claims of Theorems 1-11 and Figures 1-5) as
readable tables, which EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple aligned text table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> None:
    print()
    print(format_table(headers, rows, title))


def yesno(value: bool) -> str:
    return "yes" if value else "no"
