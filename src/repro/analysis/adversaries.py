"""Adaptive adversarial schedulers.

Theorem 6 promises Algorithm 2 converges under *every* fair schedule --
including schedules chosen adaptively by an adversary who inspects the
whole configuration after each step.  The oblivious batteries elsewhere
can miss adversarial interleavings; the schedulers here actively try to
hurt the algorithms while respecting a fairness bound:

* :class:`StallLearningAdversary` -- within a k-bounded-fair envelope,
  prefer stepping processors whose suspect sets are already singletons
  (wasted work) and starve the most-uncertain processor as long as the
  bound allows.
* :class:`LockContentionAdversary` -- schedule processors about to *fail*
  a lock acquisition first, maximizing contention in L programs.

Tests run Algorithms 2 and 4 under these adversaries and assert the
theorems survive.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.names import NodeId
from ..runtime.actions import Lock
from ..runtime.scheduler import Scheduler


class _BoundedAdaptive(Scheduler):
    """k-bounded fairness envelope around an adaptive preference."""

    def __init__(self, processors, k: Optional[int] = None) -> None:
        self._procs = tuple(processors)
        n = len(self._procs)
        self.k = k if k is not None else 3 * n
        if self.k < n:
            raise ValueError(f"k={self.k} below processor count {n}")
        self._last_run: Dict[NodeId, int] = {p: -1 for p in self._procs}

    def _score(self, processor: NodeId, view) -> float:  # pragma: no cover
        raise NotImplementedError

    def next_processor(self, step_index: int, view) -> NodeId:
        overdue = [
            p
            for p in self._procs
            if step_index - self._last_run[p] >= self.k - 1
        ]
        if overdue:
            choice = min(overdue, key=lambda p: (self._last_run[p], repr(p)))
        else:
            # Highest adversarial score wins; ties broken deterministically.
            choice = max(
                self._procs, key=lambda p: (self._score(p, view), repr(p))
            )
        self._last_run[choice] = step_index
        return choice

    def reset(self) -> None:
        self._last_run = {p: -1 for p in self._procs}


class StallLearningAdversary(_BoundedAdaptive):
    """Starve the most-uncertain processor; burn steps on settled ones.

    Scores a processor by how *little* it has left to learn: settled
    processors (singleton PEC or halted) are preferred, the processor
    with the largest suspect set is only stepped when the bound forces
    it.  ``uncertainty_of`` maps a local state to a number (e.g.
    ``len(state.pec)``).
    """

    def __init__(
        self,
        processors,
        uncertainty_of: Callable[[object], float],
        k: Optional[int] = None,
    ) -> None:
        super().__init__(processors, k)
        self._uncertainty_of = uncertainty_of

    def _score(self, processor: NodeId, view) -> float:
        if view is None:
            return 0.0
        try:
            uncertainty = self._uncertainty_of(view.local[processor])
        except Exception:
            uncertainty = 0.0
        return -float(uncertainty)


def pec_uncertainty(state) -> float:
    """Uncertainty measure for Algorithm-2-family local states."""
    pec = getattr(state, "pec", None)
    if pec is None:
        inner = getattr(state, "inner", None)
        if inner is not None:
            return pec_uncertainty(inner)
        return 0.0
    return float(len(pec))


class LockContentionAdversary(_BoundedAdaptive):
    """Prefer stepping processors whose next action is a doomed lock.

    Maximizes failed acquisitions and retry spinning in L programs while
    staying k-bounded fair.
    """

    def _score(self, processor: NodeId, view) -> float:
        if view is None:
            return 0.0
        try:
            state = view.local[processor]
            action = view.program.next_action(state)
        except Exception:
            return 0.0
        if isinstance(action, Lock):
            variable = view.vars[view.system.n_nbr(processor, action.name)]
            if getattr(variable, "locked", False):
                return 2.0  # a guaranteed-failed lock: pure waste
            return 1.0  # taking a lock someone else may want
        return 0.0
