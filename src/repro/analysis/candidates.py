"""Candidate selection programs for the Theorem 1 adversary.

Theorem 1 quantifies over all programs; a runtime experiment cannot, so
the benchmark instead feeds the adversary a zoo of plausible attempts --
the kinds of programs one might naively write to solve selection with
only reads and writes -- and shows each one falls to a starvation or
double-selection schedule.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from ..core.names import Name
from ..runtime.actions import Action, Internal, Read, Write
from ..runtime.program import FunctionalProgram, Program


def select_immediately() -> Program:
    """Selects itself on its first step.  (Violates Uniqueness trivially.)"""

    def action(state: Action) -> Action:
        return Internal("select")

    return FunctionalProgram(
        initial=lambda s0: ("start",),
        action=lambda st: Internal("select"),
        step=lambda st, a, r: ("selected",),
        selected=lambda st: st == ("selected",),
    )


def grab_flag(name: Name) -> Program:
    """Read the shared variable; if untouched, write a claim and select.

    The classic doomed test-and-set built from separate read and write
    steps: two processors can both read "untouched" before either
    writes.
    """

    def act(st):
        stage = st[0]
        if stage == "read":
            return Read(name)
        if stage == "claim":
            return Write(name, "claimed")
        return Internal("idle")

    def step(st, a, r):
        stage = st[0]
        if stage == "read":
            if r == "claimed":
                return ("lost",)
            return ("claim",)
        if stage == "claim":
            return ("selected",)
        return st

    return FunctionalProgram(
        initial=lambda s0: ("read",),
        action=act,
        step=step,
        selected=lambda st: st == ("selected",),
    )


def polite_grab_flag(name: Name) -> Program:
    """Write a mark, re-read, select if the mark survived.

    Politeness does not help: with identical anonymous processors the
    marks are identical, so a survivor check cannot tell *whose* mark
    survived.
    """

    def act(st):
        stage = st[0]
        if stage == "mark":
            return Write(name, "mark")
        if stage == "check":
            return Read(name)
        return Internal("idle")

    def step(st, a, r):
        stage = st[0]
        if stage == "mark":
            return ("check",)
        if stage == "check":
            if r == "mark":
                return ("selected",)
            return ("lost",)
        return st

    return FunctionalProgram(
        initial=lambda s0: ("mark",),
        action=act,
        step=step,
        selected=lambda st: st == ("selected",),
    )


def wait_then_claim(name: Name, patience: int) -> Program:
    """Spin for ``patience`` internal steps, then do grab-flag.

    Waiting cannot help under general schedules: the adversary just
    starves the waiter (or lets both wait in lockstep).
    """

    inner = grab_flag(name)

    def act(st):
        if st[0] == "wait":
            return Internal("wait")
        return inner.next_action(st[1])

    def step(st, a, r):
        if st[0] == "wait":
            remaining = st[1] - 1
            if remaining <= 0:
                return ("go", inner.initial_state(None))
            return ("wait", remaining)
        return ("go", inner.transition(st[1], a, r))

    return FunctionalProgram(
        initial=lambda s0: ("wait", patience),
        action=act,
        step=step,
        selected=lambda st: st[0] == "go" and inner.is_selected(st[1]),
    )


def candidate_zoo(name: Name) -> List[Tuple[str, Callable[[], Program]]]:
    """All candidate builders, with display names."""
    return [
        ("select-immediately", select_immediately),
        ("grab-flag", lambda: grab_flag(name)),
        ("polite-grab-flag", lambda: polite_grab_flag(name)),
        ("wait-then-claim", lambda: wait_then_claim(name, patience=3)),
        ("tournament-3", lambda: tournament(name, rounds=3)),
        ("sticky-beacon", lambda: sticky_beacon(name)),
    ]


def tournament(name: Name, rounds: int) -> Program:
    """Alternate writing a round counter and reading for a collision.

    Each round: write my round number, read back; if the value ever
    differs from what I wrote, somebody else exists -- defer to them by
    one round.  After ``rounds`` undisturbed rounds, select.  Under
    general schedules lockstep twins never disturb each other
    (identical writes!), so they finish together.
    """

    def act(st):
        phase, r = st[0], st[1]
        if phase == "write":
            return Write(name, ("round", r))
        if phase == "read":
            return Read(name)
        return Internal("idle")

    def step(st, a, r):
        phase, rnd = st[0], st[1]
        if phase == "write":
            return ("read", rnd)
        if phase == "read":
            if r != ("round", rnd):
                return ("write", max(0, rnd - 1))  # defer
            if rnd + 1 >= rounds:
                return ("selected", rnd)
            return ("write", rnd + 1)
        return st

    return FunctionalProgram(
        initial=lambda s0: ("write", 0),
        action=act,
        step=step,
        selected=lambda st: st[0] == "selected",
    )


def sticky_beacon(name: Name) -> Program:
    """Write a beacon once, then poll; select when the beacon survives
    two consecutive reads.  Survivable only if nobody else writes -- but
    identical twins write identical beacons."""

    def act(st):
        phase = st[0]
        if phase == "write":
            return Write(name, "beacon")
        if phase in ("poll1", "poll2"):
            return Read(name)
        return Internal("idle")

    def step(st, a, r):
        phase = st[0]
        if phase == "write":
            return ("poll1",)
        if phase == "poll1":
            return ("poll2",) if r == "beacon" else ("write",)
        if phase == "poll2":
            return ("selected",) if r == "beacon" else ("write",)
        return st

    return FunctionalProgram(
        initial=lambda s0: ("write",),
        action=act,
        step=step,
        selected=lambda st: st == ("selected",),
    )
