"""Analysis tools: the Theorem-1 adversary, candidate zoo, reporting."""

from .adversaries import (
    LockContentionAdversary,
    StallLearningAdversary,
    pec_uncertainty,
)
from .candidates import (
    candidate_zoo,
    grab_flag,
    polite_grab_flag,
    select_immediately,
    sticky_beacon,
    tournament,
    wait_then_claim,
)
from .explore import (
    ExploreResult,
    ExploreSpec,
    ExploreStats,
    Violation,
    run_explore,
    verify_counterexample,
    write_counterexample,
)
from .flp import Refutation, crash_as_schedule, refute_selection
from .parametric import (
    CutoffCertificate,
    LabelingSchema,
    SizeRecord,
    StateAbstraction,
    compute_labeling_schema,
    detect_cutoff,
    run_parametric,
    verify_cutoff,
)
from .reporting import format_table, print_table, yesno
from .system_report import SystemReport, full_report
from .witness_engine import (
    DecisionCache,
    SweepResult,
    SweepSpec,
    WitnessRecord,
    run_sweep,
    shard_plan,
)
from .witness_search import Witness, enumerate_networks, find_witnesses, smallest_witness

__all__ = [
    "CutoffCertificate",
    "DecisionCache",
    "ExploreResult",
    "ExploreSpec",
    "ExploreStats",
    "LabelingSchema",
    "LockContentionAdversary",
    "Refutation",
    "SizeRecord",
    "StallLearningAdversary",
    "StateAbstraction",
    "SweepResult",
    "SweepSpec",
    "SystemReport",
    "Violation",
    "Witness",
    "WitnessRecord",
    "candidate_zoo",
    "compute_labeling_schema",
    "crash_as_schedule",
    "detect_cutoff",
    "enumerate_networks",
    "find_witnesses",
    "format_table",
    "full_report",
    "grab_flag",
    "polite_grab_flag",
    "print_table",
    "pec_uncertainty",
    "refute_selection",
    "run_explore",
    "run_parametric",
    "run_sweep",
    "verify_cutoff",
    "shard_plan",
    "smallest_witness",
    "tournament",
    "select_immediately",
    "sticky_beacon",
    "verify_counterexample",
    "wait_then_claim",
    "write_counterexample",
    "yesno",
]
