"""Automatic search for model-separation witnesses.

The hierarchy benchmarks use hand-built witnesses; this tool *finds*
witnesses by exhausting small systems, which both double-checks the
hand-built ones (they are not flukes) and answers new questions ("is
there a 2-processor system separating X from Y at all?").

Enumeration: all networks with ``n_processors`` processors, ``n_names``
names and at most ``n_variables`` variables (every function
processors x names -> variables), optionally with one marked initial
state on any single node -- processor *or* variable -- deduplicated up
to isomorphism via canonical forms.  For each system the selection
decision is computed under both models; systems where the weaker model
fails and the stronger succeeds are yielded.

The sweep itself is executed by :mod:`repro.analysis.witness_engine`
(sharded enumeration, cross-shard decision caching, JSONL checkpoints);
:func:`find_witnesses` is the thin serial-facing wrapper and returns
exactly what the engine returns on any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Optional

from ..core.network import Network
from ..core.system import System


def enumerate_networks(
    n_processors: int, n_names: int, n_variables: int
) -> Iterator[Network]:
    """All networks on the given node budget (up to variable renaming).

    Variables are used densely: a network whose edge targets skip
    ``v1`` while using ``v2`` is isomorphic to a denser one, so we demand
    the used variable set be a prefix of ``v0..``; full isomorphism
    dedup happens in the caller via canonical forms.
    """
    procs = [f"p{i}" for i in range(n_processors)]
    names = [f"n{i}" for i in range(n_names)]
    variables = [f"v{j}" for j in range(n_variables)]
    slots = [(p, n) for p in procs for n in names]
    for assignment in product(range(n_variables), repeat=len(slots)):
        used = sorted(set(assignment))
        if used != list(range(len(used))):
            continue  # not a dense prefix; isomorphic duplicate
        edges: Dict[str, Dict[str, str]] = {p: {} for p in procs}
        for (p, n), v in zip(slots, assignment):
            edges[p][n] = variables[v]
        yield Network(names, edges)


@dataclass(frozen=True)
class Witness:
    """A found separation witness."""

    system: System
    weaker: str
    stronger: str

    def describe(self) -> str:
        net = self.system.network
        parts = []
        for p in net.processors:
            nbrs = net.neighbors_of_processor(p)
            parts.append(
                f"{p}:{{{', '.join(f'{n}->{v}' for n, v in sorted(nbrs.items()))}}}"
            )
        marks = [n for n in self.system.nodes if self.system.state0(n) != 0]
        mark_part = f" marks={marks}" if marks else ""
        return "; ".join(parts) + mark_part


def find_witnesses(
    weaker: str,
    stronger: str,
    max_processors: int = 3,
    max_names: int = 2,
    max_variables: int = 3,
    allow_marks: bool = False,
    limit: int = 1,
) -> List[Witness]:
    """Search small systems where ``weaker`` fails and ``stronger`` works.

    A thin wrapper over :func:`repro.analysis.witness_engine.run_sweep`
    in serial mode; the sharded engine returns the identical list.

    Args:
        weaker/stronger: model labels from
            :data:`repro.core.hierarchy.MODEL_AXIS` (e.g. ``"Q"``, ``"L"``).
        max_*: enumeration bounds (cost grows as
            ``variables ** (processors * names)``).
        allow_marks: also try marking one node's initial state (each
            processor and each variable in turn).
        limit: stop after this many witnesses.
    """
    from .witness_engine import SweepSpec, run_sweep

    spec = SweepSpec(
        weaker=weaker,
        stronger=stronger,
        max_processors=max_processors,
        max_names=max_names,
        max_variables=max_variables,
        allow_marks=allow_marks,
        limit=limit,
    )
    return run_sweep(spec, workers=0).witnesses


def smallest_witness(
    weaker: str, stronger: str, allow_marks: bool = False
) -> Optional[Witness]:
    """The first witness in size order, or None within default bounds."""
    found = find_witnesses(weaker, stronger, allow_marks=allow_marks, limit=1)
    return found[0] if found else None
