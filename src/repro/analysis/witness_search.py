"""Automatic search for model-separation witnesses.

The hierarchy benchmarks use hand-built witnesses; this tool *finds*
witnesses by exhausting small systems, which both double-checks the
hand-built ones (they are not flukes) and answers new questions ("is
there a 2-processor system separating X from Y at all?").

Enumeration: all networks with ``n_processors`` processors, ``n_names``
names and at most ``n_variables`` variables (every function
processors x names -> variables), optionally with one marked initial
state, deduplicated up to isomorphism via canonical forms.  For each
system the selection decision is computed under both models; systems
where the weaker model fails and the stronger succeeds are yielded.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Optional

from ..core.hierarchy import MODEL_AXIS
from ..core.network import Network
from ..core.quotient import canonical_form
from ..core.selection import decide_selection
from ..core.system import System

_MODEL_BY_NAME = {label: (iset, sched) for label, iset, sched in MODEL_AXIS}


def enumerate_networks(
    n_processors: int, n_names: int, n_variables: int
) -> Iterator[Network]:
    """All networks on the given node budget (up to variable renaming).

    Variables are used densely: a network whose edge targets skip
    ``v1`` while using ``v2`` is isomorphic to a denser one, so we demand
    the used variable set be a prefix of ``v0..``; full isomorphism
    dedup happens in the caller via canonical forms.
    """
    procs = [f"p{i}" for i in range(n_processors)]
    names = [f"n{i}" for i in range(n_names)]
    variables = [f"v{j}" for j in range(n_variables)]
    slots = [(p, n) for p in procs for n in names]
    for assignment in product(range(n_variables), repeat=len(slots)):
        used = sorted(set(assignment))
        if used != list(range(len(used))):
            continue  # not a dense prefix; isomorphic duplicate
        edges: Dict[str, Dict[str, str]] = {p: {} for p in procs}
        for (p, n), v in zip(slots, assignment):
            edges[p][n] = variables[v]
        yield Network(names, edges)


@dataclass(frozen=True)
class Witness:
    """A found separation witness."""

    system: System
    weaker: str
    stronger: str

    def describe(self) -> str:
        net = self.system.network
        parts = []
        for p in net.processors:
            nbrs = net.neighbors_of_processor(p)
            parts.append(
                f"{p}:{{{', '.join(f'{n}->{v}' for n, v in sorted(nbrs.items()))}}}"
            )
        marks = [n for n in self.system.nodes if self.system.state0(n) != 0]
        mark_part = f" marks={marks}" if marks else ""
        return "; ".join(parts) + mark_part


def find_witnesses(
    weaker: str,
    stronger: str,
    max_processors: int = 3,
    max_names: int = 2,
    max_variables: int = 3,
    allow_marks: bool = False,
    limit: int = 1,
) -> List[Witness]:
    """Search small systems where ``weaker`` fails and ``stronger`` works.

    Args:
        weaker/stronger: model labels from
            :data:`repro.core.hierarchy.MODEL_AXIS` (e.g. ``"Q"``, ``"L"``).
        max_*: enumeration bounds (cost grows as
            ``variables ** (processors * names)``).
        allow_marks: also try marking one processor's initial state.
        limit: stop after this many witnesses.
    """
    from ..core.quotient import are_isomorphic

    w_iset, w_sched = _MODEL_BY_NAME[weaker]
    s_iset, s_sched = _MODEL_BY_NAME[stronger]
    # Dedup up to exact isomorphism: canonical forms bucket the
    # candidates (they are isomorphism-invariant but not complete --
    # quotient-identical non-isomorphic systems exist), the matcher
    # settles collisions.
    seen: Dict[object, List[System]] = {}
    out: List[Witness] = []
    for n_procs in range(1, max_processors + 1):
        for n_names in range(1, max_names + 1):
            for net in enumerate_networks(n_procs, n_names, max_variables):
                markings: List[Optional[str]] = [None]
                if allow_marks:
                    markings += list(net.processors)
                for mark in markings:
                    state = {mark: 1} if mark is not None else {}
                    probe = System(net, state, w_iset, w_sched)
                    form = canonical_form(probe)
                    bucket = seen.setdefault(form, [])
                    if any(are_isomorphic(probe, prior) for prior in bucket):
                        continue
                    bucket.append(probe)
                    weak_decision = decide_selection(probe)
                    if weak_decision.possible:
                        continue
                    strong = System(net, state, s_iset, s_sched)
                    if decide_selection(strong).possible:
                        out.append(Witness(strong, weaker, stronger))
                        if len(out) >= limit:
                            return out
    return out


def smallest_witness(
    weaker: str, stronger: str, allow_marks: bool = False
) -> Optional[Witness]:
    """The first witness in size order, or None within default bounds."""
    found = find_witnesses(weaker, stronger, allow_marks=allow_marks, limit=1)
    return found[0] if found else None
