"""Long-lived analysis serving (:mod:`repro.serve`).

An asyncio front end over the analysis engines: scenario specs in the
existing JSON-able registry vocabulary arrive over HTTP or stdio,
concurrent requests are coalesced into :func:`~repro.perf.batch
.batch_similarity` / witness-sweep / exploration waves, and obs events
stream back while jobs run.  Every wave works through the persistent
content-addressed store (:mod:`repro.store`), so decisions, similarity
summaries and orbit canonical keys computed for one request are free for
every later one — in this process or any other.

Entry points: ``python -m repro serve`` (HTTP and/or stdio front ends)
and ``python -m repro bench-serve`` (seeded concurrent load generator;
``BENCH_serve.json``).
"""

from .service import AnalysisService, ServeError

__all__ = ["AnalysisService", "ServeError"]
