"""The analysis service: request coalescing over store-backed engines.

:class:`AnalysisService` is the front-end-agnostic core of
``python -m repro serve``.  Requests are plain JSON documents in the
registry vocabulary the CLI already speaks::

    {"op": "similarity", "scenario": {"topology": "ring", "size": 6,
                                      "marks": ["p0"]}}
    {"op": "witness",    "spec": {"weaker": "Q", "stronger": "L",
                                  "max_processors": 2, ...}}
    {"op": "explore",    "spec": {"scenario": {...}, "max_depth": 6, ...}}
    {"op": "stats"}

Three mechanisms stack:

* **Coalescing** -- requests queue per op kind; a wave loop drains the
  queue after a short batch window and executes the wave at once.
  Similarity waves become one :func:`~repro.perf.batch.batch_similarity`
  call over every distinct system in the wave; witness/explore waves
  dedup identical specs so concurrent equal requests share one run.
* **Store backing** -- one :class:`~repro.store.ContentStore` (optional
  but recommended) persists selection decisions (through the shared
  :class:`~repro.analysis.witness_engine.DecisionCache`), similarity
  summaries (keyed by system fingerprint + engine), and orbit canonical
  keys, so answers computed for any request — or any earlier process —
  are reused, not recomputed.
* **Event streaming** -- a request may subscribe to obs events
  (``WitnessSearchProgress``, ``ExplorationProgress``, ...); the wave
  runs in a worker thread and forwards each event back onto the event
  loop as it is emitted, so front ends can stream progress while the
  job runs.  Completed waves additionally emit a
  :class:`~repro.obs.events.ServeWave` summary on the service hub.

Engine work runs on a single worker thread: the engines themselves
multi-process when asked (``engine_workers``), and one thread serializes
access to the shared caches without locking them.

Three robustness mechanisms harden the service for sustained load:

* **Deadlines** -- a request may carry ``"deadline"`` (seconds), and
  the service may impose ``default_deadline``; a request whose wave has
  not answered in time gets ``{"error": "deadline"}`` instead of a hung
  client.  The wave itself keeps running — a timed-out request never
  poisons its wave-mates, whose futures resolve normally.
* **Graceful drain** -- :meth:`stop` (the default path) stops accepting
  new requests, lets every queued wave execute to completion, flushes
  the store, and only then shuts the worker pool down; nothing enqueued
  before the stop is dropped.  ``stop(drain=False)`` is the hard path
  that cancels in-flight waves.
* **Degraded mode** -- a store that becomes unwritable at runtime
  (read-only root, disk full) is detached instead of taking the service
  down: the failed job is retried memory-only, a
  :class:`~repro.obs.events.ServeDegraded` event is emitted, and
  ``stats`` reports ``"store": "degraded"`` from then on.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional

from ..core.encoding import encode_value
from ..exceptions import ReproError, ServeError
from ..obs.events import EventHub, ServeDegraded, ServeWave

#: Operations the service understands. ``stats`` is answered inline;
#: the rest are coalesced into waves.
OPS = ("similarity", "witness", "explore", "stats")

#: Queue sentinel: a draining stop; the wave loop answers everything
#: queued ahead of it, then exits.
_SHUTDOWN = object()


class _EventForwarder:
    """An obs sink bridging a worker thread back onto the event loop."""

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 callbacks: List[Callable[[dict], None]]) -> None:
        self._loop = loop
        self._callbacks = callbacks

    def on_event(self, event) -> None:
        doc = event.to_json()
        for callback in self._callbacks:
            self._loop.call_soon_threadsafe(callback, doc)


class _Pending:
    """One enqueued request: its payload, future, and event subscriber."""

    __slots__ = ("request", "key", "future", "on_event")

    def __init__(self, request: dict, future: "asyncio.Future",
                 on_event: Optional[Callable[[dict], None]]) -> None:
        self.request = request
        self.key = json.dumps(request, sort_keys=True)
        self.future = future
        self.on_event = on_event


class AnalysisService:
    """Coalescing, store-backed front end over the analysis engines.

    Args:
        store_dir: directory of the persistent content store; None runs
            memory-only (coalescing still works, nothing survives the
            process).
        engine_workers: process-pool size handed to the witness/explore
            engines per job (0 = serial in-process, the safe default for
            a service that is itself concurrent).
        batch_window: seconds a wave loop waits after the first request
            before draining the queue — the coalescing knob.
        default_deadline: seconds a request may wait for its answer
            before ``{"error": "deadline"}`` comes back instead; None
            (the default) means requests wait forever unless they carry
            their own ``"deadline"`` field.
        store_max_bytes: byte cap handed to the store; every flush
            evicts oldest entries back under it (see
            :mod:`repro.store.gc`).
    """

    def __init__(
        self,
        store_dir: Optional[str] = None,
        engine_workers: int = 0,
        batch_window: float = 0.01,
        default_deadline: Optional[float] = None,
        store_max_bytes: Optional[int] = None,
    ) -> None:
        from ..analysis.witness_engine import DecisionCache
        from ..perf.batch import SimilarityCache

        self.hub = EventHub()
        self.store = None
        self.store_degraded: Optional[str] = None  # reason, once detached
        if store_dir is not None:
            from ..store import ContentStore

            self.store = ContentStore(store_dir, max_bytes=store_max_bytes)
            self.store.hub = self.hub
        self.engine_workers = int(engine_workers)
        self.batch_window = float(batch_window)
        self.default_deadline = (
            float(default_deadline) if default_deadline is not None else None
        )
        self.decisions = DecisionCache()
        if self.store is not None:
            self.decisions.attach_store(self.store)
        self.similarity_results = SimilarityCache()
        self._summaries: Dict[str, dict] = {}
        self.counters: Dict[str, int] = {
            "requests": 0,
            "waves": 0,
            "jobs": 0,
            "coalesced": 0,
            "errors": 0,
            "similarity_summary_hits": 0,
            "deadline_errors": 0,
            "rejected": 0,
        }
        self._queues: Dict[str, "asyncio.Queue"] = {}
        self._loops: List["asyncio.Task"] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._started = False
        self._stopping = False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Start the wave loops; idempotent."""
        if self._started:
            return
        self._started = True
        self._stopping = False
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        for op in ("similarity", "witness", "explore"):
            self._queues[op] = asyncio.Queue()
            self._loops.append(asyncio.ensure_future(self._wave_loop(op)))

    async def stop(self, drain: bool = True) -> None:
        """Stop the service: drain queued waves, flush, shut down.

        With ``drain`` (the default) every request enqueued before the
        stop is answered — the wave loops execute what is queued, then
        exit; requests arriving *during* the drain are rejected with
        ``{"error": "service is shutting down"}``.  ``drain=False``
        cancels the wave loops immediately (queued futures are
        cancelled).  Either way the store is flushed before returning.
        """
        if not self._started:
            return
        self._started = False
        self._stopping = True
        try:
            if drain:
                for queue in self._queues.values():
                    queue.put_nowait(_SHUTDOWN)
                await asyncio.gather(*self._loops, return_exceptions=True)
            else:
                for task in self._loops:
                    task.cancel()
                for task in self._loops:
                    try:
                        await task
                    except asyncio.CancelledError:
                        pass
            self._loops.clear()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            self.flush()
        finally:
            self._stopping = False

    def flush(self) -> None:
        """Flush staged store writes; an unwritable store degrades the
        service (memory-only) instead of raising."""
        if self.store is None:
            return
        try:
            self.store.flush()
        except OSError as exc:
            self._degrade(f"store flush failed: {exc}")

    def _degrade(self, reason: str) -> None:
        """Detach an unwritable store at runtime; keep serving from
        memory.  Callable from the worker thread or the event loop."""
        if self.store is None:
            return
        self.store = None
        self.store_degraded = reason
        self.decisions.detach_store()
        if self.hub.active:
            self.hub.emit(ServeDegraded(reason=reason))

    async def __aenter__(self) -> "AnalysisService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- the public entry point ----------------------------------------

    async def submit(
        self,
        request: dict,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Answer one request document.

        Returns the result document; service-level failures come back as
        ``{"error": ...}`` rather than raising, so one bad request never
        takes a front end down.  ``on_event`` (if given) receives obs
        event documents on the event loop while the job runs.

        A ``"deadline"`` field (positive seconds) bounds how long this
        request waits for its answer; past it, ``{"error": "deadline"}``
        comes back while the wave keeps running for its wave-mates.  The
        field is stripped before coalescing, so requests differing only
        in deadline still share one job.
        """
        self.counters["requests"] += 1
        if self._stopping:
            self.counters["rejected"] += 1
            return {"error": "service is shutting down"}
        if not isinstance(request, dict):
            self.counters["errors"] += 1
            return {"error": "request must be a JSON object"}
        request = dict(request)
        deadline = request.pop("deadline", self.default_deadline)
        if deadline is not None:
            try:
                deadline = float(deadline)
                if not deadline > 0:
                    raise ValueError
            except (TypeError, ValueError):
                self.counters["errors"] += 1
                return {
                    "error": "deadline must be a positive number of seconds"
                }
        op = request.get("op")
        if op == "stats":
            return self.stats_doc()
        if op not in OPS:
            self.counters["errors"] += 1
            return {"error": f"unknown op {op!r}; pick from {list(OPS)}"}
        if not self._started:
            await self.start()
        future: "asyncio.Future" = asyncio.get_event_loop().create_future()
        await self._queues[op].put(_Pending(request, future, on_event))
        if deadline is None:
            return await future
        try:
            # Shielded: the timeout abandons *this* wait, never the wave
            # job — wave-mates sharing the future's batch are unharmed.
            return await asyncio.wait_for(asyncio.shield(future), deadline)
        except asyncio.TimeoutError:
            self.counters["deadline_errors"] += 1
            return {"error": "deadline", "op": op, "deadline_s": deadline}

    # -- coalescing ----------------------------------------------------

    async def _wave_loop(self, op: str) -> None:
        queue = self._queues[op]
        stopping = False
        while not stopping:
            first = await queue.get()
            if first is _SHUTDOWN:
                break
            batch = [first]
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)
            while not queue.empty():
                item = queue.get_nowait()
                if item is _SHUTDOWN:
                    stopping = True  # answer this batch, then exit
                else:
                    batch.append(item)
            try:
                await self._run_wave(op, batch)
            except asyncio.CancelledError:
                for pending in batch:
                    if not pending.future.done():
                        pending.future.cancel()
                raise
            except BaseException as exc:  # wave must never die silently
                self.counters["errors"] += 1
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_result({"error": str(exc)})

    async def _run_wave(self, op: str, batch: List[_Pending]) -> None:
        loop = asyncio.get_event_loop()
        t0 = time.perf_counter()
        groups: Dict[str, List[_Pending]] = {}
        for pending in batch:
            groups.setdefault(pending.key, []).append(pending)
        self.counters["waves"] += 1
        self.counters["jobs"] += len(groups)
        self.counters["coalesced"] += len(batch) - len(groups)

        if op == "similarity":
            results = await loop.run_in_executor(
                self._pool, self._similarity_wave,
                [group[0].request for group in groups.values()],
            )
            for group, result in zip(groups.values(), results):
                for pending in group:
                    pending.future.set_result(dict(result))
        else:
            for group in groups.values():
                callbacks = [p.on_event for p in group if p.on_event]
                hub: Optional[EventHub] = None
                if callbacks:
                    hub = EventHub()
                    hub.attach(_EventForwarder(loop, callbacks))
                result = await loop.run_in_executor(
                    self._pool, self._execute_one, op, group[0].request, hub
                )
                for pending in group:
                    pending.future.set_result(dict(result))
        self.flush()
        if self.hub.active:
            self.hub.emit(
                ServeWave(
                    op=op,
                    requests=len(batch),
                    jobs=len(groups),
                    elapsed_ms=(time.perf_counter() - t0) * 1000.0,
                )
            )

    # -- job execution (worker thread) ---------------------------------

    def _similarity_wave(self, requests: List[dict]) -> List[dict]:
        """One wave of similarity requests: summaries for the whole list.

        Every request resolves against the summary memo (and through the
        store) first; the remainder is one :func:`batch_similarity` call
        over the distinct unsolved systems, which dedups by fingerprint
        and reuses the service's result cache.
        """
        out: List[dict] = []
        prepared: List[tuple] = []
        for req in requests:
            try:
                prepared.append(self._prepare_similarity(req))
            except ReproError as exc:
                # One malformed scenario fails its own request, never
                # its wave-mates.
                self.counters["errors"] += 1
                prepared.append((None, None, {"error": str(exc)}))
        todo = [
            (i, system, engine)
            for i, (system, engine, summary) in enumerate(prepared)
            if summary is None
        ]
        if todo:
            from ..perf.batch import batch_similarity

            engines: Dict[str, list] = {}
            for i, system, engine in todo:
                engines.setdefault(engine, []).append((i, system))
            for engine, items in engines.items():
                report = batch_similarity(
                    [system for _i, system in items],
                    engine=engine,
                    workers=self.engine_workers,
                    cache=self.similarity_results,
                )
                for (i, system), result in zip(items, report.results):
                    summary = self._summarize_similarity(
                        system, engine, result
                    )
                    prepared[i] = (system, engine, summary)
        for system, engine, summary in prepared:
            doc = dict(summary)
            if system is not None:
                doc["op"] = "similarity"
            out.append(doc)
        return out

    def _prepare_similarity(self, request: dict):
        """Build the system; answer from the summary memo/store if known."""
        from ..obs.scenarios import build_scenario
        from ..perf.batch import system_fingerprint

        scenario = request.get("scenario")
        if not isinstance(scenario, dict):
            raise ServeError("similarity request needs a 'scenario' object")
        engine = str(request.get("engine", "worklist"))
        system = build_scenario(scenario).system
        fingerprint = system_fingerprint(system)
        memo_key = f"{fingerprint}:{engine}"
        summary = self._summaries.get(memo_key)
        if summary is None and self.store is not None:
            from ..store import NS_SIMILARITY

            summary = self.store.get(
                NS_SIMILARITY, encode_value((fingerprint, engine))
            )
            if summary is not None:
                self._summaries[memo_key] = summary
        if summary is not None:
            self.counters["similarity_summary_hits"] += 1
        return system, engine, summary

    def _summarize_similarity(self, system, engine: str, result) -> dict:
        """Summarize one refinement result; memoize and persist it."""
        from ..perf.batch import system_fingerprint

        blocks: Dict[Any, List[str]] = {}
        for proc in system.processors:
            blocks.setdefault(result.labeling[proc], []).append(str(proc))
        fingerprint = system_fingerprint(system)
        summary = {
            "fingerprint": fingerprint,
            "engine": engine,
            "classes": sorted(sorted(block) for block in blocks.values()),
            "stats": {
                "rounds": result.stats.rounds,
                "splits": result.stats.splits,
                "classes": result.stats.classes,
            },
        }
        self._summaries[f"{fingerprint}:{engine}"] = summary
        if self.store is not None:
            from ..store import NS_SIMILARITY

            try:
                self.store.put(
                    NS_SIMILARITY, encode_value((fingerprint, engine)), summary
                )
            except OSError as exc:  # put auto-flushes past its threshold
                self._degrade(f"store write failed: {exc}")
        return summary

    def _execute_one(self, op: str, request: dict,
                     hub: Optional[EventHub]) -> dict:
        try:
            return self._run_job(op, request, hub)
        except ReproError as exc:
            self.counters["errors"] += 1
            return {"error": str(exc)}
        except OSError as exc:
            # The store went unwritable mid-job (read-only root, disk
            # full): detach it and answer the request memory-only.
            self._degrade(f"store write failed during {op} job: {exc}")
            try:
                return self._run_job(op, request, hub)
            except ReproError as exc2:
                self.counters["errors"] += 1
                return {"error": str(exc2)}

    def _run_job(self, op: str, request: dict,
                 hub: Optional[EventHub]) -> dict:
        if op == "witness":
            return self._witness_job(request, hub)
        return self._explore_job(request, hub)

    def _witness_job(self, request: dict, hub: Optional[EventHub]) -> dict:
        from ..analysis.witness_engine import SweepSpec, run_sweep

        spec_doc = request.get("spec")
        if not isinstance(spec_doc, dict):
            raise ServeError("witness request needs a 'spec' object")
        spec = SweepSpec.from_json(spec_doc)
        misses_before = self.decisions.misses
        result = run_sweep(
            spec,
            workers=request.get("workers", self.engine_workers),
            cache=self.decisions,
            hub=hub,
            store=self.store,
        )
        return {
            "op": "witness",
            "spec": spec.to_json(),
            "witnesses": [w.describe() for w in result.witnesses],
            "count": len(result.witnesses),
            "stats": result.stats.to_json(),
            "cache_misses": self.decisions.misses - misses_before,
        }

    def _explore_job(self, request: dict, hub: Optional[EventHub]) -> dict:
        from ..analysis.explore import ExploreSpec, run_explore

        spec_doc = request.get("spec")
        if not isinstance(spec_doc, dict):
            raise ServeError("explore request needs a 'spec' object")
        spec = ExploreSpec.from_json(spec_doc)
        result = run_explore(
            spec,
            workers=request.get("workers", self.engine_workers),
            hub=hub,
            store=self.store,
        )
        return {
            "op": "explore",
            "verdict": "violation" if result.violation else "certified",
            "violation": (
                None if result.violation is None else result.violation.to_json()
            ),
            "unique_states": result.unique_states,
            "stats": result.stats.to_json(),
            "group_size": result.group_size,
        }

    # -- introspection -------------------------------------------------

    def stats_doc(self) -> dict:
        """The service's counter/stores snapshot (the ``stats`` op)."""
        doc: Dict[str, Any] = {
            "op": "stats",
            "counters": dict(self.counters),
            "decision_cache": {
                "entries": len(self.decisions),
                "hits": self.decisions.hits,
                "misses": self.decisions.misses,
                "store_hits": self.decisions.store_hits,
                "store_misses": self.decisions.store_misses,
            },
            "similarity_cache": {
                "entries": len(self.similarity_results),
                "hits": self.similarity_results.hits,
                "misses": self.similarity_results.misses,
                "summaries": len(self._summaries),
            },
        }
        if self.store is not None:
            doc["store"] = dict(
                self.store.stats.to_json(),
                root=self.store.root,
                status="ok",
            )
        elif self.store_degraded is not None:
            doc["store"] = "degraded"
            doc["store_degraded_reason"] = self.store_degraded
        return doc
