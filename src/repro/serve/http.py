"""Front ends for the analysis service: hand-rolled HTTP and stdio.

No third-party web framework — the container deliberately serves with
only the standard library, so this module speaks just enough HTTP/1.1
over raw asyncio streams:

* ``GET /v1/health`` — liveness: ``{"ok": true}``.
* ``GET /v1/stats``  — the service counter snapshot.
* ``POST /v1/analyze`` — body is one request document (see
  :mod:`repro.serve.service`); the response is the result document.
  With ``?stream=1`` the response is newline-delimited JSON
  (``application/x-ndjson``, ``Connection: close``): obs event
  documents as the job runs, then a final ``{"kind": "result", ...}``
  line.

The stdio front end speaks JSON lines: each input line is
``{"id": ..., "request": {...}, "stream": true?}``; output lines are
``{"id", "kind": "event"|"result", ...}``.  Requests on either front
end all feed the same :class:`~repro.serve.service.AnalysisService`,
so they coalesce into shared waves and share the store.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Optional, Tuple

from .service import AnalysisService

_MAX_HEADER_BYTES = 65536
_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Events buffered per streaming subscriber before the oldest-first
#: pump falls behind and new events are dropped (counted, reported).
_STREAM_QUEUE_LIMIT = 256


def _json_bytes(doc: dict) -> bytes:
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


def _error_status(result: dict) -> str:
    if result.get("error") == "deadline":
        return "504 Gateway Timeout"
    return "400 Bad Request"


class StreamBuffer:
    """A bounded per-subscriber event queue between service and socket.

    The service's event forwarder calls :meth:`offer` on the loop; a
    pump task dequeues and writes, awaiting the transport's ``drain()``
    after every line so a slow client applies backpressure to the pump
    instead of growing the write buffer without bound.  When the client
    is slower than the event stream, the bounded queue fills and the
    newest events are dropped (counted in :attr:`dropped`) — memory
    stays flat, the job never blocks.
    """

    def __init__(self, limit: int = _STREAM_QUEUE_LIMIT) -> None:
        self._queue: "asyncio.Queue" = asyncio.Queue(maxsize=max(1, limit))
        self.dropped = 0

    def offer(self, doc: dict) -> None:
        """Enqueue one event document; full queue drops it (counted)."""
        try:
            self._queue.put_nowait(doc)
        except asyncio.QueueFull:
            self.dropped += 1

    async def pump(self, write) -> None:
        """Drain the queue through ``await write(doc)`` until closed."""
        while True:
            doc = await self._queue.get()
            if doc is None:
                return
            await write(doc)

    async def close(self) -> None:
        """Signal end-of-stream; waits for a slot behind queued events."""
        await self._queue.put(None)


def _response(status: str, body: bytes,
              content_type: str = "application/json") -> bytes:
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


class HttpFrontend:
    """A minimal asyncio HTTP server over one :class:`AnalysisService`."""

    def __init__(self, service: AnalysisService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and serve; returns the (host, port) actually bound."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            await self._handle_request(reader, writer)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            writer.write(_response("431 Request Header Fields Too Large",
                                   _json_bytes({"error": "headers too large"})))
            await writer.drain()
            return
        if len(head) > _MAX_HEADER_BYTES:
            writer.write(_response("431 Request Header Fields Too Large",
                                   _json_bytes({"error": "headers too large"})))
            await writer.drain()
            return
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            writer.write(_response("400 Bad Request",
                                   _json_bytes({"error": "bad request line"})))
            await writer.drain()
            return
        headers = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        path, _, query = target.partition("?")

        if method == "GET" and path == "/v1/health":
            writer.write(_response("200 OK", _json_bytes({"ok": True})))
            await writer.drain()
            return
        if method == "GET" and path == "/v1/stats":
            writer.write(_response("200 OK",
                                   _json_bytes(self.service.stats_doc())))
            await writer.drain()
            return
        if method != "POST" or path != "/v1/analyze":
            writer.write(_response("404 Not Found",
                                   _json_bytes({"error": f"no route {path}"})))
            await writer.drain()
            return

        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > _MAX_BODY_BYTES:
            writer.write(_response("413 Payload Too Large",
                                   _json_bytes({"error": "bad content-length"})))
            await writer.drain()
            return
        body = await reader.readexactly(length) if length else b""
        try:
            request = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            writer.write(_response("400 Bad Request",
                                   _json_bytes({"error": "body is not JSON"})))
            await writer.drain()
            return

        stream = "stream=1" in query.split("&")
        if not stream:
            result = await self.service.submit(request)
            status = _error_status(result) if "error" in result else "200 OK"
            writer.write(_response(status, _json_bytes(result)))
            await writer.drain()
            return

        # Streaming: NDJSON, close-delimited (no Content-Length).
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        await writer.drain()

        # Events go through a bounded queue: the job is never blocked
        # by a slow client, and the pump drains the socket between
        # writes so a stalled reader cannot balloon the write buffer.
        buffer = StreamBuffer()

        async def write_event(doc: dict) -> None:
            if writer.is_closing():
                return
            writer.write(_json_bytes({"kind": "event", "event": doc}))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass

        pump = asyncio.ensure_future(buffer.pump(write_event))
        try:
            result = await self.service.submit(request, on_event=buffer.offer)
        finally:
            await buffer.close()
            await pump
        if not writer.is_closing():
            doc = dict(result, kind="result")
            if buffer.dropped:
                doc["dropped_events"] = buffer.dropped
            writer.write(_json_bytes(doc))
            await writer.drain()


async def handle_stdio_lines(service: AnalysisService, reader, write_line) -> None:
    """The stdio protocol core, front-end-testable without real pipes.

    ``reader`` is an async line iterator (e.g. an
    :class:`asyncio.StreamReader`); ``write_line`` takes one ``str``
    (without the newline) and must be safe to call from the event loop.
    """
    await service.start()
    tasks = []

    async def answer(doc: dict) -> None:
        request_id = doc.get("id")
        request = doc.get("request")

        def forward(event_doc: dict) -> None:
            write_line(json.dumps(
                {"id": request_id, "kind": "event", "event": event_doc},
                sort_keys=True,
            ))

        result = await service.submit(
            request, on_event=forward if doc.get("stream") else None
        )
        write_line(json.dumps(
            {"id": request_id, "kind": "result", "result": result},
            sort_keys=True,
        ))

    while True:
        raw = await reader.readline()
        if not raw:
            break
        line = raw.decode("utf-8").strip() if isinstance(raw, bytes) else raw.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            write_line(json.dumps(
                {"id": None, "kind": "result",
                 "result": {"error": f"input line is not JSON: {exc}"}},
                sort_keys=True,
            ))
            continue
        # Concurrent requests coalesce into waves; answer out of order.
        tasks.append((doc.get("id"), asyncio.ensure_future(answer(doc))))
    if tasks:
        # One crashed request must not swallow its siblings' answers:
        # capture exceptions and emit an error result line per failed id.
        outcomes = await asyncio.gather(
            *(task for _request_id, task in tasks), return_exceptions=True
        )
        for (request_id, _task), outcome in zip(tasks, outcomes):
            if isinstance(outcome, BaseException):
                write_line(json.dumps(
                    {"id": request_id, "kind": "result",
                     "result": {"error": f"request failed: {outcome}"}},
                    sort_keys=True,
                ))


async def serve_stdio(service: AnalysisService) -> None:
    """Wire :func:`handle_stdio_lines` to the process's real stdio."""
    loop = asyncio.get_event_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
    )

    def write_line(line: str) -> None:
        sys.stdout.write(line + "\n")
        sys.stdout.flush()

    await handle_stdio_lines(service, reader, write_line)


async def serve_forever(
    service: AnalysisService,
    http_port: Optional[int] = None,
    host: str = "127.0.0.1",
    stdio: bool = False,
    ready=print,
) -> None:
    """Run the requested front ends until stdio EOF / cancellation."""
    frontend = None
    try:
        if http_port is not None:
            frontend = HttpFrontend(service, host=host, port=http_port)
            bound_host, bound_port = await frontend.start()
            ready(f"serving http on {bound_host}:{bound_port}")
        if stdio:
            ready("serving stdio (JSON lines; EOF stops)")
            await serve_stdio(service)
        elif frontend is not None:
            await asyncio.Event().wait()  # until cancelled
    finally:
        if frontend is not None:
            await frontend.stop()
        await service.stop()
