#!/usr/bin/env python3
"""Quickstart: similarity labelings and the selection problem.

Builds a few small systems, computes their similarity labelings with
Algorithm 1, and asks the central question of the paper: *does a
selection algorithm exist?*
"""

from repro.analysis import print_table, yesno
from repro.core import (
    InstructionSet,
    System,
    decide_selection,
    processor_similarity_classes,
    similarity_labeling,
)
from repro.topologies import figure1_network, path, ring, star


def describe(name, system):
    theta = similarity_labeling(system)
    classes = processor_similarity_classes(system)
    decision = decide_selection(system)
    return (
        name,
        system.instruction_set.value,
        len(classes),
        " | ".join("{" + ",".join(sorted(map(str, c))) + "}" for c in classes),
        yesno(decision.possible),
        decision.theorem,
    )


def main():
    systems = [
        ("two procs, one shared variable", System(figure1_network(), None, InstructionSet.Q)),
        ("same, with locks", System(figure1_network(), None, InstructionSet.L)),
        ("anonymous ring of 5", System(ring(5), None, InstructionSet.Q)),
        ("ring of 5, one marked", System(ring(5), {"p0": 1}, InstructionSet.Q)),
        ("path of 4 (ends differ)", System(path(4), None, InstructionSet.Q)),
        ("star of 3 leaves", System(star(3), None, InstructionSet.Q)),
        ("star of 3 leaves, locks", System(star(3), None, InstructionSet.L)),
    ]
    rows = [describe(name, system) for name, system in systems]
    print_table(
        ["system", "model", "classes", "processor similarity classes", "selection?", "by"],
        rows,
        title="Similarity labelings (Algorithm 1) and selection decisions",
    )

    print()
    print("Things to notice:")
    print(" * anonymous symmetric systems (rings, stars) have every processor")
    print("   similar to another -> Theorem 3 rules out selection;")
    print(" * one marked processor breaks every tie on a ring;")
    print(" * locks rescue the star and the shared pair: processors that give")
    print("   one variable the same name are *dissimilar* in L (Theorem 8).")


if __name__ == "__main__":
    main()
