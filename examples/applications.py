#!/usr/bin/env python3
"""Three more problems solved "using similarity in the same way".

The paper's introduction promises the machinery generalizes; this script
runs renaming, coordinated choice and committee selection end to end and
shows the impossibility sides too.
"""

from repro.analysis import print_table, yesno
from repro.applications import (
    committee_possible,
    coordinated_choice_possible,
    renaming_possible,
    run_choice_coordination,
    run_committee,
    run_renaming,
)
from repro.core import InstructionSet, System
from repro.topologies import figure2_system, ring


def main():
    marked = System(ring(5), {"p0": 1}, InstructionSet.Q)
    anon = System(ring(5), None, InstructionSet.Q)
    fig2 = figure2_system()

    print("Decisions (possible at all?):")
    print_table(
        ["problem", "marked ring-5", "anonymous ring-5", "figure-2"],
        [
            ("renaming", yesno(renaming_possible(marked)),
             yesno(renaming_possible(anon)), yesno(renaming_possible(fig2))),
            ("coordinated choice (2 vars)",
             yesno(coordinated_choice_possible(marked, list(marked.variables)[:2])),
             yesno(coordinated_choice_possible(anon, list(anon.variables)[:2])),
             yesno(coordinated_choice_possible(fig2, ["v1", "v2"]))),
            ("committee k=2", yesno(committee_possible(marked, 2)),
             yesno(committee_possible(anon, 2)), yesno(committee_possible(fig2, 2))),
        ],
    )

    print()
    out = run_renaming(marked)
    print(f"renaming on the marked ring: {out.names}  (distinct: {out.distinct})")
    choice = run_choice_coordination(fig2, ["v1", "v2"])
    print(f"coordinated choice on figure 2: every writer marked {choice.chosen}")
    committee = run_committee(fig2, 2)
    print(f"committee of 2 on figure 2: {committee.members}")
    print()
    print("Impossibility side: on the anonymous ring every processor is")
    print("similar to every other, so renaming, choice between symmetric")
    print("alternatives, and any committee except 0 or n are all ruled out")
    print("by the same Theorem 2 argument that rules out selection.")


if __name__ == "__main__":
    main()
