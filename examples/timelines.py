#!/usr/bin/env python3
"""ASCII timelines of DP and DP': watch the deadlock freeze.

One lane per philosopher, one character per own step:
  t = thinking, w = waiting on a fork, E = eating, u = releasing.
On Figure 4 (five philosophers) every lane degenerates into 'wwwww...';
on Figure 5 (six, alternating) the meals keep rolling.
"""

from repro.baselines import LeftFirstDiningProgram
from repro.runtime import RecordingExecutor, RoundRobinScheduler, census, render_timeline
from repro.topologies import figure4_system, figure5_system

CHARS = {
    "think": "t",
    "wait-left": "w",
    "wait-right": "W",
    "eat": "E",
    "release-right": "u",
    "release-left": "u",
}


def classify(state):
    return CHARS.get(getattr(state, "stage", None), "?")


def show(title, system, steps=180):
    executor = RecordingExecutor(
        system, LeftFirstDiningProgram(), RoundRobinScheduler(system.processors)
    )
    executor.run(steps)
    print(title)
    print(render_timeline(executor, classify, width=60))
    c = census(executor)
    print(f"  actions: {dict(sorted(c.per_action_type.items()))}")
    print()


def main():
    show("Figure 4 -- five philosophers (watch the Ws take over):",
         figure4_system())
    show("Figure 5 -- six philosophers, alternating orientation:",
         figure5_system())
    print("legend: t think, w wait-left, W wait-right, E eat, u unlock")


if __name__ == "__main__":
    main()
