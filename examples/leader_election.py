#!/usr/bin/env python3
"""Leader election (the selection problem) end to end, four ways.

* SELECT in Q on Figure 2: Algorithm 2 lets every processor learn its
  similarity label; the uniquely labeled p3 selects itself.
* SELECT in L on Figure 1: relabel's lock race distinguishes the two
  processors, and Algorithm 4 elects the race winner -- different
  schedules, different winners.
* Itai-Rodeh on an anonymous ring: deterministically impossible
  (Theorem 2), randomization elects with probability 1.
* Chang-Roberts with ids: asymmetric initial states trivialize the
  decision; the classic algorithm supplies the mechanics.
"""

from repro.algorithms import select_program_l, select_program_q
from repro.analysis import print_table
from repro.baselines import run_chang_roberts
from repro.core import InstructionSet
from repro.randomized import elect
from repro.runtime import verify_selection_program
from repro.topologies import figure1_system, figure2_system


def main():
    rows = []

    fig2 = figure2_system()
    verdict = verify_selection_program(fig2, select_program_q(fig2), max_steps=30_000)
    rows.append(("Figure 2, SELECT in Q (Algorithm 2)",
                 "all schedules OK" if verdict.all_ok else "FAILED",
                 ", ".join(map(str, verdict.winners))))

    fig1 = figure1_system(InstructionSet.L)
    verdict = verify_selection_program(fig1, select_program_l(fig1), max_steps=60_000)
    rows.append(("Figure 1, SELECT in L (Algorithm 4)",
                 "all schedules OK" if verdict.all_ok else "FAILED",
                 ", ".join(map(str, verdict.winners)) + "  (schedule-dependent)"))

    result = elect(7, id_space=2, seed=3)
    rows.append(("anonymous ring of 7, Itai-Rodeh",
                 f"elected in {result.phases} phases",
                 f"p{result.leader}"))

    cr = run_chang_roberts([12, 45, 7, 31, 28])
    rows.append(("id-ring of 5, Chang-Roberts",
                 f"{cr.messages} messages",
                 f"{cr.leader} (id {cr.leader_id})"))

    print_table(["algorithm", "outcome", "winner(s)"], rows,
                title="Leader election four ways")


if __name__ == "__main__":
    main()
