#!/usr/bin/env python3
"""The power hierarchy of Sections 6 and 9, as one table.

    fair S  <  bounded-fair S  <  Q  <  L  (and L2 above L)

Each witness row flips exactly at its separation point; the message-
passing analogues follow.
"""

from repro.analysis import print_table, yesno
from repro.core import POWER_ORDER, selection_across_models
from repro.messaging import (
    bidirectional_ring,
    decide_selection_extended_csp,
    decide_selection_plain_csp,
    labels_learnable,
    mp_selection_possible,
    unidirectional_chain,
    unidirectional_ring,
)
from repro.topologies import ALL_WITNESSES, path, ring


def main():
    rows = []
    cases = [("anonymous ring-4", ring(4), None)]
    for (weaker, stronger), builder in sorted(ALL_WITNESSES.items(), key=repr):
        net, state, desc = builder()
        cases.append((f"{desc}", net, state))
    cases.append(("path-3", path(3), None))
    for name, net, state in cases:
        report = selection_across_models(net, state, name)
        rows.append((name,) + tuple(
            yesno(report.decisions[m].possible) for m in POWER_ORDER
        ))
    print_table(["system"] + list(POWER_ORDER), rows,
                title="Selection decisions across shared-variable models")

    mp_rows = []
    for name, mp in (
        ("anonymous uni-ring-5", unidirectional_ring(5)),
        ("marked uni-ring-5", unidirectional_ring(5, states={0: 1})),
        ("uni-chain-4", unidirectional_chain(4)),
        ("bi-ring-2 (linked pair)", bidirectional_ring(2)),
    ):
        mp_rows.append((
            name,
            yesno(mp_selection_possible(mp)),
            yesno(labels_learnable(mp)),
            yesno(decide_selection_plain_csp(mp)),
            yesno(decide_selection_extended_csp(mp)),
        ))
    print_table(
        ["system", "async selection", "learnable", "plain CSP", "extended CSP"],
        mp_rows,
        title="Message-passing analogues (Section 6)",
    )
    print()
    print("Reading guide: extended CSP is to async message passing as L is")
    print("to Q -- the linked pair is decided by a rendezvous race, exactly")
    print("as Figure 1 is decided by a lock race.")


if __name__ == "__main__":
    main()
