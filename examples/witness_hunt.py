#!/usr/bin/env python3
"""Hunting separation witnesses by brute force.

The hierarchy claims strict inclusions; this script lets the machine find
the witnesses, then double-checks them with the full decision procedure.
"""

from repro.analysis import print_table, smallest_witness
from repro.core import POWER_ORDER, selection_across_models


def main():
    rows = []
    for weaker, stronger in (("Q", "L"), ("bounded-fair-S", "Q"), ("L", "L2")):
        w = smallest_witness(weaker, stronger)
        report = selection_across_models(
            w.system.network,
            {n: w.system.state0(n) for n in w.system.nodes},
        )
        decisions = " ".join(
            f"{m}:{'y' if report.decisions[m].possible else 'n'}" for m in POWER_ORDER
        )
        rows.append((f"{weaker} < {stronger}", w.describe(), decisions))
    print_table(
        ["separation", "smallest witness", "decisions per model"],
        rows,
        title="Witnesses found by exhaustive small-system search",
    )
    print()
    print("Notable: the search finds a BF-S < Q witness with three processors")
    print("and a single name -- smaller than the paper's Figure 2 -- and")
    print("independently rediscovers Figure 1 (Q < L) and the name-swapped")
    print("pair (L < L2).")


if __name__ == "__main__":
    main()
