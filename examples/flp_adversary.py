#!/usr/bin/env python3
"""Watching Theorem 1's adversary at work.

Feed it naive selection programs for the general-schedule model and it
constructs concrete violating schedules -- the epsilon-p-rho double
selection of the proof, or a starvation loop -- then replays them so you
can see the violation happen.
"""

from repro.analysis import candidate_zoo, print_table, refute_selection
from repro.core import InstructionSet, ScheduleClass
from repro.runtime import Executor, ReplayScheduler, RoundRobinScheduler
from repro.topologies import figure1_system


def main():
    system = figure1_system(InstructionSet.S, ScheduleClass.GENERAL)
    rows = []
    for name, builder in candidate_zoo("n"):
        refutation = refute_selection(system, builder())
        # Replay the witness schedule and observe the end state.
        executor = Executor(
            system,
            builder(),
            ReplayScheduler(refutation.schedule, RoundRobinScheduler(system.processors)),
        )
        executor.run(len(refutation.schedule))
        rows.append(
            (
                name,
                refutation.kind,
                " ".join(map(str, refutation.schedule)),
                ",".join(map(str, executor.selected_processors())) or "-",
            )
        )
    print_table(
        ["candidate program", "violation", "witness schedule", "selected after replay"],
        rows,
        title="Theorem 1: every candidate falls",
    )
    print()
    print("Reading the schedules: the adversary runs one processor up to the")
    print("brink of selecting, lets it select (a local step), then hands the")
    print("system to the other processor, whose view is unchanged -- it")
    print("selects too.  Under fair schedules this prefix could be completed")
    print("harmlessly; under general schedules it is the whole execution.")


if __name__ == "__main__":
    main()
