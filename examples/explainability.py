#!/usr/bin/env python3
"""The explainability toolkit: dossiers, reason chains, DOT graphs.

Three ways to interrogate a system beyond a yes/no decision:

* `full_report` -- everything the library can say, in one text dossier;
* `explain_dissimilarity` -- the *reason chain* behind a split, the same
  evidence Algorithm 2's alibis extract at runtime;
* `to_dot` -- the system graph for Graphviz.
"""

from repro.analysis import full_report
from repro.core import InstructionSet, System, explain_dissimilarity
from repro.io import to_dot
from repro.topologies import figure2_network, figure2_system, path


def main():
    print(full_report(figure2_network(), None, "Figure 2").text)
    print()

    print("Why is p1 dissimilar from p3 in Q?")
    explanation = explain_dissimilarity(figure2_system(), "p1", "p3")
    for i, line in enumerate(explanation.chain):
        print(f"  {'  ' * i}{line}")
    print()

    system = System(path(4), None, InstructionSet.Q)
    print("Why do the two ends of a path differ?")
    explanation = explain_dissimilarity(system, "p0", "p3")
    for i, line in enumerate(explanation.chain):
        print(f"  {'  ' * i}{line}")
    print()

    print("Figure 2 as Graphviz DOT (pipe into `dot -Tsvg`):")
    print(to_dot(figure2_system(), title="figure2"))


if __name__ == "__main__":
    main()
