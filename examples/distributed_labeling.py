#!/usr/bin/env python3
"""Watch Algorithm 2 think: suspect sets shrinking on Figure 2.

Prints each processor's PEC (suspects for its own label) round by round,
reproducing the alibi story of Section 4: p1/p2 learn first from v1's
two subvalues; p3 then counts the two singleton posts on v3 and deduces
it must be the third neighbor.
"""

from repro.algorithms import Algorithm2Program, LabelTables
from repro.analysis import print_table
from repro.core import similarity_labeling
from repro.runtime import Executor, RoundRobinScheduler
from repro.topologies import figure2_system


def fmt(pec):
    return "{" + ",".join(sorted(map(str, pec))) + "}"


def main():
    system = figure2_system()
    theta = similarity_labeling(system)
    tables = LabelTables.from_labeled_system(system, theta)
    program = Algorithm2Program(tables)
    executor = Executor(system, program, RoundRobinScheduler(system.processors))

    print("True labels:", {p: str(theta[p]) for p in system.processors})
    rows = []
    last = None
    for step in range(2_000):
        executor.step()
        snapshot = tuple(fmt(executor.local[p].pec) for p in system.processors)
        if snapshot != last:
            rows.append((step,) + snapshot)
            last = snapshot
        if all(Algorithm2Program.is_done(executor.local[p]) for p in system.processors):
            break
    print_table(
        ["step"] + list(system.processors),
        rows,
        title="PEC evolution under round-robin (rows printed on change)",
    )
    print()
    print("p3's suspect set is the last to collapse: it waits for both")
    print("p1-labeled processors to post singleton suspect sets on v3.")


if __name__ == "__main__":
    main()
