#!/usr/bin/env python3
"""Section 7 end to end: DP, DP', and two ways around DP.

1. Five philosophers (Figure 4): symmetric + prime => all similar in L
   (Theorem 11); the left-first program deadlocks.
2. Six philosophers, alternating orientation (Figure 5): the same
   left-first program feeds everyone -- DP'.
3. Lehmann-Rabin coins on the five-ring: randomization breaks symmetry.
4. Chandy-Misra-style acyclic fork orientation: asymmetric initial state
   encapsulates the asymmetry, plain reads/writes suffice.
"""

from repro.analysis import print_table, yesno
from repro.baselines import (
    ChandyMisraDiningProgram,
    LeftFirstDiningProgram,
    oriented_dining_system,
    run_dining,
)
from repro.core import InstructionSet, analyze_prime_symmetry, is_symmetric_system
from repro.randomized import run_lehmann_rabin
from repro.runtime import RandomFairScheduler, RoundRobinScheduler
from repro.topologies import adjacent_pairs, dining_system


def main():
    dp5 = dining_system(5, instruction_set=InstructionSet.L)
    dp6 = dining_system(6, alternating=True, instruction_set=InstructionSet.L)

    report = next(
        r for r in analyze_prime_symmetry(dp5) if len(r.orbit) == 5
    )
    print("Figure 4 (five philosophers):")
    print(f"  symmetric system: {yesno(is_symmetric_system(dp5))}")
    print(f"  Theorem 11 applies (5 is prime): {yesno(report.applies)}")
    print("  => all philosophers similar in L; any run can keep them in")
    print("     lockstep, so eating together is unavoidable: DP holds.")

    rows = []

    run5 = run_dining(dp5, LeftFirstDiningProgram(),
                      RoundRobinScheduler(dp5.processors), 4000, adjacent_pairs(dp5))
    rows.append(("5-ring, left-first (deterministic)", yesno(run5.safety_ok),
                 yesno(run5.deadlocked), yesno(run5.everyone_ate),
                 sum(run5.meals.values())))

    run6 = run_dining(dp6, LeftFirstDiningProgram(),
                      RoundRobinScheduler(dp6.processors), 6000, adjacent_pairs(dp6))
    rows.append(("6-ring alternating, left-first (DP')", yesno(run6.safety_ok),
                 yesno(run6.deadlocked), yesno(run6.everyone_ate),
                 sum(run6.meals.values())))

    lr = run_lehmann_rabin(dp5, RandomFairScheduler(dp5.processors, seed=1),
                           8000, adjacent_pairs(dp5), seed=7)
    rows.append(("5-ring, Lehmann-Rabin (randomized)", yesno(lr.safety_ok),
                 "no", yesno(lr.everyone_ate), lr.total_meals))

    cm = oriented_dining_system(5)
    run_cm = run_dining(cm, ChandyMisraDiningProgram(),
                        RoundRobinScheduler(cm.processors), 5000, adjacent_pairs(cm),
                        is_eating=ChandyMisraDiningProgram.is_eating,
                        meals_of=ChandyMisraDiningProgram.meals)
    rows.append(("5-ring, acyclic orientation (CM-style)", yesno(run_cm.safety_ok),
                 yesno(run_cm.deadlocked), yesno(run_cm.everyone_ate),
                 sum(run_cm.meals.values())))

    print_table(
        ["run", "safety", "deadlock", "everyone ate", "total meals"],
        rows,
        title="Dining-philosopher runs",
    )


if __name__ == "__main__":
    main()
